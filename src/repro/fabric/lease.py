"""The lease protocol: per-point mutual exclusion over a shared directory.

A lease is one JSON file, ``<store>/leases/<fingerprint>.json``.  Its
existence *is* the claim — acquisition is ``open(O_CREAT | O_EXCL)``,
which the filesystem arbitrates atomically (POSIX local filesystems and
NFSv3+; the one primitive the whole fabric needs).  The file body is
bookkeeping for observers and for recovery:

- ``worker`` / ``host`` / ``pid`` — who holds it (``fabric status``
  renders the live lease table from a directory listing);
- ``heartbeat`` — epoch seconds of the last renewal.  A holder renews
  every ``ttl/3`` seconds; a lease whose heartbeat is older than the
  ttl is **stale** and any worker may reclaim it (the holder crashed,
  was SIGKILLed, or lost its machine);
- ``attempt`` — which execution attempt this lease covers.  Reclaiming
  a stale lease carries ``attempt + 1`` forward, so a point that keeps
  killing its workers burns a bounded budget across the whole fleet and
  is then recorded as failed (a ``failures`` store sidecar) instead of
  being retried forever.

Failure modes are resolved toward *at-least-once* execution, which is
safe here and nowhere else: results are deterministic in the spec and
written atomically under a content hash, so the rare double execution
(a slow-but-alive holder reclaimed as stale) writes byte-identical
entries.  The protocol therefore needs no fencing — ownership checks
on renew/release are an efficiency courtesy, not a correctness
requirement.  What *is* guaranteed: a point with a store entry is never
executed again (claims check the store first), and a released or
reclaimed-to-failure point leaves no lease file behind.

Clock discipline: staleness compares one host's ``time.time()`` against
another's heartbeat, so keep ``ttl`` well above the fleet's clock skew
(seconds of skew against the 60 s default is harmless).

This module is also the **lease backend seam**: :class:`LeaseManager`
is the *file* backend (shared-directory fabrics), and
:class:`repro.fabric.coordinator.client.HTTPLeaseManager` implements
the identical method surface over an HTTP coordinator for fleets with
no shared filesystem.  :class:`~repro.fabric.queue.WorkQueue` and
:class:`~repro.fabric.worker.FabricWorker` talk only to this surface,
so they run unmodified in either mode.
"""

from __future__ import annotations

import json
import os
import socket
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.analysis.store import write_json_atomic

#: Store subdirectory holding live leases (flat: one file per claimed
#: fingerprint, so a directory listing is the live lease table).
LEASE_DIR = "leases"

#: Store sidecar kind recording points that exhausted their attempt
#: budget (written through ResultStore.put_sidecar, spec embedded).
FAILURE_KIND = "failures"

#: Default lease time-to-live in seconds; a holder heartbeats at ttl/3.
DEFAULT_TTL = 60.0

#: Store subdirectory holding per-worker stats files (one JSON file per
#: fabric worker, atomically rewritten after every resolved point).
WORKERS_DIR = "workers"


class FabricBackendError(Exception):
    """A lease/store backend could not complete an operation.

    The file backend never raises it (filesystem errors are absorbed
    into the protocol's None/False returns); the HTTP backend raises it
    when the coordinator stays unreachable past its retry window, so
    workers can fall out cleanly instead of stack-tracing.
    """


def default_worker_id() -> str:
    """``<hostname>-<pid>`` — unique per fabric worker process."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass(frozen=True)
class Lease:
    """One claimed point, as recorded in its lease file."""

    fingerprint: str
    worker: str
    attempt: int  # 1-based execution attempt this lease covers
    claimed: float  # epoch seconds this lease (not the point) was claimed
    heartbeat: float  # epoch seconds of the last renewal
    label: str = ""  # RunSpec.label(), for status tables
    host: str = ""
    pid: int = 0
    group: str = ""  # affinity-group hint (see queue.affinity_group)

    def age(self, now: float | None = None) -> float:
        """Seconds since the last heartbeat."""
        return (time.time() if now is None else now) - self.heartbeat

    def stale(self, ttl: float, now: float | None = None) -> bool:
        return self.age(now) > ttl

    def to_jsonable(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "worker": self.worker,
            "attempt": self.attempt,
            "claimed": self.claimed,
            "heartbeat": self.heartbeat,
            "label": self.label,
            "host": self.host,
            "pid": self.pid,
            "group": self.group,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "Lease":
        return cls(
            fingerprint=data["fingerprint"],
            worker=data["worker"],
            attempt=int(data["attempt"]),
            claimed=float(data["claimed"]),
            heartbeat=float(data["heartbeat"]),
            label=data.get("label", ""),
            host=data.get("host", ""),
            pid=int(data.get("pid", 0)),
            group=data.get("group", ""),
        )


def lease_path(store_root: str | os.PathLike, fingerprint: str) -> Path:
    return Path(store_root) / LEASE_DIR / f"{fingerprint}.json"


def read_lease(path: str | os.PathLike) -> Lease | None:
    """The lease recorded at ``path``, or None when absent/unreadable.

    A corrupt lease file (killed writer mid-create on a non-atomic
    filesystem) reads as None; callers treat that as "claimed by nobody
    we can identify" and reclaim it like a stale lease.
    """
    try:
        data = json.loads(Path(path).read_text())
        return Lease.from_jsonable(data)
    except (OSError, ValueError, KeyError, TypeError):
        return None


class LeaseManager:
    """Claim / renew / release leases under one store root, as one worker."""

    def __init__(
        self,
        store_root: str | os.PathLike,
        worker_id: str | None = None,
        ttl: float = DEFAULT_TTL,
    ) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.store_root = Path(store_root)
        self.worker_id = worker_id if worker_id is not None else default_worker_id()
        self.ttl = ttl

    # ------------------------------------------------------------------
    def path(self, fingerprint: str) -> Path:
        return lease_path(self.store_root, fingerprint)

    def current(self, fingerprint: str) -> Lease | None:
        """The live lease for ``fingerprint``, or None when unclaimed."""
        return read_lease(self.path(fingerprint))

    def try_claim(
        self,
        fingerprint: str,
        label: str = "",
        attempt: int = 1,
        group: str = "",
        host: str | None = None,
        pid: int | None = None,
    ) -> Lease | None:
        """Claim ``fingerprint`` via atomic exclusive create.

        Returns the new lease, or None when another worker holds the
        file (fresh *or* stale — staleness is the caller's policy, see
        :meth:`reclaim`).  ``group`` is the claim's affinity hint
        (recorded for observers; see ``queue.affinity_group``);
        ``host``/``pid`` default to this process but can be overridden
        when claiming on behalf of a remote worker (the coordinator
        server does this).
        """
        path = self.path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        now = time.time()
        lease = Lease(
            fingerprint=fingerprint,
            worker=self.worker_id,
            attempt=attempt,
            claimed=now,
            heartbeat=now,
            label=label,
            host=socket.gethostname() if host is None else host,
            pid=os.getpid() if pid is None else pid,
            group=group,
        )
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return None
        try:
            with os.fdopen(fd, "w") as f:
                f.write(json.dumps(lease.to_jsonable(), indent=1, sort_keys=True))
        except BaseException:
            try:
                os.unlink(path)
            except OSError:
                pass
            raise
        return lease

    def reclaim(self, stale: Lease, label: str = "", group: str = "") -> Lease | None:
        """Take over a stale lease, carrying the attempt budget forward.

        Unlink-then-claim: racing reclaimers both unlink (idempotent)
        and then race the exclusive create — exactly one wins.  Returns
        the winner's lease with ``attempt = stale.attempt + 1``, or
        None when another worker won the race.
        """
        try:
            os.unlink(self.path(stale.fingerprint))
        except OSError:
            pass
        return self.try_claim(
            stale.fingerprint, label=label or stale.label,
            attempt=stale.attempt + 1, group=group or stale.group,
        )

    def renew(self, lease: Lease, attempt: int | None = None) -> Lease | None:
        """Refresh the heartbeat; None means the lease was lost.

        ``attempt`` rewrites the attempt count in place — the holder's
        own retry path (a point that raised mid-run) burns budget
        through the same counter a reclaim does, so "attempts" means
        one thing fleet-wide.

        Losing a lease (file gone, or rewritten by a reclaimer that
        judged us dead) is not fatal to the run in flight — the result
        write is idempotent — but the holder must stop renewing so it
        does not clobber the new holder's heartbeats.
        """
        on_disk = self.current(lease.fingerprint)
        if on_disk is None or on_disk.worker != self.worker_id:
            return None
        renewed = replace(
            lease,
            heartbeat=time.time(),
            attempt=lease.attempt if attempt is None else attempt,
        )
        write_json_atomic(self.path(lease.fingerprint), renewed.to_jsonable())
        return renewed

    def release(self, lease: Lease) -> bool:
        """Drop our claim; True when we removed our own lease file.

        Never removes a lease another worker holds (the point was
        reclaimed from under us) — their release cleans it up.
        """
        on_disk = self.current(lease.fingerprint)
        if on_disk is not None and on_disk.worker != self.worker_id:
            return False
        try:
            os.unlink(self.path(lease.fingerprint))
            return True
        except OSError:
            return False

    def drop(self, fingerprint: str) -> bool:
        """Administratively remove a lease file, whoever holds it.

        The reaper's (and failure recorder's) primitive — never part of
        the polite claim/renew/release cycle.  True when a file was
        removed.
        """
        try:
            os.unlink(self.path(fingerprint))
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    def live_leases(self) -> list[Lease]:
        """Every readable lease under the store, sorted by claim time."""
        lease_dir = self.store_root / LEASE_DIR
        leases = [
            lease
            for path in sorted(lease_dir.glob("*.json"))
            if (lease := read_lease(path)) is not None
        ]
        return sorted(leases, key=lambda lease: lease.claimed)

    def leases_map(self) -> dict[str, Lease] | None:
        """One-call fingerprint->lease view, or None when per-point
        stats are the cheaper scan.

        The file backend returns None: ``WorkQueue.claim`` then checks
        each candidate's lease file individually (a local stat), which
        keeps the claim race window per-point.  The HTTP backend
        returns the coordinator's full table in one round trip.
        """
        return None

    # ------------------------------------------------------------------
    # Worker stats: the fleet's observability files, riding the same
    # backend so coordinator-mode workers upload instead of writing.
    # ------------------------------------------------------------------
    def worker_stats_path(self, worker_id: str) -> Path:
        return self.store_root / WORKERS_DIR / f"{worker_id}.json"

    def put_worker_stats(self, worker_id: str, payload: dict) -> None:
        """Atomically rewrite ``workers/<id>.json``."""
        write_json_atomic(self.worker_stats_path(worker_id), payload)

    def list_worker_stats(self) -> list[dict]:
        """Every readable worker stats payload under the store."""
        out = []
        for path in sorted((self.store_root / WORKERS_DIR).glob("*.json")):
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(data, dict):
                out.append(data)
        return out

    def prune_worker(self, worker_id: str) -> bool:
        """Remove a dead worker's stats file; True when one existed."""
        try:
            os.unlink(self.worker_stats_path(worker_id))
            return True
        except OSError:
            return False


__all__ = [
    "DEFAULT_TTL",
    "FAILURE_KIND",
    "FabricBackendError",
    "LEASE_DIR",
    "Lease",
    "LeaseManager",
    "WORKERS_DIR",
    "default_worker_id",
    "lease_path",
    "read_lease",
]
