"""Client side of the coordinator protocol.

Three layers, each thin:

- :class:`CoordinatorClient` — the JSON/HTTP transport.  One method,
  :meth:`~CoordinatorClient.call`, POSTs (or GETs) a route under
  ``/api/v1/`` and retries connection-level failures with exponential
  backoff until a **retry window** elapses — that window is what rides
  out a coordinator restart.  When it runs dry the call raises
  :class:`CoordinatorUnreachable` (a
  :class:`~repro.fabric.lease.FabricBackendError`), which the worker
  loop treats as "fall out cleanly".  A reply the coordinator *did*
  produce but that signals an error (4xx/5xx) raises
  :class:`CoordinatorError` immediately — that is a bug or a protocol
  mismatch, and retrying would not change the answer.

- :class:`HTTPLeaseManager` — the lease backend over that transport:
  the same method surface as the file
  :class:`~repro.fabric.lease.LeaseManager`, so ``WorkQueue`` and
  ``FabricWorker`` run unmodified.  Its :meth:`leases_map` returns the
  coordinator's whole lease table in one round trip (the file backend
  declines with None and lets the queue stat per-point).

- :class:`RemoteStore` — a :class:`~repro.analysis.store.ResultStore`
  whose *authoritative* reads and writes go over the wire while its
  ``root`` points at a worker-local **spool** directory.  The spool is
  where the execution layer parks per-point state that never needs the
  network: snapshot checkpoints (``snapshots/``, resumed by the same
  worker after SIGKILL; a point reclaimed by a *different* host re-runs
  from scratch and, being deterministic, lands the identical result),
  telemetry series, and the workload/scenario sidecars the executors
  write through their own local ``ResultStore``.  When a point
  completes, :meth:`RemoteStore.put` uploads the result *and* the
  point's spooled sidecars in one request, so the coordinator's store
  ends up entry-for-entry identical to a shared-directory drain.
"""

from __future__ import annotations

import json
import os
import socket
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.analysis.store import ResultStore
from repro.engine.metrics import LoadPoint
from repro.engine.runspec import RunSpec
from repro.fabric.lease import (
    DEFAULT_TTL,
    FabricBackendError,
    Lease,
    default_worker_id,
)
from repro.fabric.coordinator.server import API_PREFIX, PROTOCOL


class CoordinatorError(FabricBackendError):
    """The coordinator answered, and the answer is an error."""


class CoordinatorUnreachable(CoordinatorError):
    """No answer from the coordinator within the retry window."""


class CoordinatorClient:
    """JSON/HTTP transport to one ``repro fabric serve`` process.

    Parameters
    ----------
    url:
        Coordinator base URL, e.g. ``http://db-host:8642``.
    timeout:
        Per-request socket timeout, seconds.
    retry_window:
        Total seconds to keep retrying connection-level failures
        (refused, reset, DNS, timeout) before raising
        :class:`CoordinatorUnreachable`.  Sized to ride out a
        coordinator restart; lower it in tests.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 10.0,
        retry_window: float = 60.0,
    ) -> None:
        self.base = url.rstrip("/")
        self.timeout = timeout
        self.retry_window = retry_window

    def call(self, route: str, body: dict | None = None) -> dict:
        """One round trip: POST ``body`` (or GET when None) to ``route``."""
        url = f"{self.base}{API_PREFIX}{route}"
        payload = None if body is None else json.dumps(body).encode()
        deadline = time.monotonic() + self.retry_window
        delay = 0.1
        while True:
            request = urllib.request.Request(
                url,
                data=payload,
                headers={"Content-Type": "application/json"},
                method="GET" if payload is None else "POST",
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                    return json.loads(resp.read().decode())
            except urllib.error.HTTPError as exc:
                # The coordinator spoke: deterministic failure, no retry.
                try:
                    detail = json.loads(exc.read().decode()).get("error", "")
                except (ValueError, OSError):
                    detail = ""
                raise CoordinatorError(
                    f"{route}: HTTP {exc.code} from {self.base}"
                    + (f": {detail}" if detail else "")
                ) from None
            except (urllib.error.URLError, OSError, ValueError) as exc:
                # Connection-level trouble (or a half-written reply from
                # a dying server): back off and retry inside the window.
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise CoordinatorUnreachable(
                        f"{route}: coordinator {self.base} unreachable for "
                        f"{self.retry_window:.0f}s ({exc})"
                    ) from None
                time.sleep(min(delay, remaining))
                delay = min(2.0, delay * 2)

    def ping(self) -> dict:
        """Handshake; raises on protocol mismatch."""
        reply = self.call("ping")
        if reply.get("protocol") != PROTOCOL:
            raise CoordinatorError(
                f"coordinator {self.base} speaks protocol "
                f"{reply.get('protocol')!r}, this client {PROTOCOL!r}"
            )
        return reply


class HTTPLeaseManager:
    """Lease backend over a :class:`CoordinatorClient`.

    Method-for-method the surface of the file
    :class:`~repro.fabric.lease.LeaseManager`; every call is one
    coordinator round trip carrying this worker's identity, and the
    coordinator's own file backend arbitrates the races.
    """

    def __init__(
        self,
        client: CoordinatorClient,
        worker_id: str | None = None,
        ttl: float = DEFAULT_TTL,
    ) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be positive")
        self.client = client
        self.worker_id = worker_id if worker_id is not None else default_worker_id()
        self.ttl = ttl

    def _ident(self) -> dict:
        return {
            "worker": self.worker_id,
            "ttl": self.ttl,
            "host": socket.gethostname(),
            "pid": os.getpid(),
        }

    @staticmethod
    def _lease(reply: dict) -> Lease | None:
        data = reply.get("lease")
        return None if data is None else Lease.from_jsonable(data)

    # ------------------------------------------------------------------
    def current(self, fingerprint: str) -> Lease | None:
        reply = self.client.call(
            "lease", {**self._ident(), "fingerprint": fingerprint}
        )
        return self._lease(reply)

    def try_claim(
        self,
        fingerprint: str,
        label: str = "",
        attempt: int = 1,
        group: str = "",
        host: str | None = None,
        pid: int | None = None,
    ) -> Lease | None:
        body = {
            **self._ident(),
            "fingerprint": fingerprint,
            "label": label,
            "attempt": attempt,
            "group": group,
        }
        if host is not None:
            body["host"] = host
        if pid is not None:
            body["pid"] = pid
        return self._lease(self.client.call("claim", body))

    def reclaim(self, stale: Lease, label: str = "", group: str = "") -> Lease | None:
        body = {
            **self._ident(),
            "stale": stale.to_jsonable(),
            "label": label,
            "group": group,
        }
        return self._lease(self.client.call("reclaim", body))

    def renew(self, lease: Lease, attempt: int | None = None) -> Lease | None:
        body = {**self._ident(), "lease": lease.to_jsonable(), "attempt": attempt}
        return self._lease(self.client.call("renew", body))

    def release(self, lease: Lease) -> bool:
        reply = self.client.call(
            "release", {**self._ident(), "lease": lease.to_jsonable()}
        )
        return bool(reply.get("released"))

    def drop(self, fingerprint: str) -> bool:
        reply = self.client.call(
            "drop", {**self._ident(), "fingerprint": fingerprint}
        )
        return bool(reply.get("dropped"))

    # ------------------------------------------------------------------
    def live_leases(self) -> list[Lease]:
        reply = self.client.call("leases")
        return [Lease.from_jsonable(data) for data in reply.get("leases", [])]

    def leases_map(self) -> dict[str, Lease] | None:
        """The coordinator's whole lease table, one round trip."""
        return {lease.fingerprint: lease for lease in self.live_leases()}

    # ------------------------------------------------------------------
    def put_worker_stats(self, worker_id: str, payload: dict) -> None:
        self.client.call(
            "workers/put",
            {**self._ident(), "worker": worker_id, "payload": payload},
        )

    def list_worker_stats(self) -> list[dict]:
        reply = self.client.call("workers")
        return [data for data in reply.get("workers", []) if isinstance(data, dict)]

    def prune_worker(self, worker_id: str) -> bool:
        reply = self.client.call(
            "workers/prune", {**self._ident(), "worker": worker_id}
        )
        return bool(reply.get("pruned"))


class RemoteStore(ResultStore):
    """A ResultStore whose authority lives behind the coordinator.

    ``root`` is a worker-local spool (checkpoints, telemetry, sidecar
    staging — see the module docstring); results, failure records and
    resolution probes go over the wire.  The execution layer and
    :class:`~repro.fabric.queue.WorkQueue` use it exactly like a shared
    store.
    """

    #: Spool subdirectories never uploaded with a result: ``objects``
    #: holds nothing in a spool, and the store's non-entry kinds
    #: (snapshots, telemetry, leases, workers) are worker-local state.
    _NO_UPLOAD = ("objects",)

    def __init__(self, client: CoordinatorClient, spool: str | os.PathLike) -> None:
        super().__init__(spool)
        self.client = client

    # -- resolution probes (remote) ------------------------------------
    def has(self, fingerprint: str) -> bool:
        return self.resolved_many([fingerprint])[fingerprint] == "result"

    def has_sidecar(self, kind: str, fingerprint: str) -> bool:
        reply = self.client.call(
            "has_sidecar", {"kind": kind, "fingerprint": fingerprint}
        )
        return bool(reply.get("present"))

    def resolved_many(
        self, fingerprints: list[str], failure_kind: str = "failures"
    ) -> dict[str, str | None]:
        if not fingerprints:
            return {}
        reply = self.client.call(
            "resolved",
            {"fingerprints": list(fingerprints), "failure_kind": failure_kind},
        )
        resolved = reply.get("resolved", {})
        return {fp: resolved.get(fp) for fp in fingerprints}

    # -- authoritative reads/writes (remote) ---------------------------
    def get(self, spec: RunSpec) -> LoadPoint | None:
        reply = self.client.call("get", {"spec": spec.to_jsonable()})
        data = reply.get("point")
        if data is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return LoadPoint.from_jsonable(data)

    def put(self, spec: RunSpec, point: LoadPoint, wall_time: float | None = None):
        fingerprint = spec.fingerprint()
        self.client.call(
            "result",
            {
                "spec": spec.to_jsonable(),
                "point": point.to_jsonable(),
                "wall_time": wall_time,
                "sidecars": self._spooled_sidecars(fingerprint),
            },
        )
        self.stats.writes += 1
        return self.path_for(fingerprint)

    def get_sidecar(self, kind: str, spec: RunSpec) -> dict | None:
        reply = self.client.call(
            "get_sidecar", {"kind": kind, "spec": spec.to_jsonable()}
        )
        payload = reply.get("payload")
        if payload is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put_sidecar(self, kind: str, spec: RunSpec, payload: dict):
        self.client.call(
            "sidecar",
            {"kind": kind, "spec": spec.to_jsonable(), "payload": payload},
        )
        self.stats.writes += 1
        return self.sidecar_path(kind, spec.fingerprint())

    # ------------------------------------------------------------------
    def _spooled_sidecars(self, fingerprint: str) -> dict:
        """Payloads the executors staged locally for this point.

        The per-point execution path writes workload/scenario sidecars
        through a plain ResultStore over the spool root; they ship with
        the result so the coordinator's store carries full provenance.
        """
        sidecars: dict[str, dict] = {}
        for kind in self.entry_kinds():
            if kind in self._NO_UPLOAD:
                continue
            path = self.sidecar_path(kind, fingerprint)
            try:
                entry = json.loads(path.read_text())
                sidecars[kind] = entry["payload"]
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return sidecars


def open_coordinator(
    url: str,
    spool: str | os.PathLike,
    *,
    worker_id: str | None = None,
    lease_ttl: float = DEFAULT_TTL,
    timeout: float = 10.0,
    retry_window: float = 60.0,
) -> tuple[RemoteStore, HTTPLeaseManager]:
    """One-call client setup: ping, spool store, lease backend.

    The returned pair plugs straight into
    :class:`~repro.fabric.queue.WorkQueue` (``store=``, ``leases=``) or
    :func:`~repro.fabric.worker.drain` (``store=``, ``leases=``).
    """
    client = CoordinatorClient(url, timeout=timeout, retry_window=retry_window)
    # Handshake with a short window: a wrong URL should fail in seconds,
    # while the long window is reserved for riding out restarts mid-run.
    CoordinatorClient(
        url, timeout=timeout, retry_window=min(5.0, retry_window)
    ).ping()
    Path(spool).mkdir(parents=True, exist_ok=True)
    store = RemoteStore(client, spool)
    leases = HTTPLeaseManager(client, worker_id=worker_id, ttl=lease_ttl)
    return store, leases


__all__ = [
    "CoordinatorClient",
    "CoordinatorError",
    "CoordinatorUnreachable",
    "HTTPLeaseManager",
    "RemoteStore",
    "open_coordinator",
]
