"""The fabric coordinator: the lease protocol behind one socket.

``repro fabric serve`` runs a :class:`FabricCoordinator` — a stdlib
``http.server`` process that owns a standard store directory on its
local disk and serves the whole fabric surface over JSON/HTTP:

- **lease operations** (claim / reclaim / renew / release / drop, the
  live lease table) executed by the coordinator's own file
  :class:`~repro.fabric.lease.LeaseManager` against its local
  ``leases/`` directory, impersonating the requesting worker (every
  request carries ``worker``/``ttl``, so ownership checks behave
  exactly as if that worker held the files locally);
- **store traffic**: batch resolution probes, result uploads (with the
  point's workload/scenario sidecars in the same request, so an entry
  and its provenance land together), failure records, and cached-point
  downloads;
- **worker stats** upload/list/prune for ``fabric status`` and
  ``fabric watch``.

Because every byte of state is ordinary store layout on the
coordinator's disk — the same files a shared-directory fleet would
write — three properties fall out for free:

- ``repro store verify/gc/stats`` and ``repro fabric status/reap`` work
  unchanged pointed at the coordinator's store root;
- **restart recovery is a no-op**: kill the coordinator, start it again
  on the same root, and the full fleet state (results, live leases,
  attempt counts, worker stats) is already there.  Workers retry with
  backoff across the outage and resume as if nothing happened;
- a campaign drained through the coordinator is fingerprint-identical
  to one drained over a shared directory — both are produced by the
  same ``LeaseManager``/``ResultStore`` code paths.

Safety under concurrency: the handler is a ``ThreadingHTTPServer``, and
every mutation bottoms out in the file backend's atomic primitives
(``O_CREAT|O_EXCL`` claims, tmp+rename writes) — the filesystem
arbitrates races between request threads exactly as it does between
NFS peers.  One server-side guard is added on top: a reclaim request
re-checks staleness against the *coordinator's* clock before honoring
it, so a worker with a skewed clock cannot steal a live lease.
"""

from __future__ import annotations

import json
import threading
import traceback
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.analysis.store import STORE_FORMAT, ResultStore
from repro.engine.metrics import LoadPoint
from repro.engine.runspec import RunSpec
from repro.fabric.lease import DEFAULT_TTL, Lease, LeaseManager

#: URL prefix of every coordinator route.
API_PREFIX = "/api/v1/"

#: Protocol version echoed by ``ping``; clients refuse a mismatch.
PROTOCOL = 1


class _Routes:
    """The coordinator's request handlers, one method per route.

    Each takes the parsed JSON body and returns a jsonable reply dict.
    Lease mutations build a per-request :class:`LeaseManager` carrying
    the *requester's* worker id and ttl, so the file backend's
    ownership semantics apply verbatim to remote workers.
    """

    def __init__(self, store_root: Path) -> None:
        self.store = ResultStore(store_root)
        self.root = Path(store_root)

    def _manager(self, body: dict) -> LeaseManager:
        return LeaseManager(
            self.root,
            worker_id=str(body.get("worker", "coordinator")),
            ttl=float(body.get("ttl", DEFAULT_TTL)),
        )

    # -- observability -------------------------------------------------
    def get_ping(self, body: dict) -> dict:
        return {
            "ok": True,
            "protocol": PROTOCOL,
            "format": STORE_FORMAT,
            "store": str(self.root),
        }

    def get_leases(self, body: dict) -> dict:
        manager = LeaseManager(self.root, worker_id="coordinator")
        return {"leases": [lease.to_jsonable() for lease in manager.live_leases()]}

    def get_workers(self, body: dict) -> dict:
        manager = LeaseManager(self.root, worker_id="coordinator")
        return {"workers": manager.list_worker_stats()}

    # -- lease protocol ------------------------------------------------
    def post_lease(self, body: dict) -> dict:
        manager = self._manager(body)
        lease = manager.current(str(body["fingerprint"]))
        return {"lease": None if lease is None else lease.to_jsonable()}

    def post_claim(self, body: dict) -> dict:
        manager = self._manager(body)
        lease = manager.try_claim(
            str(body["fingerprint"]),
            label=str(body.get("label", "")),
            attempt=int(body.get("attempt", 1)),
            group=str(body.get("group", "")),
            host=str(body.get("host", "")),
            pid=int(body.get("pid", 0)),
        )
        return {"lease": None if lease is None else lease.to_jsonable()}

    def post_reclaim(self, body: dict) -> dict:
        manager = self._manager(body)
        stale = Lease.from_jsonable(body["stale"])
        # Staleness re-judged on the coordinator's clock: a skewed
        # client cannot reclaim a lease whose holder is still renewing.
        current = manager.current(stale.fingerprint)
        if current is not None and not current.stale(manager.ttl):
            return {"lease": None}
        # Unlink-then-claim, same as the file backend's reclaim, but
        # recording the remote worker's host/pid in the new lease.
        target = current if current is not None else stale
        manager.drop(target.fingerprint)
        lease = manager.try_claim(
            target.fingerprint,
            label=str(body.get("label", "")) or target.label,
            attempt=target.attempt + 1,
            group=str(body.get("group", "")) or target.group,
            host=str(body.get("host", "")),
            pid=int(body.get("pid", 0)),
        )
        return {"lease": None if lease is None else lease.to_jsonable()}

    def post_renew(self, body: dict) -> dict:
        manager = self._manager(body)
        attempt = body.get("attempt")
        renewed = manager.renew(
            Lease.from_jsonable(body["lease"]),
            attempt=None if attempt is None else int(attempt),
        )
        return {"lease": None if renewed is None else renewed.to_jsonable()}

    def post_release(self, body: dict) -> dict:
        manager = self._manager(body)
        return {"released": manager.release(Lease.from_jsonable(body["lease"]))}

    def post_drop(self, body: dict) -> dict:
        manager = self._manager(body)
        return {"dropped": manager.drop(str(body["fingerprint"]))}

    # -- store traffic -------------------------------------------------
    def post_resolved(self, body: dict) -> dict:
        fps = [str(fp) for fp in body["fingerprints"]]
        kind = str(body.get("failure_kind", "failures"))
        return {"resolved": self.store.resolved_many(fps, kind)}

    def post_has_sidecar(self, body: dict) -> dict:
        return {
            "present": self.store.has_sidecar(
                str(body["kind"]), str(body["fingerprint"])
            )
        }

    def post_result(self, body: dict) -> dict:
        spec = RunSpec.from_jsonable(body["spec"])
        point = LoadPoint.from_jsonable(body["point"])
        # Sidecars first: the result entry's existence is what marks the
        # point resolved, so a crash between writes leaves the point
        # pending (re-runs cleanly), never resolved-but-incomplete.
        for kind, payload in (body.get("sidecars") or {}).items():
            self.store.put_sidecar(str(kind), spec, payload)
        wall = body.get("wall_time")
        self.store.put(spec, point, wall_time=None if wall is None else float(wall))
        return {"ok": True}

    def post_sidecar(self, body: dict) -> dict:
        spec = RunSpec.from_jsonable(body["spec"])
        self.store.put_sidecar(str(body["kind"]), spec, body["payload"])
        return {"ok": True}

    def post_get(self, body: dict) -> dict:
        spec = RunSpec.from_jsonable(body["spec"])
        point = self.store.get(spec)
        return {"point": None if point is None else point.to_jsonable()}

    def post_get_sidecar(self, body: dict) -> dict:
        spec = RunSpec.from_jsonable(body["spec"])
        return {"payload": self.store.get_sidecar(str(body["kind"]), spec)}

    # -- worker stats --------------------------------------------------
    def post_workers_put(self, body: dict) -> dict:
        manager = self._manager(body)
        manager.put_worker_stats(str(body["worker"]), dict(body["payload"]))
        return {"ok": True}

    def post_workers_prune(self, body: dict) -> dict:
        manager = self._manager(body)
        return {"pruned": manager.prune_worker(str(body["worker"]))}


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON plumbing around :class:`_Routes`."""

    protocol_version = "HTTP/1.1"
    server: "FabricCoordinator"

    # Silence the default per-request stderr chatter; `fabric serve -v`
    # re-enables it.
    def log_message(self, fmt: str, *args) -> None:
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _reply(self, code: int, payload: dict) -> None:
        blob = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _dispatch(self, method: str) -> None:
        if not self.path.startswith(API_PREFIX):
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        route = self.path[len(API_PREFIX):].strip("/").replace("/", "_")
        handler = getattr(self.server.routes, f"{method}_{route}", None)
        if handler is None:
            self._reply(404, {"error": f"unknown route {route!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            body = json.loads(self.rfile.read(length)) if length else {}
            self._reply(200, handler(body))
        except (KeyError, TypeError, ValueError) as exc:
            self._reply(400, {"error": f"bad request: {exc!r}"})
        except Exception:
            self._reply(500, {"error": traceback.format_exc()})

    def do_GET(self) -> None:
        self._dispatch("get")

    def do_POST(self) -> None:
        self._dispatch("post")


class FabricCoordinator(ThreadingHTTPServer):
    """One coordinator process: a store root behind an HTTP socket.

    ``allow_reuse_address`` (inherited default) lets a restarted
    coordinator rebind its old port immediately — the fleet's retry
    loops reconnect without operator involvement.
    """

    daemon_threads = True

    def __init__(
        self,
        store_root,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.routes = _Routes(Path(store_root))
        self.store_root = Path(store_root)
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start_background(self) -> threading.Thread:
        """Serve from a daemon thread (tests, embedded use)."""
        thread = threading.Thread(
            target=self.serve_forever, name="fabric-coordinator", daemon=True
        )
        thread.start()
        return thread


def serve(
    store_root,
    host: str = "127.0.0.1",
    port: int = 8642,
    verbose: bool = False,
) -> None:
    """Blocking entry point for ``repro fabric serve``."""
    coordinator = FabricCoordinator(store_root, host=host, port=port, verbose=verbose)
    print(
        f"[fabric coordinator] serving store {coordinator.store_root} "
        f"at {coordinator.url} (Ctrl-C to stop)",
        flush=True,
    )
    try:
        coordinator.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        coordinator.server_close()


__all__ = [
    "API_PREFIX",
    "FabricCoordinator",
    "PROTOCOL",
    "serve",
]
