"""HTTP coordinator for fleets without a shared filesystem.

Server side (:mod:`~repro.fabric.coordinator.server`): ``repro fabric
serve`` owns a standard store directory and exposes the lease protocol
plus store traffic over JSON/HTTP.  Client side
(:mod:`~repro.fabric.coordinator.client`): :class:`HTTPLeaseManager`
and :class:`RemoteStore` implement the fabric's two seams over the
socket, so :class:`~repro.fabric.queue.WorkQueue` and
:class:`~repro.fabric.worker.FabricWorker` run unmodified — select the
mode with ``--coordinator URL``.
"""

from repro.fabric.coordinator.client import (
    CoordinatorClient,
    CoordinatorError,
    CoordinatorUnreachable,
    HTTPLeaseManager,
    RemoteStore,
    open_coordinator,
)
from repro.fabric.coordinator.server import (
    API_PREFIX,
    PROTOCOL,
    FabricCoordinator,
    serve,
)

__all__ = [
    "API_PREFIX",
    "CoordinatorClient",
    "CoordinatorError",
    "CoordinatorUnreachable",
    "FabricCoordinator",
    "HTTPLeaseManager",
    "PROTOCOL",
    "RemoteStore",
    "open_coordinator",
    "serve",
]
