"""FabricWorker: the claim -> run -> write -> release loop.

One :class:`FabricWorker` is one peer in a fleet.  It executes points
through the orchestrator's own per-point worker path — the exact
functions a single-host sweep runs, including ``--snapshot-every``
mid-run checkpointing — so a fabric-drained campaign's store entries
are byte-identical (spec + point) to a single-host orchestrator run.
Spot-style preemption falls out: a SIGKILLed worker's lease expires,
another worker reclaims it, and ``run_spec_checkpointed`` resumes the
point from its last checkpoint with a bit-identical final result.

While a point runs, a daemon heartbeat thread renews the lease every
``ttl/3`` seconds (touching nothing in the simulation — observation
never perturbs applies to coordination too).  A point that *raises* is
retried in place with the lease's attempt count bumped, until the
fleet-wide budget is exhausted and the point is recorded as a
``failures`` sidecar — a poisoned point costs its budget, never the
drain.

Progress reporting reuses :class:`~repro.engine.tracing.SweepProgress`
with the fleet fields filled in: after every point this worker resolves
it re-scans the shared state and emits done/cached/failed counts for
the *whole fleet*, the live worker count, and the fleet-rate ETA.
"""

from __future__ import annotations

import functools
import signal
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field

from repro.analysis.store import ResultStore
from repro.engine.orchestrator import (
    STATUS_CACHED,
    STATUS_DONE,
    STATUS_FAILED,
    PointResult,
    _execute_spec_checkpointed,
    _execute_spec_telemetry,
)
from repro.engine.runspec import RunSpec
from repro.engine.tracing import ProgressObserver, SweepProgress
from repro.fabric.lease import FAILURE_KIND, FabricBackendError, Lease
from repro.snapshot.checkpoint import Preempted
from repro.fabric.queue import (
    Claim,
    QueueStatus,
    WorkerStats,
    WorkQueue,
)


class _Heartbeat(threading.Thread):
    """Renews one lease (and the worker stats file) while a point runs."""

    def __init__(
        self,
        queue: WorkQueue,
        lease: Lease,
        interval: float,
        touch,
        on_lost=None,
    ) -> None:
        super().__init__(daemon=True, name=f"lease-hb-{lease.fingerprint[:8]}")
        self.queue = queue
        self.lease = lease  # latest renewal (read after stop())
        self.interval = interval
        self.touch = touch
        self.on_lost = on_lost
        self.lost = threading.Event()
        # NB: not "_stop" — Thread itself uses that name internally.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                renewed = self.queue.leases.renew(self.lease)
            except FabricBackendError:
                # Coordinator unreachable past the client's retry window.
                # The lease may still be ours when it comes back — keep
                # computing and keep trying; staleness is the fleet's
                # problem to judge, not ours to preempt.
                continue
            if renewed is None:
                # Reclaimed from under us (we looked dead).  Keep
                # computing — the result write is idempotent — but stop
                # touching the new holder's lease.
                self.lost.set()
                if self.on_lost is not None:
                    self.on_lost(self.lease)
                return
            self.lease = renewed
            try:
                self.touch()
            except FabricBackendError:
                pass  # stats are best-effort observability

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


@dataclass
class FabricSummary:
    """What one worker's :meth:`FabricWorker.run` did, plus the fleet's
    final state."""

    worker: str
    executed: int  # points this worker completed (results written)
    failed: int  # failures this worker recorded
    reclaimed: int  # stale leases this worker took over
    wall: float  # seconds in the drain loop
    status: QueueStatus  # final fleet scan (drained unless max_points hit)
    completed: set[str] = field(default_factory=set)  # fps this worker ran
    renew_failures: int = 0  # heartbeat renewals lost (lease reclaimed)
    backend_error: str = ""  # why the drain stopped early, if it did

    def render(self) -> str:
        s = self.status
        line = (
            f"[fabric {self.worker}] executed {self.executed} "
            f"(+{self.reclaimed} reclaimed), failed {self.failed} "
            f"in {self.wall:.1f}s | fleet: {s.done}/{s.total} done, "
            f"{s.failed} failed, {s.leased} leased"
        )
        if self.renew_failures:
            line += f" | {self.renew_failures} lease renewal(s) lost"
        if self.backend_error:
            line += f" | stopped early: {self.backend_error}"
        return line


class FabricWorker:
    """One cooperating worker process draining a :class:`WorkQueue`.

    Parameters mirror the orchestrator where they overlap:

    snapshot_every:
        Checkpoint each in-flight point to the store every N cycles
        (``run_spec_checkpointed``); a reclaimed point resumes from its
        last checkpoint on whichever worker picks it up.
    telemetry / telemetry_dir:
        As on :class:`~repro.engine.orchestrator.Orchestrator`; series
        land under ``<store>/telemetry`` by default.
    poll:
        Seconds between queue re-scans when nothing is claimable but
        other workers still hold live leases.
    max_points:
        Stop after resolving this many points (tests and canaries);
        None drains until the queue reports done.
    observer:
        :class:`SweepProgress` callback, fleet fields populated.
    execute:
        Test hook: replaces the per-point execution callable
        ``(RunSpec) -> LoadPoint`` (the fault-injection seam, exactly
        like the orchestrator's ``worker=``).
    """

    def __init__(
        self,
        queue: WorkQueue,
        *,
        snapshot_every: int | None = None,
        telemetry=None,
        telemetry_dir=None,
        poll: float = 1.0,
        max_points: int | None = None,
        observer: ProgressObserver | None = None,
        execute=None,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if poll <= 0:
            raise ValueError("poll must be positive")
        self.queue = queue
        self.store: ResultStore = queue.store
        self.poll = poll
        self.max_points = max_points
        self.observer = observer
        self.snapshot_every = snapshot_every
        if telemetry_dir is None:
            telemetry_dir = self.store.root / "telemetry"
        tdir = str(telemetry_dir)
        # Graceful (spot-style) preemption: SIGTERM sets this event; a
        # checkpointed in-flight point saves its state and releases its
        # lease immediately instead of waiting for lease expiry.
        self.preempted = threading.Event()
        if execute is not None:
            self._execute = execute
        elif snapshot_every is not None:
            checkpointed = functools.partial(
                _execute_spec_checkpointed,
                str(self.store.root), snapshot_every, tdir, telemetry,
            )
            # Executed in-process (never pickled), so closing over the
            # event is fine where a partial would be needed for workers.
            self._execute = lambda spec: checkpointed(
                spec, should_stop=self.preempted.is_set
            )
        else:
            self._execute = functools.partial(
                _execute_spec_telemetry, tdir, telemetry, str(self.store.root),
            )
        self.executed = 0
        self.failed = 0
        self.reclaimed = 0
        self.released = 0  # points handed back on preemption
        self.renew_failures = 0  # heartbeat renewals that found the lease gone
        self.completed: set[str] = set()
        self._started = time.monotonic()
        self._hb_interval = max(0.05, queue.lease_ttl / 3.0)
        self._renew_warned = False
        self._last_label = ""

    @property
    def worker_id(self) -> str:
        return self.queue.worker_id

    # ------------------------------------------------------------------
    def run(self) -> FabricSummary:
        """Drain until the queue is done (or ``max_points`` resolved).

        Installs a SIGTERM handler for the duration of the drain (main
        thread only; restored on exit): SIGTERM requests graceful
        preemption — the in-flight checkpointed point saves its state
        and releases its lease, and the worker stops claiming.  Without
        ``snapshot_every`` the current point runs to completion first.
        """
        self._started = time.monotonic()
        self._touch_stats()
        previous_handler = None
        try:
            previous_handler = signal.signal(
                signal.SIGTERM, lambda signum, frame: self.preempted.set()
            )
        except ValueError:
            pass  # not the main thread: preemption via self.preempted only
        backend_error = ""
        try:
            while not self.preempted.is_set():
                if (
                    self.max_points is not None
                    and self.executed + self.failed >= self.max_points
                ):
                    break
                claim = self.queue.claim()
                if claim is None:
                    if self.queue.drained():
                        break
                    # Unresolved points are leased to live peers: wait
                    # for them (or for their leases to go stale).
                    self._touch_stats()
                    time.sleep(self.poll)
                    continue
                if claim.lease.attempt > 1:
                    self.reclaimed += 1
                self._last_label = claim.spec.label()
                self._run_claim(claim)
                if claim.lease.group:
                    # Warm state for this group now lives on this host:
                    # prefer its remaining points on the next scan.
                    self.queue.prefer_groups.add(claim.lease.group)
        except FabricBackendError as exc:
            # Coordinator gone past the retry window: fall out cleanly
            # (partial summary, no stack trace).  Leases we held expire
            # on the coordinator's disk and are reclaimed when the
            # fleet reconnects.
            backend_error = str(exc) or type(exc).__name__
            print(
                f"[fabric {self.worker_id}] backend unreachable, "
                f"stopping: {backend_error}",
                file=sys.stderr,
            )
        finally:
            if previous_handler is not None:
                signal.signal(signal.SIGTERM, previous_handler)
            try:
                self._touch_stats(active=False)
            except FabricBackendError:
                pass
        try:
            status = self.queue.status()
        except FabricBackendError:
            status = QueueStatus(
                total=len(self.queue.specs), done=0, failed=0,
                leased=0, stale=0, lease_ttl=self.queue.lease_ttl,
            )
        return FabricSummary(
            worker=self.worker_id,
            executed=self.executed,
            failed=self.failed,
            reclaimed=self.reclaimed,
            wall=time.monotonic() - self._started,
            status=status,
            completed=set(self.completed),
            renew_failures=self.renew_failures,
            backend_error=backend_error,
        )

    # ------------------------------------------------------------------
    def _run_claim(self, claim: Claim) -> None:
        spec, lease = claim.spec, claim.lease
        while True:
            heartbeat = _Heartbeat(self.queue, lease, self._hb_interval,
                                   self._touch_stats,
                                   on_lost=self._note_lost_lease)
            heartbeat.start()
            t0 = time.monotonic()
            try:
                point = self._execute(spec)
            except Preempted:
                # Graceful preemption: the point checkpointed itself;
                # hand the lease back *now* (attempt count untouched) so
                # a peer resumes immediately instead of after TTL.
                heartbeat.stop()
                self.queue.leases.release(heartbeat.lease)
                self.released += 1
                self._touch_stats()
                return
            except Exception:
                heartbeat.stop()
                wall = time.monotonic() - t0
                error = traceback.format_exc()
                if lease.attempt >= self.queue.max_attempts:
                    self.queue.record_failure(
                        spec, attempts=lease.attempt,
                        worker=self.worker_id, error=error,
                    )
                    self.queue.leases.release(heartbeat.lease)
                    self.failed += 1
                    self._after_point(spec, STATUS_FAILED, wall)
                    return
                bumped = self.queue.leases.renew(
                    heartbeat.lease, attempt=lease.attempt + 1
                )
                if bumped is None:
                    return  # lost the lease; the retry is someone else's now
                lease = bumped
                continue
            heartbeat.stop()
            wall = time.monotonic() - t0
            self.store.put(spec, point, wall_time=wall)
            self.queue.leases.release(heartbeat.lease)
            self.executed += 1
            self.completed.add(spec.fingerprint())
            self._after_point(spec, STATUS_DONE, wall)
            return

    # ------------------------------------------------------------------
    def _note_lost_lease(self, lease: Lease) -> None:
        """A heartbeat renewal found our lease gone (reclaimed: we
        looked dead).  Count it, warn once — a fleet that keeps losing
        leases has its ttl set below its point runtime."""
        self.renew_failures += 1
        if not self._renew_warned:
            self._renew_warned = True
            print(
                f"[fabric {self.worker_id}] lease renewal failed for "
                f"{lease.label or lease.fingerprint[:12]} (reclaimed by a "
                f"peer that judged us dead); finishing the point anyway — "
                f"the result write is idempotent.  Repeated losses mean "
                f"the lease ttl is below the point runtime.",
                file=sys.stderr,
            )

    def _touch_stats(self, active: bool = True) -> None:
        """Rewrite this worker's ``workers/<id>.json`` via the backend."""
        elapsed = time.monotonic() - self._started
        resolved = self.executed + self.failed
        stats = WorkerStats(
            worker=self.worker_id,
            started=time.time() - elapsed,
            heartbeat=time.time(),
            done=self.executed,
            failed=self.failed,
            reclaimed=self.reclaimed,
            rate=resolved / elapsed if elapsed > 0 else 0.0,
            last_label=self._last_label,
            active=active,
        )
        self.queue.leases.put_worker_stats(self.worker_id, stats.to_jsonable())

    def _after_point(self, spec: RunSpec, status: str, wall: float) -> None:
        self._touch_stats()
        if self.observer is None:
            return
        scan = self.queue.status()
        self.observer(SweepProgress(
            total=scan.total,
            done=max(0, scan.done - self.queue.initial_done),
            cached=self.queue.initial_done,
            failed=scan.failed,
            elapsed=time.monotonic() - self._started,
            last_label=spec.label(),
            last_status=status,
            last_wall_time=wall,
            worker=self.worker_id,
            fleet_workers=max(1, len(scan.live_workers())),
            fleet_rate=scan.fleet_rate,
        ))


# ----------------------------------------------------------------------
# One-call drain (the ``--fabric`` entry point)
# ----------------------------------------------------------------------

def drain(
    specs: list[RunSpec],
    store: ResultStore,
    *,
    worker_id: str | None = None,
    lease_ttl: float | None = None,
    max_attempts: int | None = None,
    snapshot_every: int | None = None,
    telemetry=None,
    telemetry_dir=None,
    poll: float = 1.0,
    max_points: int | None = None,
    observer: ProgressObserver | None = None,
    execute=None,
    leases=None,
) -> tuple[list[PointResult], FabricSummary]:
    """Join (or start) the fleet draining ``specs``; gather the results.

    Runs one :class:`FabricWorker` in this process until the whole grid
    is resolved — including points other hosts are still executing —
    then reads every point back from the shared store.  Results come
    back as orchestrator :class:`PointResult` values in spec order:
    ``done`` for points this process executed, ``cached`` for points
    served by the store (pre-existing or drained by peers), ``failed``
    for points whose fleet-wide attempt budget was exhausted (the
    failure record's error and attempt count attached).
    """
    from repro.fabric.queue import DEFAULT_MAX_ATTEMPTS
    from repro.fabric.lease import DEFAULT_TTL, default_worker_id

    try:
        queue = WorkQueue(
            specs, store, worker_id=worker_id,
            lease_ttl=DEFAULT_TTL if lease_ttl is None else lease_ttl,
            max_attempts=DEFAULT_MAX_ATTEMPTS if max_attempts is None
            else max_attempts,
            leases=leases,
        )
    except FabricBackendError as exc:
        # Backend gone before we could even scan the grid: same clean
        # fallout as mid-drain — a summary, not a stack trace.
        summary = FabricSummary(
            worker=leases.worker_id if leases is not None
            else (worker_id or default_worker_id()),
            executed=0, failed=0, reclaimed=0, wall=0.0,
            status=QueueStatus(
                total=len(specs), done=0, failed=0, leased=0, stale=0,
            ),
            backend_error=str(exc) or type(exc).__name__,
        )
    else:
        worker = FabricWorker(
            queue,
            snapshot_every=snapshot_every,
            telemetry=telemetry,
            telemetry_dir=telemetry_dir,
            poll=poll,
            max_points=max_points,
            observer=observer,
            execute=execute,
        )
        summary = worker.run()
    results = []
    for spec in specs:
        try:
            point = store.get(spec)
        except FabricBackendError as exc:
            # Coordinator unreachable at readback: report the points we
            # cannot fetch as failed instead of stack-tracing out.
            results.append(PointResult(
                spec, STATUS_FAILED,
                error=f"result unavailable, backend unreachable: {exc}",
                attempts=0,
            ))
            continue
        if point is not None:
            status = STATUS_DONE if spec.fingerprint() in summary.completed \
                else STATUS_CACHED
            results.append(PointResult(
                spec, status, point,
                attempts=1 if status == STATUS_DONE else 0,
            ))
            continue
        try:
            failure = store.get_sidecar(FAILURE_KIND, spec) or {}
        except FabricBackendError:
            failure = {}
        results.append(PointResult(
            spec, STATUS_FAILED,
            error=failure.get("error", "point unresolved after fabric drain"),
            attempts=int(failure.get("attempts", 0)),
        ))
    return results, summary


__all__ = ["FabricSummary", "FabricWorker", "drain"]
