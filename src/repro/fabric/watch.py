"""``repro fabric watch``: a live terminal dashboard over the fleet.

One :func:`fleet_status` scan per refresh, rendered as a full-screen
frame: the drain headline (done/failed/leased/pending), fleet rate and
ETA, a per-worker table (liveness, throughput, the point each worker is
on), and the live lease table with heartbeat ages.  Works identically
over both lease backends — pass the file store for a shared-directory
fleet or the coordinator client pair for an HTTP fleet; the scan is the
same code either way.

Rendering is deliberately dumb: ANSI clear-home when stdout is a tty,
plain sequential frames otherwise (pipes, logs, tests).  The loop exits
on its own once the grid is drained — a watch left running does not
outlive the campaign.
"""

from __future__ import annotations

import sys
import time

from repro.analysis.results import Table
from repro.analysis.store import ResultStore
from repro.engine.runspec import RunSpec
from repro.fabric.lease import DEFAULT_TTL
from repro.fabric.queue import QueueStatus, fleet_status

#: ANSI: clear screen, cursor home.
_CLEAR = "\x1b[2J\x1b[H"


def _fmt_eta(seconds: float) -> str:
    if seconds != seconds:  # NaN: no live workers
        return "?"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def render_frame(name: str, status: QueueStatus, now: float | None = None) -> str:
    """One dashboard frame as plain text (also the test surface)."""
    now = time.time() if now is None else now
    lines = [
        f"fabric watch · {name} · {time.strftime('%H:%M:%S', time.localtime(now))}",
        (
            f"  {status.done}/{status.total} done ({status.cached} cached), "
            f"{status.failed} failed, {status.leased} leased, "
            f"{status.stale} stale, {status.pending} pending"
        ),
    ]
    live = status.live_workers()
    rate = status.fleet_rate
    if status.drained:
        lines.append("  drained: every point has a result or a recorded failure")
    elif rate == rate:
        lines.append(
            f"  fleet: {len(live)} live worker(s), {rate:.2f} pt/s, "
            f"eta {_fmt_eta(status.eta_seconds)}"
        )
    else:
        lines.append("  fleet: no live workers — no fleet activity")
    if status.workers:
        table = Table("workers")
        for w in sorted(status.workers, key=lambda w: w.worker):
            table.add(
                worker=w.worker,
                live="yes" if w.live(2 * status.lease_ttl) else "no",
                done=w.done,
                failed=w.failed,
                rate=round(w.rate, 3),
                active_point=w.last_label or "-",
            )
        lines.append(table.to_text())
    if status.leases:
        table = Table("leases")
        for lease in sorted(status.leases, key=lambda le: le.claimed):
            table.add(
                point=lease.fingerprint[:12],
                worker=lease.worker,
                attempt=lease.attempt,
                age_s=round(lease.age(now), 1),
                stale="yes" if lease.stale(status.lease_ttl, now) else "no",
                group=lease.group[:8] or "-",
                label=lease.label,
            )
        lines.append(table.to_text())
    return "\n".join(lines)


def watch(
    name: str,
    specs: list[RunSpec],
    store: ResultStore,
    lease_ttl: float = DEFAULT_TTL,
    leases=None,
    interval: float = 2.0,
    max_frames: int | None = None,
    out=None,
) -> QueueStatus:
    """Refresh the dashboard every ``interval`` seconds until drained.

    ``leases`` selects the backend exactly as in
    :func:`~repro.fabric.queue.fleet_status`; ``max_frames`` bounds the
    loop for tests.  Returns the last status scanned.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    out = sys.stdout if out is None else out
    clear = getattr(out, "isatty", lambda: False)()
    frames = 0
    while True:
        status = fleet_status(specs, store, lease_ttl, leases=leases)
        frame = render_frame(name, status)
        print((_CLEAR + frame) if clear else frame, file=out, flush=True)
        frames += 1
        if status.drained:
            return status
        if max_frames is not None and frames >= max_frames:
            return status
        time.sleep(interval)


__all__ = ["render_frame", "watch"]
