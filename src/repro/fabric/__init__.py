"""Distributed sweep fabric: N hosts drain one campaign, no server.

The run layer already owns every coordination primitive a fleet needs:

- the **content-addressed result store** is the ground truth of what is
  done — a point whose fingerprint has a store entry never runs again,
  so a worker joining late (or rejoining after a crash) simply skips
  finished work;
- the **RunSpec fingerprint** is the unit of work identity — the same
  string on every host, because it hashes the spec's canonical JSON,
  not anything process-local;
- **snapshot checkpoints** make workers preemptible — a point killed
  mid-run resumes from its last checkpoint on whichever host picks it
  up next, with a bit-identical final result.

What was missing is mutual exclusion: two workers must not *start* the
same point at the same time (harmless for correctness — results are
deterministic and written atomically, so double execution produces
byte-identical entries — but wasteful).  :mod:`repro.fabric` adds it as
a **lease protocol** over the shared store directory itself (an
NFS-style shared filesystem; no coordinator process):

- :mod:`repro.fabric.lease` — ``<store>/leases/<fp>.json`` claimed via
  atomic exclusive create, carrying worker id, heartbeat timestamp and
  attempt count; stale leases (missed heartbeats) are reclaimed with
  the attempt count carried forward, so a point that keeps killing its
  workers exhausts a bounded attempt budget and is *recorded* as failed
  instead of wedging the fleet.
- :mod:`repro.fabric.queue` — :class:`WorkQueue` enumerates a grid's
  fingerprints and treats the store as the authority: claimable =
  no result, no failure record, no live lease.
- :mod:`repro.fabric.worker` — :class:`FabricWorker` loops
  claim -> run (through the orchestrator's own per-point worker path,
  honoring ``--snapshot-every``) -> write result -> release, emitting
  fleet-aware :class:`~repro.engine.tracing.SweepProgress` snapshots.

Deployment story: run ``repro fabric work <campaign> --store <shared>``
once per host (or ``repro campaign run <campaign> --fabric``); every
process is a peer, the store directory is the entire control plane.

For fleets that *cannot* mount one directory, the same protocol runs
behind a socket: :mod:`repro.fabric.coordinator` serves the lease
surface and the store traffic over HTTP (``repro fabric serve``), and
workers select it with ``--coordinator URL`` — ``WorkQueue`` and
``FabricWorker`` are identical in both modes, swapped at the lease
backend seam (:class:`~repro.fabric.lease.LeaseManager` vs
:class:`~repro.fabric.coordinator.client.HTTPLeaseManager`).
"""

from repro.fabric.lease import (
    FAILURE_KIND,
    LEASE_DIR,
    FabricBackendError,
    Lease,
    LeaseManager,
    lease_path,
    read_lease,
)
from repro.fabric.queue import (
    Claim,
    QueueStatus,
    WorkQueue,
    affinity_group,
    fleet_status,
    reap,
)
from repro.fabric.worker import FabricSummary, FabricWorker, drain

__all__ = [
    "Claim",
    "FabricBackendError",
    "FabricSummary",
    "FabricWorker",
    "FAILURE_KIND",
    "LEASE_DIR",
    "Lease",
    "LeaseManager",
    "QueueStatus",
    "WorkQueue",
    "affinity_group",
    "drain",
    "fleet_status",
    "lease_path",
    "read_lease",
    "reap",
]
