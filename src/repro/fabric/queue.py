"""WorkQueue: a grid of RunSpecs, with the store as the coordinator.

There is no queue *state* anywhere — the queue is a pure function of
the shared store directory, re-evaluated on every claim:

- a point whose fingerprint has a **result entry** is done (cached =
  done is the same rule the orchestrator's resume path applies, so a
  fabric worker joining a half-finished campaign, or rejoining after a
  crash, pays nothing to catch up);
- a point with a **failure record** (``failures`` sidecar — the fleet
  exhausted its attempt budget) is resolved-as-failed: reported, never
  retried, never wedging the drain;
- a point with a **fresh lease** is someone else's; with a **stale**
  one it is reclaimable (attempt count carried forward); with none it
  is claimable.

That makes every worker a peer: the first claim wins by atomic create,
everyone else moves on to the next point.  :func:`fleet_status` renders
the same scan as an observability snapshot (per-worker throughput from
the ``workers/`` stats files, the live lease table, fleet ETA), and
:func:`reap` is the operator's broom: drop stale leases, convert
budget-exhausted ones to failure records, and sweep orphaned
checkpoints/telemetry via :meth:`ResultStore.gc`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.store import GCReport, ResultStore, write_json_atomic
from repro.engine.runspec import RunSpec
from repro.fabric.lease import (
    DEFAULT_TTL,
    FAILURE_KIND,
    Lease,
    LeaseManager,
)

#: Store subdirectory holding per-worker stats files (one JSON file per
#: fabric worker, atomically rewritten after every resolved point).
WORKERS_DIR = "workers"

#: Fleet-wide execution attempts per point before it is recorded failed.
DEFAULT_MAX_ATTEMPTS = 3


@dataclass(frozen=True)
class Claim:
    """One successfully claimed point: the spec plus the lease held."""

    spec: RunSpec
    lease: Lease


@dataclass(frozen=True)
class WorkerStats:
    """One worker's self-reported progress (``workers/<id>.json``)."""

    worker: str
    host: str = ""
    pid: int = 0
    started: float = 0.0
    heartbeat: float = 0.0
    done: int = 0
    failed: int = 0
    reclaimed: int = 0
    rate: float = 0.0  # this worker's resolved points per second
    last_label: str = ""
    active: bool = True  # False once the worker exited cleanly

    def live(self, ttl: float, now: float | None = None) -> bool:
        """Still heartbeating (within ``ttl``) and not exited."""
        if not self.active:
            return False
        return ((time.time() if now is None else now) - self.heartbeat) <= ttl

    def to_jsonable(self) -> dict:
        return {
            "worker": self.worker, "host": self.host, "pid": self.pid,
            "started": self.started, "heartbeat": self.heartbeat,
            "done": self.done, "failed": self.failed,
            "reclaimed": self.reclaimed, "rate": self.rate,
            "last_label": self.last_label, "active": self.active,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "WorkerStats":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})


def worker_stats_path(store_root, worker_id: str) -> Path:
    return Path(store_root) / WORKERS_DIR / f"{worker_id}.json"


def read_worker_stats(store_root) -> list[WorkerStats]:
    """Every readable worker stats file under the store."""
    out = []
    for path in sorted(Path(store_root, WORKERS_DIR).glob("*.json")):
        try:
            out.append(WorkerStats.from_jsonable(json.loads(path.read_text())))
        except (OSError, ValueError, KeyError, TypeError):
            continue
    return out


@dataclass
class QueueStatus:
    """One scan of the fleet's shared state, for status lines and ETA."""

    total: int
    done: int  # results present in the store
    failed: int  # failure records (budget exhausted), result absent
    leased: int  # fresh leases on unresolved points
    stale: int  # stale leases on unresolved points
    cached: int = 0  # resolved before this queue/scan started
    leases: list[Lease] = field(default_factory=list)
    workers: list[WorkerStats] = field(default_factory=list)
    lease_ttl: float = DEFAULT_TTL

    @property
    def pending(self) -> int:
        return self.total - self.done - self.failed

    @property
    def drained(self) -> bool:
        return self.pending == 0

    def live_workers(self) -> list[WorkerStats]:
        return [w for w in self.workers if w.live(2 * self.lease_ttl)]

    @property
    def fleet_rate(self) -> float:
        """Fleet-wide resolved points per second (NaN with no live worker)."""
        live = self.live_workers()
        if not live:
            return float("nan")
        return sum(w.rate for w in live)

    @property
    def eta_seconds(self) -> float:
        rate = self.fleet_rate
        if rate != rate or rate == 0:
            return float("nan")
        return self.pending / rate


class WorkQueue:
    """Claimable view of one spec grid over one shared store.

    Parameters
    ----------
    specs:
        The grid (e.g. a campaign's expanded RunSpecs).  Order is the
        claim preference; every worker scans in the same order, and the
        lease race spreads them across the frontier.
    store:
        The shared :class:`ResultStore` — results, leases, failure
        records and checkpoints all live under its root.
    worker_id:
        This process's identity in lease files (default host-pid).
    lease_ttl:
        Seconds without a heartbeat before a lease is reclaimable.
    max_attempts:
        Fleet-wide execution attempts per point; the attempt that would
        exceed it records a failure instead.
    """

    def __init__(
        self,
        specs: list[RunSpec],
        store: ResultStore,
        *,
        worker_id: str | None = None,
        lease_ttl: float = DEFAULT_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.specs = list(specs)
        self.store = store
        self.max_attempts = max_attempts
        self.leases = LeaseManager(store.root, worker_id, ttl=lease_ttl)
        self._fps = [spec.fingerprint() for spec in self.specs]
        self._resolved: set[str] = set()  # monotone: resolved stays resolved
        self.initial_done = sum(1 for fp in self._fps if self._is_resolved(fp))

    @property
    def worker_id(self) -> str:
        return self.leases.worker_id

    @property
    def lease_ttl(self) -> float:
        return self.leases.ttl

    # ------------------------------------------------------------------
    def _failure_path(self, fp: str) -> Path:
        return self.store.sidecar_path(FAILURE_KIND, fp)

    def _is_resolved(self, fp: str) -> bool:
        if fp in self._resolved:
            return True
        if self.store.path_for(fp).exists() or self._failure_path(fp).exists():
            self._resolved.add(fp)
            return True
        return False

    def drained(self) -> bool:
        """Every point resolved (result or recorded failure)."""
        return all(self._is_resolved(fp) for fp in self._fps)

    # ------------------------------------------------------------------
    def claim(self) -> Claim | None:
        """The next runnable point, leased to this worker — or None.

        None means nothing is claimable *right now*: every unresolved
        point is freshly leased to someone else (poll again; reclaim
        kicks in if their heartbeats stop), or the grid is drained
        (check :meth:`drained`).  Budget-exhausted stale leases found
        during the scan are converted to failure records in passing, so
        a poisoned point blocks nobody.
        """
        for spec, fp in zip(self.specs, self._fps):
            if self._is_resolved(fp):
                continue
            lease = self.leases.current(fp)
            if lease is None:
                got = self.leases.try_claim(fp, label=spec.label())
                if got is not None:
                    return Claim(spec, got)
                continue  # lost the race; that point is being handled
            if lease.stale(self.lease_ttl):
                if lease.attempt >= self.max_attempts:
                    self.record_failure(
                        spec,
                        attempts=lease.attempt,
                        worker=lease.worker,
                        error=(
                            f"lease expired mid-run on attempt {lease.attempt}/"
                            f"{self.max_attempts} (last holder {lease.worker}); "
                            "attempt budget exhausted"
                        ),
                        stale_lease=lease,
                    )
                    continue
                got = self.leases.reclaim(lease, label=spec.label())
                if got is not None:
                    return Claim(spec, got)
        return None

    def record_failure(
        self,
        spec: RunSpec,
        attempts: int,
        worker: str,
        error: str,
        stale_lease: Lease | None = None,
    ) -> None:
        """Resolve a point as failed: sidecar record, no lease, no
        checkpoint left behind.

        Skipped if a result landed in the meantime (another worker beat
        the failure to it) — the store always wins.
        """
        fp = spec.fingerprint()
        if not self.store.path_for(fp).exists():
            self.store.put_sidecar(
                FAILURE_KIND, spec,
                {
                    "error": error,
                    "attempts": attempts,
                    "worker": worker,
                    "recorded": time.time(),
                },
            )
        # The dead point's mid-run checkpoint is dead weight now.
        from repro.snapshot.checkpoint import clear_checkpoint

        clear_checkpoint(self.store.root, spec)
        if stale_lease is not None:
            try:
                os.unlink(self.leases.path(fp))
            except OSError:
                pass
        self._resolved.add(fp)

    # ------------------------------------------------------------------
    def status(self) -> QueueStatus:
        return _scan_status(
            self._fps, self.store, self.lease_ttl, cached=self.initial_done
        )


# ----------------------------------------------------------------------
# Fleet observability + the reaper
# ----------------------------------------------------------------------

def _scan_status(
    fps: list[str], store: ResultStore, lease_ttl: float, cached: int = 0
) -> QueueStatus:
    done = failed = leased = stale = 0
    fp_set = set(fps)
    fail_root = Path(store.root) / FAILURE_KIND
    manager = LeaseManager(store.root, worker_id="status", ttl=lease_ttl)
    now = time.time()
    for fp in fps:
        if store.path_for(fp).exists():
            done += 1
        elif (fail_root / fp[:2] / f"{fp}.json").exists():
            failed += 1
    leases = [lease for lease in manager.live_leases() if lease.fingerprint in fp_set]
    for lease in leases:
        if lease.stale(lease_ttl, now):
            stale += 1
        else:
            leased += 1
    return QueueStatus(
        total=len(fps), done=done, failed=failed, leased=leased, stale=stale,
        cached=cached, leases=leases, workers=read_worker_stats(store.root),
        lease_ttl=lease_ttl,
    )


def fleet_status(
    specs: list[RunSpec], store: ResultStore, lease_ttl: float = DEFAULT_TTL
) -> QueueStatus:
    """One coherent snapshot of a fleet draining ``specs`` via ``store``."""
    return _scan_status([s.fingerprint() for s in specs], store, lease_ttl)


@dataclass
class ReapReport:
    """What :func:`reap` cleaned up."""

    dropped_leases: list[Lease] = field(default_factory=list)  # stale, back to pending
    failed_points: list[str] = field(default_factory=list)  # budget-exhausted fps
    pruned_workers: list[str] = field(default_factory=list)  # dead stats files
    gc: GCReport = field(default_factory=GCReport)


def reap(
    specs: list[RunSpec],
    store: ResultStore,
    lease_ttl: float = DEFAULT_TTL,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
) -> ReapReport:
    """Clean up after dead workers, in one pass.

    - stale leases whose attempt budget is exhausted become failure
      records (their checkpoints cleared);
    - other stale leases are dropped — the point returns to *pending*
      (note the attempt count restarts; a live fleet's own reclaim path
      preserves it, so ``reap`` is for after the dust settles);
    - worker stats files that stopped heartbeating are pruned;
    - orphaned checkpoints/telemetry are swept (:meth:`ResultStore.gc`).

    Fresh leases and in-flight checkpoints are untouched: reap is safe
    to run while a fleet is still draining.
    """
    queue = WorkQueue(
        specs, store, worker_id="reaper",
        lease_ttl=lease_ttl, max_attempts=max_attempts,
    )
    report = ReapReport()
    for spec, fp in zip(queue.specs, queue._fps):
        lease = queue.leases.current(fp)
        if lease is None or not lease.stale(lease_ttl):
            continue
        if queue._is_resolved(fp) or lease.attempt >= max_attempts:
            if not queue._is_resolved(fp):
                queue.record_failure(
                    spec, attempts=lease.attempt, worker=lease.worker,
                    error=(
                        f"reaped: lease expired on attempt {lease.attempt}/"
                        f"{max_attempts} (last holder {lease.worker})"
                    ),
                )
                report.failed_points.append(fp)
            try:
                os.unlink(queue.leases.path(fp))
            except OSError:
                pass
        else:
            try:
                os.unlink(queue.leases.path(fp))
                report.dropped_leases.append(lease)
            except OSError:
                pass
    now = time.time()
    for stats in read_worker_stats(store.root):
        if not stats.live(2 * lease_ttl, now):
            try:
                os.unlink(worker_stats_path(store.root, stats.worker))
                report.pruned_workers.append(stats.worker)
            except OSError:
                pass
    report.gc = store.gc()
    return report


__all__ = [
    "Claim",
    "DEFAULT_MAX_ATTEMPTS",
    "QueueStatus",
    "ReapReport",
    "WorkQueue",
    "WorkerStats",
    "WORKERS_DIR",
    "fleet_status",
    "read_worker_stats",
    "reap",
    "worker_stats_path",
    "write_json_atomic",
]
