"""WorkQueue: a grid of RunSpecs, with the store as the coordinator.

There is no queue *state* anywhere — the queue is a pure function of
the shared store directory, re-evaluated on every claim:

- a point whose fingerprint has a **result entry** is done (cached =
  done is the same rule the orchestrator's resume path applies, so a
  fabric worker joining a half-finished campaign, or rejoining after a
  crash, pays nothing to catch up);
- a point with a **failure record** (``failures`` sidecar — the fleet
  exhausted its attempt budget) is resolved-as-failed: reported, never
  retried, never wedging the drain;
- a point with a **fresh lease** is someone else's; with a **stale**
  one it is reclaimable (attempt count carried forward); with none it
  is claimable.

That makes every worker a peer: the first claim wins by atomic create,
everyone else moves on to the next point.  :func:`fleet_status` renders
the same scan as an observability snapshot (per-worker throughput from
the ``workers/`` stats files, the live lease table, fleet ETA), and
:func:`reap` is the operator's broom: drop stale leases, convert
budget-exhausted ones to failure records, and sweep orphaned
checkpoints/telemetry via :meth:`ResultStore.gc`.

The queue talks to its shared state only through two seams — the lease
backend (:class:`~repro.fabric.lease.LeaseManager` surface: claim /
renew / release / reclaim / drop / worker stats) and the store's
existence probes (``has`` / ``has_sidecar`` / ``resolved_many``) — so
the same class drains a shared-directory fabric and an HTTP-coordinated
one (:mod:`repro.fabric.coordinator`) without modification.

**Claim affinity**: every spec hashes to an :func:`affinity_group` —
specs identical up to load and seed share a group, which is exactly the
set of points that can share a host's warm state (forked snapshots,
precomputed min-port tables, page-hot topology objects).  A worker's
queue remembers the groups it has executed (``prefer_groups``) and
scans those points first on the next claim, so a fleet self-organizes
into group-per-host sharding without any assignment step; the group
rides in the lease file (the ``group`` hint) for observers.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.store import GCReport, ResultStore, write_json_atomic
from repro.engine.runspec import RunSpec
from repro.fabric.lease import (
    DEFAULT_TTL,
    FAILURE_KIND,
    WORKERS_DIR,
    Lease,
    LeaseManager,
)

#: Fleet-wide execution attempts per point before it is recorded failed.
DEFAULT_MAX_ATTEMPTS = 3


def affinity_group(spec: RunSpec) -> str:
    """The warm-state affinity group of ``spec`` (12 hex chars).

    Two specs share a group exactly when they differ only in ``load``
    and RNG seed — a load sweep's points at one configuration, or one
    point's seed replications.  Those are the points whose expensive
    derived state (warm forked snapshots a la ``run_transient_forked``,
    the array backend's min-port tables, the topology object itself) a
    single host can reuse across executions, so workers prefer claims
    within groups they have already paid for.  Deterministic across
    hosts: it hashes the spec's canonical JSON with the two excluded
    axes removed.
    """
    doc = dict(spec.to_jsonable())
    doc.pop("load", None)
    config = dict(doc.get("config") or {})
    config.pop("seed", None)
    doc["config"] = config
    blob = json.dumps(doc, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class Claim:
    """One successfully claimed point: the spec plus the lease held."""

    spec: RunSpec
    lease: Lease


@dataclass(frozen=True)
class WorkerStats:
    """One worker's self-reported progress (``workers/<id>.json``)."""

    worker: str
    host: str = ""
    pid: int = 0
    started: float = 0.0
    heartbeat: float = 0.0
    done: int = 0
    failed: int = 0
    reclaimed: int = 0
    rate: float = 0.0  # this worker's resolved points per second
    last_label: str = ""
    active: bool = True  # False once the worker exited cleanly

    def live(self, ttl: float, now: float | None = None) -> bool:
        """Still heartbeating (within ``ttl``) and not exited."""
        if not self.active:
            return False
        return ((time.time() if now is None else now) - self.heartbeat) <= ttl

    def to_jsonable(self) -> dict:
        return {
            "worker": self.worker, "host": self.host, "pid": self.pid,
            "started": self.started, "heartbeat": self.heartbeat,
            "done": self.done, "failed": self.failed,
            "reclaimed": self.reclaimed, "rate": self.rate,
            "last_label": self.last_label, "active": self.active,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "WorkerStats":
        return cls(**{k: data[k] for k in cls.__dataclass_fields__ if k in data})


def worker_stats_path(store_root, worker_id: str) -> Path:
    return Path(store_root) / WORKERS_DIR / f"{worker_id}.json"


def read_worker_stats(store_root) -> list[WorkerStats]:
    """Every readable worker stats file under the store."""
    out = []
    for path in sorted(Path(store_root, WORKERS_DIR).glob("*.json")):
        try:
            out.append(WorkerStats.from_jsonable(json.loads(path.read_text())))
        except (OSError, ValueError, KeyError, TypeError):
            continue
    return out


@dataclass
class QueueStatus:
    """One scan of the fleet's shared state, for status lines and ETA."""

    total: int
    done: int  # results present in the store
    failed: int  # failure records (budget exhausted), result absent
    leased: int  # fresh leases on unresolved points
    stale: int  # stale leases on unresolved points
    cached: int = 0  # resolved before this queue/scan started
    leases: list[Lease] = field(default_factory=list)
    workers: list[WorkerStats] = field(default_factory=list)
    lease_ttl: float = DEFAULT_TTL

    @property
    def pending(self) -> int:
        return self.total - self.done - self.failed

    @property
    def drained(self) -> bool:
        return self.pending == 0

    def live_workers(self) -> list[WorkerStats]:
        return [w for w in self.workers if w.live(2 * self.lease_ttl)]

    @property
    def fleet_rate(self) -> float:
        """Fleet-wide resolved points per second (NaN with no live worker)."""
        live = self.live_workers()
        if not live:
            return float("nan")
        return sum(w.rate for w in live)

    @property
    def eta_seconds(self) -> float:
        rate = self.fleet_rate
        if rate != rate or rate == 0:
            return float("nan")
        return self.pending / rate


class WorkQueue:
    """Claimable view of one spec grid over one shared store.

    Parameters
    ----------
    specs:
        The grid (e.g. a campaign's expanded RunSpecs).  Order is the
        claim preference; every worker scans in the same order, and the
        lease race spreads them across the frontier.
    store:
        The shared :class:`ResultStore` — results, leases, failure
        records and checkpoints all live under its root.
    worker_id:
        This process's identity in lease files (default host-pid).
    lease_ttl:
        Seconds without a heartbeat before a lease is reclaimable.
    max_attempts:
        Fleet-wide execution attempts per point; the attempt that would
        exceed it records a failure instead.
    leases:
        The lease backend.  Default: a file
        :class:`~repro.fabric.lease.LeaseManager` over ``store.root``
        (the shared-directory fabric).  Pass an
        :class:`~repro.fabric.coordinator.client.HTTPLeaseManager` to
        coordinate through a ``repro fabric serve`` process instead;
        ``worker_id``/``lease_ttl`` are then read off the backend.
    """

    def __init__(
        self,
        specs: list[RunSpec],
        store: ResultStore,
        *,
        worker_id: str | None = None,
        lease_ttl: float = DEFAULT_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        leases=None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.specs = list(specs)
        self.store = store
        self.max_attempts = max_attempts
        if leases is None:
            leases = LeaseManager(store.root, worker_id, ttl=lease_ttl)
        self.leases = leases
        self._fps = [spec.fingerprint() for spec in self.specs]
        self._groups = [affinity_group(spec) for spec in self.specs]
        #: Affinity groups this worker has already executed a point of;
        #: :meth:`claim` scans these groups' points first.
        self.prefer_groups: set[str] = set()
        self._resolved: set[str] = set()  # monotone: resolved stays resolved
        self._refresh_resolved()  # one batch probe, not one per point
        self.initial_done = sum(1 for fp in self._fps if fp in self._resolved)

    @property
    def worker_id(self) -> str:
        return self.leases.worker_id

    @property
    def lease_ttl(self) -> float:
        return self.leases.ttl

    # ------------------------------------------------------------------
    def _is_resolved(self, fp: str) -> bool:
        if fp in self._resolved:
            return True
        if self.store.has(fp) or self.store.has_sidecar(FAILURE_KIND, fp):
            self._resolved.add(fp)
            return True
        return False

    def _refresh_resolved(self) -> None:
        """One batch probe for every still-pending fingerprint.

        Over the file backend this is the same stat calls the per-point
        checks would make; over the HTTP backend it is a single round
        trip instead of one per pending point.
        """
        pending = [fp for fp in self._fps if fp not in self._resolved]
        if not pending:
            return
        for fp, kind in self.store.resolved_many(pending, FAILURE_KIND).items():
            if kind is not None:
                self._resolved.add(fp)

    def drained(self) -> bool:
        """Every point resolved (result or recorded failure)."""
        self._refresh_resolved()
        return all(fp in self._resolved for fp in self._fps)

    def _scan_order(self) -> list[tuple[RunSpec, str, str]]:
        """(spec, fp, group) triples, affinity-preferred points first.

        Within each partition the declared spec order is preserved, so
        with no executed groups yet this is exactly the legacy scan.
        """
        triples = list(zip(self.specs, self._fps, self._groups))
        if not self.prefer_groups:
            return triples
        preferred = [t for t in triples if t[2] in self.prefer_groups]
        rest = [t for t in triples if t[2] not in self.prefer_groups]
        return preferred + rest

    # ------------------------------------------------------------------
    def claim(self) -> Claim | None:
        """The next runnable point, leased to this worker — or None.

        None means nothing is claimable *right now*: every unresolved
        point is freshly leased to someone else (poll again; reclaim
        kicks in if their heartbeats stop), or the grid is drained
        (check :meth:`drained`).  Budget-exhausted stale leases found
        during the scan are converted to failure records in passing, so
        a poisoned point blocks nobody.  Points in affinity groups this
        worker has already executed are scanned first (warm-state
        sharding); the group hint is recorded in the claimed lease.
        """
        self._refresh_resolved()
        lease_map = self.leases.leases_map()
        for spec, fp, group in self._scan_order():
            if fp in self._resolved:
                continue
            lease = (
                lease_map.get(fp) if lease_map is not None
                else self.leases.current(fp)
            )
            if lease is None:
                got = self.leases.try_claim(fp, label=spec.label(), group=group)
                if got is not None:
                    return Claim(spec, got)
                continue  # lost the race; that point is being handled
            if lease.stale(self.lease_ttl):
                if lease.attempt >= self.max_attempts:
                    self.record_failure(
                        spec,
                        attempts=lease.attempt,
                        worker=lease.worker,
                        error=(
                            f"lease expired mid-run on attempt {lease.attempt}/"
                            f"{self.max_attempts} (last holder {lease.worker}); "
                            "attempt budget exhausted"
                        ),
                        stale_lease=lease,
                    )
                    continue
                got = self.leases.reclaim(lease, label=spec.label(), group=group)
                if got is not None:
                    return Claim(spec, got)
        return None

    def record_failure(
        self,
        spec: RunSpec,
        attempts: int,
        worker: str,
        error: str,
        stale_lease: Lease | None = None,
    ) -> None:
        """Resolve a point as failed: sidecar record, no lease, no
        checkpoint left behind.

        Skipped if a result landed in the meantime (another worker beat
        the failure to it) — the store always wins.
        """
        fp = spec.fingerprint()
        if not self.store.has(fp):
            self.store.put_sidecar(
                FAILURE_KIND, spec,
                {
                    "error": error,
                    "attempts": attempts,
                    "worker": worker,
                    "recorded": time.time(),
                },
            )
        # The dead point's mid-run checkpoint is dead weight now.
        from repro.snapshot.checkpoint import clear_checkpoint

        clear_checkpoint(self.store.root, spec)
        if stale_lease is not None:
            self.leases.drop(fp)
        self._resolved.add(fp)

    # ------------------------------------------------------------------
    def status(self) -> QueueStatus:
        return _scan_status(
            self._fps, self.store, self.lease_ttl,
            cached=self.initial_done, leases=self.leases,
        )


# ----------------------------------------------------------------------
# Fleet observability + the reaper
# ----------------------------------------------------------------------

def _scan_status(
    fps: list[str],
    store: ResultStore,
    lease_ttl: float,
    cached: int = 0,
    leases=None,
) -> QueueStatus:
    done = failed = leased = stale = 0
    fp_set = set(fps)
    if leases is None:
        leases = LeaseManager(store.root, worker_id="status", ttl=lease_ttl)
    now = time.time()
    for kind in store.resolved_many(fps, FAILURE_KIND).values():
        if kind == "result":
            done += 1
        elif kind == "failure":
            failed += 1
    live = [lease for lease in leases.live_leases() if lease.fingerprint in fp_set]
    for lease in live:
        if lease.stale(lease_ttl, now):
            stale += 1
        else:
            leased += 1
    workers = []
    for payload in leases.list_worker_stats():
        try:
            workers.append(WorkerStats.from_jsonable(payload))
        except (KeyError, TypeError):
            continue
    return QueueStatus(
        total=len(fps), done=done, failed=failed, leased=leased, stale=stale,
        cached=cached, leases=live, workers=workers, lease_ttl=lease_ttl,
    )


def fleet_status(
    specs: list[RunSpec],
    store: ResultStore,
    lease_ttl: float = DEFAULT_TTL,
    leases=None,
) -> QueueStatus:
    """One coherent snapshot of a fleet draining ``specs`` via ``store``."""
    return _scan_status(
        [s.fingerprint() for s in specs], store, lease_ttl, leases=leases
    )


@dataclass
class ReapReport:
    """What :func:`reap` cleaned up."""

    dropped_leases: list[Lease] = field(default_factory=list)  # stale, back to pending
    failed_points: list[str] = field(default_factory=list)  # budget-exhausted fps
    pruned_workers: list[str] = field(default_factory=list)  # dead stats files
    gc: GCReport = field(default_factory=GCReport)


def reap(
    specs: list[RunSpec],
    store: ResultStore,
    lease_ttl: float = DEFAULT_TTL,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    leases=None,
) -> ReapReport:
    """Clean up after dead workers, in one pass.

    - stale leases whose attempt budget is exhausted become failure
      records (their checkpoints cleared);
    - other stale leases are dropped — the point returns to *pending*
      (note the attempt count restarts; a live fleet's own reclaim path
      preserves it, so ``reap`` is for after the dust settles);
    - worker stats files that stopped heartbeating are pruned;
    - orphaned checkpoints/telemetry are swept (:meth:`ResultStore.gc`).

    Fresh leases and in-flight checkpoints are untouched: reap is safe
    to run while a fleet is still draining.
    """
    queue = WorkQueue(
        specs, store, worker_id="reaper",
        lease_ttl=lease_ttl, max_attempts=max_attempts, leases=leases,
    )
    report = ReapReport()
    lease_map = queue.leases.leases_map()
    for spec, fp in zip(queue.specs, queue._fps):
        lease = (
            lease_map.get(fp) if lease_map is not None
            else queue.leases.current(fp)
        )
        if lease is None or not lease.stale(lease_ttl):
            continue
        if queue._is_resolved(fp) or lease.attempt >= max_attempts:
            if not queue._is_resolved(fp):
                queue.record_failure(
                    spec, attempts=lease.attempt, worker=lease.worker,
                    error=(
                        f"reaped: lease expired on attempt {lease.attempt}/"
                        f"{max_attempts} (last holder {lease.worker})"
                    ),
                )
                report.failed_points.append(fp)
            queue.leases.drop(fp)
        else:
            if queue.leases.drop(fp):
                report.dropped_leases.append(lease)
    now = time.time()
    for payload in queue.leases.list_worker_stats():
        try:
            stats = WorkerStats.from_jsonable(payload)
        except (KeyError, TypeError):
            continue
        if not stats.live(2 * lease_ttl, now):
            if queue.leases.prune_worker(stats.worker):
                report.pruned_workers.append(stats.worker)
    report.gc = store.gc()
    return report


__all__ = [
    "Claim",
    "DEFAULT_MAX_ATTEMPTS",
    "QueueStatus",
    "ReapReport",
    "WorkQueue",
    "WorkerStats",
    "WORKERS_DIR",
    "affinity_group",
    "fleet_status",
    "read_worker_stats",
    "reap",
    "worker_stats_path",
    "write_json_atomic",
]
