"""Workload descriptions: jobs, their traffic and their placement.

A *workload* is a set of named jobs sharing one simulated dragonfly.
Each job owns a disjoint set of nodes (chosen by a placement policy or
pinned explicitly), runs its own traffic process restricted to those
nodes, and may arrive and depart mid-run.  The description layer here
is pure data with a lossless JSON round-trip, so a workload can ride
inside a :class:`~repro.engine.runspec.RunSpec` and participate in the
content fingerprint / result store exactly like every other identity
field.

Nothing in this module imports the engine — the run layer imports *us*
(``RunSpec`` embeds a :class:`WorkloadSpec`), so the dependency must
point this way only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Placement policies understood by :func:`repro.workloads.placement.place_jobs`.
PLACEMENTS = (
    "contiguous",  # lowest free node ids, in job order (locality-preserving)
    "random-nodes",  # seeded uniform sample of free nodes (fragmenting)
    "round-robin-groups",  # deal nodes one group at a time (interleaving)
    "group-exclusive",  # whole groups per job; groups are never shared
)

#: Traffic processes a job may run (see repro.traffic.generators).
TRAFFIC_KINDS = ("bernoulli", "burst", "trace")


@dataclass(frozen=True)
class JobSpec:
    """One job: a name, a node demand, a traffic process, a lifetime.

    Exactly one of ``nodes`` (a count, satisfied by the workload's
    placement policy) or ``node_list`` (explicit node ids, bypassing
    placement) must be given.  ``pattern`` is a *job-level* spec string
    over the job's own nodes (see :mod:`repro.workloads.jobpatterns`):
    ``"UN"``, ``"ADV+<k>"``, ``"SHIFT+<k>"``, ``"PERM"``, ``"STENCIL"``.

    ``start``/``stop`` bound the job's lifetime in simulation cycles
    (``stop=None`` = runs forever); the composite generator feeds each
    job *job-local* cycles counted from its own start, so a job's
    traffic stream does not depend on when it is scheduled.

    ``traffic="trace"`` replays a recorded offered-traffic trace: each
    ``(cycle, src, dst)`` event is a packet injection in *job-local*
    time and *rank space* (src/dst index into the job's placed nodes),
    so a trace records once and replays anywhere the scheduler puts the
    job.  The events ride inline in the spec (lossless, fingerprinted).
    """

    name: str
    nodes: int = 0
    node_list: tuple[int, ...] | None = None
    traffic: str = "bernoulli"
    pattern: str = "UN"
    load: float = 0.1  # phits/(node*cycle), bernoulli only
    packets_per_node: int = 1  # burst only
    start: int = 0
    stop: int | None = None
    trace: tuple[tuple[int, int, int], ...] | None = None  # trace only

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.node_list is not None and not isinstance(self.node_list, tuple):
            object.__setattr__(self, "node_list", tuple(self.node_list))
        has_count = self.nodes > 0
        has_list = self.node_list is not None and len(self.node_list) > 0
        if has_count == has_list:
            raise ValueError(
                f"job {self.name!r}: give exactly one of nodes > 0 or a "
                f"non-empty node_list"
            )
        if has_list and len(set(self.node_list)) != len(self.node_list):
            raise ValueError(f"job {self.name!r}: node_list has duplicates")
        if self.traffic not in TRAFFIC_KINDS:
            raise ValueError(
                f"job {self.name!r}: traffic must be one of {TRAFFIC_KINDS}, "
                f"got {self.traffic!r}"
            )
        if not 0.0 <= self.load <= 1.0:
            raise ValueError(f"job {self.name!r}: load must be in [0, 1]")
        if self.packets_per_node < 1:
            raise ValueError(f"job {self.name!r}: packets_per_node must be >= 1")
        if self.start < 0:
            raise ValueError(f"job {self.name!r}: start must be >= 0")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError(f"job {self.name!r}: stop must be > start")
        if (self.traffic == "trace") != (self.trace is not None):
            raise ValueError(
                f"job {self.name!r}: trace events are required iff "
                f"traffic='trace'"
            )
        if self.trace is not None:
            object.__setattr__(
                self, "trace", tuple(tuple(ev) for ev in self.trace)
            )
            size = self.size
            last = -1
            for ev in self.trace:
                if len(ev) != 3:
                    raise ValueError(
                        f"job {self.name!r}: trace events are (cycle, src, dst)"
                    )
                cycle, src, dst = ev
                if cycle < last:
                    raise ValueError(
                        f"job {self.name!r}: trace cycles must be sorted"
                    )
                last = cycle
                if cycle < 0:
                    raise ValueError(f"job {self.name!r}: trace cycle < 0")
                if not (0 <= src < size and 0 <= dst < size):
                    raise ValueError(
                        f"job {self.name!r}: trace ranks must be < {size}"
                    )
                if src == dst:
                    raise ValueError(
                        f"job {self.name!r}: trace src == dst at cycle {cycle}"
                    )

    @property
    def size(self) -> int:
        """Number of nodes the job demands."""
        return len(self.node_list) if self.node_list is not None else self.nodes

    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        out = {
            "name": self.name,
            "nodes": self.nodes,
            "node_list": list(self.node_list) if self.node_list is not None else None,
            "traffic": self.traffic,
            "pattern": self.pattern,
            "load": self.load,
            "packets_per_node": self.packets_per_node,
            "start": self.start,
            "stop": self.stop,
        }
        # Omitted when None so pre-trace fingerprints are unchanged.
        if self.trace is not None:
            out["trace"] = [list(ev) for ev in self.trace]
        return out

    @classmethod
    def from_jsonable(cls, data: dict) -> "JobSpec":
        if not isinstance(data, dict):
            raise ValueError("JobSpec JSON must be an object")
        known = {
            "name", "nodes", "node_list", "traffic", "pattern",
            "load", "packets_per_node", "start", "stop", "trace",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown JobSpec keys: {sorted(unknown)}")
        node_list = data.get("node_list")
        trace = data.get("trace")
        return cls(
            name=data["name"],
            nodes=data.get("nodes", 0),
            node_list=tuple(node_list) if node_list is not None else None,
            traffic=data.get("traffic", "bernoulli"),
            pattern=data.get("pattern", "UN"),
            load=data.get("load", 0.1),
            packets_per_node=data.get("packets_per_node", 1),
            start=data.get("start", 0),
            stop=data.get("stop"),
            trace=tuple(tuple(ev) for ev in trace) if trace is not None else None,
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """A set of jobs plus the policy that places them on nodes."""

    jobs: tuple[JobSpec, ...] = field(default_factory=tuple)
    placement: str = "contiguous"
    placement_seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.jobs, tuple):
            object.__setattr__(self, "jobs", tuple(self.jobs))
        if not self.jobs:
            raise ValueError("a workload needs at least one job")
        names = [job.name for job in self.jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {names}")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )

    def job_index(self, name: str) -> int:
        """Position of the named job (the packet-tag job id)."""
        for i, job in enumerate(self.jobs):
            if job.name == name:
                return i
        raise KeyError(f"no job named {name!r}")

    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        return {
            "jobs": [job.to_jsonable() for job in self.jobs],
            "placement": self.placement,
            "placement_seed": self.placement_seed,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "WorkloadSpec":
        if not isinstance(data, dict):
            raise ValueError("WorkloadSpec JSON must be an object")
        unknown = set(data) - {"jobs", "placement", "placement_seed"}
        if unknown:
            raise ValueError(f"unknown WorkloadSpec keys: {sorted(unknown)}")
        return cls(
            jobs=tuple(JobSpec.from_jsonable(j) for j in data["jobs"]),
            placement=data.get("placement", "contiguous"),
            placement_seed=data.get("placement_seed", 0),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        return cls.from_jsonable(json.loads(text))
