"""The composite generator: many jobs multiplexed onto one network.

:class:`CompositeTraffic` owns one rank-space traffic generator per job
(reusing the stock :class:`~repro.traffic.generators.BernoulliTraffic`
and :class:`~repro.traffic.generators.BurstTraffic` unchanged) and
multiplexes them into a single ``(src, dst, job)`` stream for the
simulator (``emits_jobs = True``).  Three properties make composition
well-behaved:

- **independent seeds** — each job's generator and pattern draw from
  RNGs derived from ``(base seed, job name)``, so adding, removing or
  reordering *other* jobs never changes a job's own traffic stream;
- **job-local time** — a job's generator sees cycles counted from the
  job's ``start``, so delaying a job shifts its stream instead of
  replaying a different one;
- **lifecycle-aware completion** — a job past its ``stop`` cycle is
  finished regardless of its generator's own opinion, which is what
  lets drain loops terminate for e.g. a burst job that was stopped
  before it ever emitted.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterable

from repro.topology.dragonfly import Dragonfly
from repro.traffic.generators import BernoulliTraffic, BurstTraffic, TrafficGenerator
from repro.traffic.trace import TraceEvent, TraceTraffic
from repro.workloads.jobpatterns import make_job_pattern
from repro.workloads.placement import place_jobs
from repro.workloads.spec import JobSpec, WorkloadSpec


def job_seed(base_seed: int, name: str) -> int:
    """Per-job seed: the run seed salted with a stable hash of the job
    name (``zlib.crc32`` — Python's ``hash()`` is randomized per
    process and would break cross-process determinism)."""
    return (base_seed << 16) ^ zlib.crc32(name.encode("utf-8"))


class PlacedJob:
    """One job at runtime: its spec, its nodes, its generator."""

    __slots__ = ("index", "spec", "nodes", "generator")

    def __init__(
        self, index: int, spec: JobSpec, nodes: tuple[int, ...],
        generator: TrafficGenerator,
    ) -> None:
        self.index = index
        self.spec = spec
        self.nodes = nodes
        self.generator = generator

    def active(self, cycle: int) -> bool:
        """Whether the job emits traffic at (global) ``cycle``."""
        if cycle < self.spec.start:
            return False
        return self.spec.stop is None or cycle < self.spec.stop

    def finished(self, cycle: int) -> bool:
        """Whether the job will never emit another packet."""
        if self.spec.stop is not None and cycle >= self.spec.stop:
            return True
        return self.generator.finished(cycle - self.spec.start)

    @property
    def offered_load(self) -> float:
        """Offered load per job node (a burst pushes at full rate; a
        trace's nominal rate is computed from its event density)."""
        if self.spec.traffic == "bernoulli":
            return self.spec.load
        if self.spec.traffic == "trace":
            return getattr(self.generator, "nominal_load", 1.0)
        return 1.0


def build_job_generator(
    topo: Dragonfly,
    spec: JobSpec,
    nodes: tuple[int, ...],
    packet_size: int,
    base_seed: int,
) -> TrafficGenerator:
    """Rank-space generator for one job (shared with the equivalence
    tests, which need the exact same construction stand-alone)."""
    seed = job_seed(base_seed, spec.name)
    if spec.traffic == "trace":
        # Rank-space replay: events are (job-local cycle, src rank, dst
        # rank); CompositeTraffic maps ranks to placed nodes, so a trace
        # recorded once replays wherever the scheduler lands the job.
        events = [TraceEvent(c, s, d) for c, s, d in (spec.trace or ())]
        gen = TraceTraffic(events)
        span = (events[-1].cycle + 1) if events else 1
        gen.nominal_load = (
            len(events) * packet_size / (span * len(nodes)) if events else 0.0
        )
        return gen
    pattern = make_job_pattern(
        topo, random.Random(seed ^ 0x9E3779B9), spec.pattern, nodes
    )
    if spec.traffic == "bernoulli":
        return BernoulliTraffic(pattern, spec.load, packet_size, len(nodes), seed)
    return BurstTraffic(pattern, spec.packets_per_node, len(nodes))


class CompositeTraffic(TrafficGenerator):
    """Multiplexes per-job rank-space generators into one stream."""

    emits_jobs = True

    def __init__(
        self,
        topo: Dragonfly,
        workload: WorkloadSpec,
        packet_size: int,
        seed: int,
    ) -> None:
        self.workload = workload
        placements = place_jobs(topo, workload)
        self.jobs = [
            PlacedJob(
                i, spec, nodes,
                build_job_generator(topo, spec, nodes, packet_size, seed),
            )
            for i, (spec, nodes) in enumerate(zip(workload.jobs, placements))
        ]

    def packets_for_cycle(self, cycle: int) -> Iterable[tuple[int, int, int]]:
        out: list[tuple[int, int, int]] = []
        for job in self.jobs:
            if not job.active(cycle):
                continue
            nodes = job.nodes
            index = job.index
            for src, dst in job.generator.packets_for_cycle(cycle - job.spec.start):
                out.append((nodes[src], nodes[dst], index))
        return out

    def finished(self, cycle: int) -> bool:
        return all(job.finished(cycle) for job in self.jobs)

    # ------------------------------------------------------------------
    def events(self) -> list[tuple[int, str, str]]:
        """Lifecycle edges as (cycle, "start"|"stop", job name), sorted."""
        out: list[tuple[int, str, str]] = []
        for job in self.jobs:
            out.append((job.spec.start, "start", job.spec.name))
            if job.spec.stop is not None:
                out.append((job.spec.stop, "stop", job.spec.name))
        return sorted(out)
