"""Multi-job workloads: placement, composition, per-job attribution.

The subsystem splits into an engine-free description/composition layer
(imported eagerly — :class:`~repro.engine.runspec.RunSpec` embeds a
:class:`WorkloadSpec`, so these modules must not import the engine
back) and an execution layer (:mod:`repro.workloads.runner`, exported
lazily below to keep the import graph acyclic).
"""

from repro.workloads.composite import CompositeTraffic, build_job_generator, job_seed
from repro.workloads.jobpatterns import make_job_pattern
from repro.workloads.placement import place_jobs
from repro.workloads.spec import PLACEMENTS, JobSpec, WorkloadSpec

_RUNNER_EXPORTS = {
    "JobResult",
    "WorkloadResult",
    "build_workload_sim",
    "run_workload",
    "run_workload_with_telemetry",
    "run_workload_cached",
    "isolated_spec",
    "job_slowdowns",
    "jain_across_jobs",
}

__all__ = [
    "CompositeTraffic",
    "JobSpec",
    "PLACEMENTS",
    "WorkloadSpec",
    "build_job_generator",
    "job_seed",
    "make_job_pattern",
    "place_jobs",
    *sorted(_RUNNER_EXPORTS),
]


def __getattr__(name):
    # Lazy: runner imports the engine, which imports repro.workloads.spec.
    if name in _RUNNER_EXPORTS:
        from repro.workloads import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
