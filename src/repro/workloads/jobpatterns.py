"""Job-level destination patterns over a job's own node set.

The topology-wide patterns of :mod:`repro.traffic.patterns` assume the
traffic spans every node; a job only owns a subset, so its patterns
operate in *rank space*: ranks ``0..J-1`` index the job's sorted node
list, the composite generator maps ranks back to global node ids.
Running each job's generator in rank space has a second payoff: a job
covering the whole machine under the same seed reproduces the
stand-alone generator bit for bit, which is exactly the equivalence the
composition-determinism tests pin down.

Supported spec strings (parsed by :func:`make_job_pattern`):

- ``"UN"`` — uniform over the job's ranks, source excluded (same draw
  sequence as the global ``UniformPattern`` when the job spans all
  nodes);
- ``"ADV+<k>"`` — adversarial over the job's *occupied groups*: every
  rank targets a random job rank whose node lives ``k`` occupied-groups
  ahead.  With a placement that touches all groups this reproduces the
  paper's ADV traffic from inside a job;
- ``"SHIFT+<k>"`` — cyclic shift in rank space (1-D neighbour
  exchange);
- ``"PERM"`` — a fixed fixed-point-free permutation of the ranks;
- ``"STENCIL"`` — 2-D near-square halo exchange over ranks (sequential
  mapping: rank r on the r-th job node, locality-preserving under
  contiguous placement).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.topology.dragonfly import Dragonfly
from repro.traffic.applications import near_square_dims


class JobPattern(ABC):
    """Maps source ranks to destination ranks within one job."""

    name: str = "?"

    def __init__(self, num_ranks: int, rng: random.Random) -> None:
        if num_ranks < 2:
            raise ValueError("a job pattern needs at least 2 nodes")
        self.num_ranks = num_ranks
        self.rng = rng

    @abstractmethod
    def dest(self, src: int) -> int:
        """Destination rank for a packet generated at rank ``src``."""


class JobUniform(JobPattern):
    """UN over the job's ranks (source excluded)."""

    name = "UN"

    def dest(self, src: int) -> int:
        # Identical draw idiom to patterns.UniformPattern so that a job
        # spanning the whole machine replays the global generator.
        d = self.rng.randrange(self.num_ranks - 1)
        return d + 1 if d >= src else d


class JobAdversarial(JobPattern):
    """ADV+k over the job's occupied groups.

    The job's nodes are bucketed by dragonfly group; a source in the
    i-th occupied group targets a random rank of occupied group
    ``(i + k) mod n_groups``.  Requires the job to span >= 2 groups.
    """

    def __init__(
        self,
        num_ranks: int,
        rng: random.Random,
        offset: int,
        topo: Dragonfly,
        nodes: tuple[int, ...],
    ) -> None:
        super().__init__(num_ranks, rng)
        if offset < 1:
            raise ValueError(f"ADV offset must be >= 1, got {offset}")
        by_group: dict[int, list[int]] = {}
        for rank, node in enumerate(nodes):
            by_group.setdefault(topo.node_group(node), []).append(rank)
        occupied = sorted(by_group)
        if len(occupied) < 2:
            raise ValueError(
                "job-level ADV needs the job to span at least 2 groups "
                f"(it occupies {len(occupied)})"
            )
        self.offset = offset
        self.name = f"ADV+{offset}"
        self._group_of_rank = [0] * num_ranks
        for i, g in enumerate(occupied):
            for rank in by_group[g]:
                self._group_of_rank[rank] = i
        self._members = [by_group[g] for g in occupied]

    def dest(self, src: int) -> int:
        members = self._members
        target = members[(self._group_of_rank[src] + self.offset) % len(members)]
        return target[self.rng.randrange(len(target))]


class JobShift(JobPattern):
    """Cyclic shift in rank space: rank ``r`` sends to ``r + k``."""

    def __init__(self, num_ranks: int, rng: random.Random, shift: int) -> None:
        super().__init__(num_ranks, rng)
        if shift % num_ranks == 0:
            raise ValueError(f"shift {shift} maps every rank onto itself")
        self.shift = shift
        self.name = f"SHIFT+{shift}"

    def dest(self, src: int) -> int:
        return (src + self.shift) % self.num_ranks


class JobPermutation(JobPattern):
    """Fixed random permutation of the ranks, fixed points rotated away."""

    name = "PERM"

    def __init__(self, num_ranks: int, rng: random.Random) -> None:
        super().__init__(num_ranks, rng)
        perm = list(range(num_ranks))
        random.Random(rng.randrange(2**31)).shuffle(perm)
        for i in range(num_ranks):
            if perm[i] == i:
                j = (i + 1) % num_ranks
                perm[i], perm[j] = perm[j], perm[i]
        self._perm = perm

    def dest(self, src: int) -> int:
        return self._perm[src]


class JobStencil(JobPattern):
    """2-D near-square periodic halo exchange over the job's ranks."""

    def __init__(self, num_ranks: int, rng: random.Random) -> None:
        super().__init__(num_ranks, rng)
        self.dims = near_square_dims(num_ranks, 2)
        self.name = f"STENCIL{'x'.join(map(str, self.dims))}"
        self._cols = self.dims[1]

    def _neighbor(self, src: int, axis: int, direction: int) -> int:
        rows, cols = self.dims
        r, c = divmod(src, cols)
        if axis == 0:
            r = (r + direction) % rows
        else:
            c = (c + direction) % cols
        return r * cols + c

    def dest(self, src: int) -> int:
        axis = self.rng.randrange(2)
        direction = 1 if self.rng.random() < 0.5 else -1
        nbr = self._neighbor(src, axis, direction)
        if nbr == src:  # 1-wide dimension wraps onto itself
            nbr = self._neighbor(src, 1 - axis, 1)
        return nbr if nbr != src else (src + 1) % self.num_ranks


def make_job_pattern(
    topo: Dragonfly,
    rng: random.Random,
    spec: str,
    nodes: tuple[int, ...],
) -> JobPattern:
    """Build a job pattern from its spec string.

    ``nodes`` is the job's placed node set (sorted, global ids); rank
    ``r`` is ``nodes[r]``.
    """
    spec = spec.upper()
    n = len(nodes)
    if spec == "UN":
        return JobUniform(n, rng)
    if spec.startswith("ADV+"):
        return JobAdversarial(n, rng, int(spec[4:]), topo, nodes)
    if spec.startswith("SHIFT+"):
        return JobShift(n, rng, int(spec[6:]))
    if spec == "PERM":
        return JobPermutation(n, rng)
    if spec == "STENCIL":
        return JobStencil(n, rng)
    raise ValueError(f"unknown job pattern spec {spec!r}")
