"""Job placement: mapping each job to a disjoint set of nodes.

Placement decides how much jobs *can* interfere.  The four policies
span the spectrum the interference experiments need:

- ``contiguous`` — jobs take the lowest free node ids in job order.
  Consecutive nodes share routers and groups, so a job's traffic stays
  local but neighbouring jobs share the boundary router/group.
- ``random-nodes`` — a seeded uniform sample of the free nodes.  Jobs
  fragment across the whole machine (Bhatele-style randomization):
  no job owns a hotspot, every job shares links with every other.
- ``round-robin-groups`` — nodes are dealt one group at a time, so a
  job of ``k`` nodes touches ``min(k, G)`` groups and every group hosts
  slices of several jobs.  This is the maximum-sharing placement the
  bully/victim study uses.
- ``group-exclusive`` — each job receives whole groups (enough to
  cover its demand) and no group ever hosts two jobs.  Local links are
  private; only global links are shared.

Jobs with an explicit ``node_list`` bypass the policy but still count
against the free pool, so mixed explicit/placed workloads stay
disjoint.  Two *pinned* jobs may share a node only when their lifetimes
are disjoint in time (``[start, stop)`` intervals do not overlap) —
that is how a compiled cluster scenario reuses nodes as jobs churn
through the machine.  All policies are deterministic in (topology,
workload): ``random-nodes`` draws from ``random.Random(placement_seed)``
only.
"""

from __future__ import annotations

import math
import random

from repro.topology.dragonfly import Dragonfly
from repro.workloads.spec import JobSpec, WorkloadSpec


def _lifetimes_overlap(a: JobSpec, b: JobSpec) -> bool:
    a_stop = math.inf if a.stop is None else a.stop
    b_stop = math.inf if b.stop is None else b.stop
    return a.start < b_stop and b.start < a_stop


def place_jobs(topo: Dragonfly, workload: WorkloadSpec) -> list[tuple[int, ...]]:
    """Node sets per job, in workload order (each sorted ascending).

    Raises :class:`ValueError` when the demand does not fit, an explicit
    node is out of range, or two concurrently-live jobs claim the same
    node.
    """
    num_nodes = topo.num_nodes
    used: set[int] = set()
    claimants: dict[int, list[JobSpec]] = {}
    placed: list[tuple[int, ...] | None] = [None] * len(workload.jobs)

    # Explicit pins first: they constrain what the policy may hand out.
    for i, job in enumerate(workload.jobs):
        if job.node_list is None:
            continue
        for node in job.node_list:
            if not 0 <= node < num_nodes:
                raise ValueError(
                    f"job {job.name!r}: node {node} out of range [0, {num_nodes})"
                )
            for other in claimants.get(node, ()):
                if _lifetimes_overlap(job, other):
                    raise ValueError(
                        f"job {job.name!r}: node {node} already claimed by "
                        f"concurrent job {other.name!r}"
                    )
            claimants.setdefault(node, []).append(job)
            used.add(node)
        placed[i] = tuple(sorted(job.node_list))

    # Capacity: policy-placed jobs each need their own nodes for the
    # whole run; pinned jobs jointly occupy the union of their pins
    # (time-sharing within it is already proven safe above).
    demand = sum(j.size for j in workload.jobs if j.node_list is None)
    demand += len(claimants)
    if demand > num_nodes:
        raise ValueError(
            f"workload demands {demand} nodes but the network has {num_nodes}"
        )

    rng = random.Random(workload.placement_seed)
    for i, job in enumerate(workload.jobs):
        if placed[i] is not None:
            continue
        nodes, _owned = place_one(
            topo, workload.placement, used, job.size, job.name, rng
        )
        placed[i] = nodes
    return placed  # type: ignore[return-value]


def place_one(
    topo: Dragonfly,
    policy: str,
    used: set[int],
    size: int,
    name: str,
    rng: random.Random,
) -> tuple[tuple[int, ...], frozenset[int]]:
    """Place one job of ``size`` nodes against the current free pool.

    Returns ``(nodes, owned)``: the nodes the job occupies, and the full
    set it reserves (``group-exclusive`` reserves whole groups; the two
    sets are equal for every other policy).  ``owned`` is added to
    ``used`` on success; a cluster scheduler frees exactly ``owned``
    when the job departs.  Raises :class:`ValueError` when the job does
    not fit — in that case nothing is mutated and no RNG draw is spent,
    so "try, and queue on failure" is side-effect free.
    """
    num_nodes = topo.num_nodes
    if policy == "contiguous":
        nodes = _take_lowest(num_nodes, used, size, name)
        owned = nodes
    elif policy == "random-nodes":
        free = [n for n in range(num_nodes) if n not in used]
        if len(free) < size:
            raise ValueError(_short(name, size, len(free)))
        nodes = sorted(rng.sample(free, size))
        owned = nodes
    elif policy == "round-robin-groups":
        nodes = _deal_groups(topo, used, size, name)
        owned = nodes
    elif policy == "group-exclusive":
        nodes, owned = _whole_groups(topo, used, size, name)
    else:  # pragma: no cover - WorkloadSpec validates the policy name
        raise ValueError(f"unknown placement policy {policy!r}")
    used.update(owned)
    return tuple(nodes), frozenset(owned)


def _short(name: str, want: int, have: int) -> str:
    return f"job {name!r} needs {want} nodes but only {have} are free"


def _take_lowest(num_nodes: int, used: set[int], size: int, name: str) -> list[int]:
    nodes: list[int] = []
    for node in range(num_nodes):
        if node in used:
            continue
        nodes.append(node)
        if len(nodes) == size:
            return nodes
    raise ValueError(_short(name, size, len(nodes)))


def _deal_groups(topo: Dragonfly, used: set[int], size: int, name: str) -> list[int]:
    """Round-robin over groups: one node from each group per sweep."""
    nodes: list[int] = []
    # Per-group cursors into the group's node range, advanced past
    # already-claimed nodes lazily.
    cursors = [iter(topo.group_nodes(g)) for g in range(topo.num_groups)]
    exhausted = [False] * topo.num_groups
    while len(nodes) < size:
        progressed = False
        for g in range(topo.num_groups):
            if len(nodes) == size:
                break
            if exhausted[g]:
                continue
            # Group node ranges are disjoint and each cursor yields a
            # node at most once, so no duplicate check is needed.
            for node in cursors[g]:
                if node not in used:
                    nodes.append(node)
                    progressed = True
                    break
            else:
                exhausted[g] = True
        if not progressed:
            raise ValueError(_short(name, size, len(nodes)))
    return sorted(nodes)


def _whole_groups(
    topo: Dragonfly, used: set[int], size: int, name: str
) -> tuple[list[int], list[int]]:
    """Whole free groups, lowest-numbered first.

    Returns ``(occupied, owned)``: the job occupies the first ``size``
    nodes of its groups but *owns* every node of them, so no other job
    can enter.  Does not mutate ``used`` (the caller does)."""
    per_group = topo.p * topo.a
    needed = -(-size // per_group)  # ceil
    groups: list[int] = []
    for g in range(topo.num_groups):
        if any(node in used for node in topo.group_nodes(g)):
            continue
        groups.append(g)
        if len(groups) == needed:
            break
    if len(groups) < needed:
        raise ValueError(
            f"job {name!r} needs {needed} exclusive group(s) but only "
            f"{len(groups)} are fully free"
        )
    pool = [node for g in groups for node in topo.group_nodes(g)]
    return pool[:size], pool
