"""Running workloads and attributing the results back to jobs.

:func:`run_workload` executes one multi-job :class:`RunSpec` (a spec
whose ``workload`` field is set) with per-job metrics enabled and
returns a :class:`WorkloadResult`: the global :class:`LoadPoint`, one
LoadPoint per job (throughput normalized to the *job's* node count, so
it is directly comparable to an isolated run of the same job), Jain's
fairness index across job throughputs, and a job-by-job interference
matrix derived from per-job link occupancy.

Interference matrix
-------------------
During the measurement window every output channel counts the phits it
carried per job (``OutputChannel.job_phits``).  With ``u_i(c)`` the
per-cycle rate of job ``i`` on channel ``c``, the matrix entry

    M[i][j] = sum over router-to-router channels c of u_i(c) * u_j(c)

is the *channel-sharing energy* of the pair: it is large exactly when
both jobs load the same channels hard at the same time, zero when their
traffic never meets.  The diagonal measures a job's self-concentration
(how much it funnels onto few links).  The matrix is symmetric by
construction and routing-sensitive — OFAR's misrouting spreads a bully
job's phits over many channels, shrinking its row.

Slowdowns against an isolated baseline come from
:func:`isolated_spec` + :func:`job_slowdowns`: the baseline re-runs one
job alone on its *exact placed nodes*, so the only difference is the
other jobs' traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.engine.metrics import LoadPoint
from repro.engine.runspec import RunSpec
from repro.engine.simulator import Simulator
from repro.network.router import CODE_NODE
from repro.topology.dragonfly import Dragonfly
from repro.workloads.composite import CompositeTraffic
from repro.workloads.placement import place_jobs
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.store import ResultStore
    from repro.telemetry.config import TelemetryConfig
    from repro.telemetry.sampler import TelemetrySeries

#: Store sidecar kind for cached WorkloadResults (see run_workload_cached).
SIDECAR_KIND = "workloads"

WORKLOAD_RESULT_FORMAT = 1


@dataclass
class JobResult:
    """One job's share of a workload run."""

    name: str
    num_nodes: int
    point: LoadPoint

    def to_jsonable(self) -> dict:
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "point": self.point.to_jsonable(),
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "JobResult":
        return cls(
            name=data["name"],
            num_nodes=data["num_nodes"],
            point=LoadPoint.from_jsonable(data["point"]),
        )


@dataclass
class WorkloadResult:
    """Everything one workload run produces, attributed per job."""

    total: LoadPoint
    jobs: list[JobResult]  # workload order == packet-tag job id order
    jain_across_jobs: float
    interference: list[list[float]]  # symmetric jobs x jobs matrix

    def job(self, name: str) -> JobResult:
        for jr in self.jobs:
            if jr.name == name:
                return jr
        raise KeyError(f"no job named {name!r}")

    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        return {
            "format": WORKLOAD_RESULT_FORMAT,
            "total": self.total.to_jsonable(),
            "jobs": [jr.to_jsonable() for jr in self.jobs],
            "jain_across_jobs": self.jain_across_jobs,
            "interference": self.interference,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "WorkloadResult":
        if data.get("format") != WORKLOAD_RESULT_FORMAT:
            raise ValueError(f"unknown WorkloadResult format {data.get('format')!r}")
        return cls(
            total=LoadPoint.from_jsonable(data["total"]),
            jobs=[JobResult.from_jsonable(j) for j in data["jobs"]],
            jain_across_jobs=data["jain_across_jobs"],
            interference=[list(row) for row in data["interference"]],
        )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def build_workload_sim(spec: RunSpec) -> Simulator:
    """Fresh simulator + composite generator for one workload spec.

    The simulator class comes from the spec's engine backend
    (:func:`~repro.engine.backend.resolve_backend`), like every other
    spec-driven builder.
    """
    from repro.engine.backend import resolve_backend

    if spec.workload is None:
        raise ValueError("spec.workload must be set to run a workload")
    config = spec.config
    sim = resolve_backend(spec).simulator(
        config, record_per_source=True, record_per_job=True
    )
    sim.generator = CompositeTraffic(
        sim.network.topo, spec.workload, config.packet_size, config.seed
    )
    return sim


def total_offered_load(generator: CompositeTraffic, num_nodes: int) -> float:
    """Network-wide offered load implied by the jobs, phits/(node*cycle)."""
    return sum(
        job.offered_load * len(job.nodes) for job in generator.jobs
    ) / num_nodes


def run_workload(spec: RunSpec) -> WorkloadResult:
    """Warm up, measure, and attribute one multi-job spec."""
    sim = build_workload_sim(spec)
    sim.warm_up(spec.warmup)
    baseline = _job_phit_baseline(sim.network)
    sim.run(spec.measure)
    return _summarize(sim, baseline)


def run_workload_with_telemetry(
    spec: RunSpec, telemetry: "TelemetryConfig | None" = None
) -> tuple[WorkloadResult, "TelemetrySeries | None"]:
    """:func:`run_workload` with an in-run sampler over the measurement
    window; the WorkloadResult is bit-identical either way."""
    cfg = telemetry if telemetry is not None else spec.telemetry
    if cfg is None:
        return run_workload(spec), None
    from repro.telemetry.sampler import TelemetrySampler

    sim = build_workload_sim(spec)
    sim.warm_up(spec.warmup)
    baseline = _job_phit_baseline(sim.network)
    sampler = TelemetrySampler(sim, cfg)
    sampler.attach()
    sim.run(spec.measure)
    return _summarize(sim, baseline), sampler.finish()


def _job_phit_baseline(network) -> dict[tuple[int, int], dict[int, int]]:
    """Snapshot per-channel per-job phit counters at window start."""
    return {
        (rt.rid, ch.port): dict(ch.job_phits)
        for rt in network.routers
        for ch in rt.out
        if ch is not None and ch.kind_code != CODE_NODE
    }


def _summarize(
    sim: Simulator, baseline: dict[tuple[int, int], dict[int, int]]
) -> WorkloadResult:
    generator = sim.generator
    assert isinstance(generator, CompositeTraffic)
    metrics = sim.metrics
    num_nodes = sim.network.topo.num_nodes
    cycle = sim.cycle
    window = max(1, cycle - metrics.window_start)

    total = metrics.load_point(total_offered_load(generator, num_nodes), cycle)
    jobs = [
        JobResult(
            name=job.spec.name,
            num_nodes=len(job.nodes),
            point=metrics.job_load_point(
                job.index, job.offered_load, cycle, len(job.nodes)
            ),
        )
        for job in generator.jobs
    ]

    n_jobs = len(jobs)
    matrix = [[0.0] * n_jobs for _ in range(n_jobs)]
    for rt in sim.network.routers:
        for ch in rt.out:
            if ch is None or ch.kind_code == CODE_NODE or not ch.job_phits:
                continue
            base = baseline.get((rt.rid, ch.port), {})
            rates = [
                (job, (phits - base.get(job, 0)) / window)
                for job, phits in ch.job_phits.items()
                if phits - base.get(job, 0) > 0
            ]
            for a, (job_a, u_a) in enumerate(rates):
                for job_b, u_b in rates[a:]:
                    e = u_a * u_b
                    matrix[job_a][job_b] += e
                    if job_a != job_b:
                        matrix[job_b][job_a] += e

    return WorkloadResult(
        total=total,
        jobs=jobs,
        jain_across_jobs=jain_across_jobs([jr.point.throughput for jr in jobs]),
        interference=matrix,
    )


def jain_across_jobs(throughputs: list[float]) -> float:
    """Jain's fairness index over per-job per-node throughputs.

    Because each job's throughput is already normalized by its own node
    count, a big job and a small job receiving proportional service
    score as fair.  1.0 = perfectly fair; 1/n = one job gets everything;
    1.0 by convention when nothing flowed.
    """
    vals = [t for t in throughputs if not math.isnan(t)]
    total = sum(vals)
    if not vals or total == 0:
        return 1.0
    squares = sum(t * t for t in vals)
    return (total * total) / (len(vals) * squares)


# ----------------------------------------------------------------------
# Isolated baselines and slowdowns
# ----------------------------------------------------------------------
def isolated_spec(spec: RunSpec, job_name: str) -> RunSpec:
    """The spec that runs ``job_name`` *alone* on its exact placed nodes.

    Placement is resolved against the full workload and pinned via
    ``node_list``, so the isolated run differs from the shared run only
    by the other jobs' absence — the definition a slowdown needs.
    """
    if spec.workload is None:
        raise ValueError("spec.workload must be set")
    workload = spec.workload
    topo = Dragonfly(spec.config.h)
    placements = place_jobs(topo, workload)
    index = workload.job_index(job_name)
    pinned = replace(
        workload.jobs[index], nodes=0, node_list=placements[index]
    )
    return replace(
        spec,
        workload=WorkloadSpec(
            jobs=(pinned,),
            placement=workload.placement,
            placement_seed=workload.placement_seed,
        ),
    )


def job_slowdowns(
    shared: WorkloadResult, isolated: dict[str, WorkloadResult]
) -> dict[str, float]:
    """Per-job latency slowdown: shared latency / isolated latency.

    1.0 = no interference; NaN when either window measured nothing.
    """
    out: dict[str, float] = {}
    for jr in shared.jobs:
        base = isolated[jr.name].job(jr.name).point.avg_latency
        out[jr.name] = jr.point.avg_latency / base
    return out


# ----------------------------------------------------------------------
# Store integration
# ----------------------------------------------------------------------
def run_workload_cached(
    spec: RunSpec, store: "ResultStore | None", use_cache: bool = True
) -> WorkloadResult:
    """:func:`run_workload` through the result store.

    The full :class:`WorkloadResult` is cached as a store *sidecar*
    (kind ``"workloads"``) keyed by the spec fingerprint; the global
    LoadPoint is additionally written to the main store so orchestrated
    sweeps over the same spec hit cache.  A hit round-trips through
    JSON, which is lossless — cached and fresh results are identical.
    """
    if store is not None and use_cache:
        payload = store.get_sidecar(SIDECAR_KIND, spec)
        if payload is not None:
            try:
                return WorkloadResult.from_jsonable(payload)
            except (ValueError, KeyError, TypeError):
                pass  # corrupt sidecar: recompute and overwrite
    result = run_workload(spec)
    if store is not None:
        store.put_sidecar(SIDECAR_KIND, spec, result.to_jsonable())
        store.put(spec, result.total)
    return result
