"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
- ``info``      — topology facts and analytic bounds for a given h;
- ``sweep``     — latency/throughput load sweep for one routing+pattern;
- ``transient`` — Fig. 6-style pattern-switch experiment;
- ``telemetry`` — pattern-switch experiment with an in-run telemetry
  sampler: exports the windowed series (JSONL/CSV) and renders
  utilization heatmaps/sparklines around the switch;
- ``burst``     — Fig. 7-style burst-consumption experiment;
- ``interference`` — multi-job bully/victim study: per-job LoadPoints
  and slowdowns vs isolated baselines under MIN vs OFAR;
- ``offsets``   — Fig. 2-style ADV offset study (simulated + analytic);
- ``figure``    — regenerate a paper figure by name (fig2..fig9, ablations,
  congestion, mapping);
- ``scenario``  — cluster scenarios (``repro.cluster``): ``schedule``
  compiles a churn scenario's job timeline without the network,
  ``run`` executes it and reports per-job outcomes and fault blast
  radii;
- ``campaign``  — declarative campaign files (``repro.campaign``):
  ``validate`` / ``expand`` / ``run`` a YAML/JSON study with config
  inheritance, cartesian grids, seed replication and post emitters;
- ``fabric``    — distributed campaign draining (``repro.fabric``):
  ``work`` runs one lease-coordinated worker against a shared store
  (start any number, on any hosts that see the directory), ``status``
  shows fleet progress and the live lease table, ``reap`` cleans up
  after dead workers;
- ``store``     — result-store maintenance (``repro.analysis.store``):
  ``verify`` re-hashes every cached entry, ``gc`` sweeps orphaned
  checkpoints/telemetry, ``stats`` summarizes disk usage by kind.

Examples::

    python -m repro info --h 6
    python -m repro sweep --routing ofar --pattern ADV+3 --h 3 \
        --loads 0.1,0.2,0.3,0.4
    python -m repro sweep --routing ofar --pattern UN --h 2 \
        --store /tmp/st --telemetry 100
    python -m repro telemetry --routing pb --before UN --after ADV+2 \
        --out series.jsonl --heatmap
    python -m repro figure fig5 --scale medium
    python -m repro campaign run campaigns/fig3.yaml --workers 8 --resume
    python -m repro fabric work campaigns/h6_first.yaml \
        --store /shared/h6 --snapshot-every 2000   # on every host
    python -m repro fabric status campaigns/h6_first.yaml --store /shared/h6
    python -m repro store verify /shared/h6
"""

from __future__ import annotations

import argparse

from repro.analysis.bounds import (
    local_link_advh_bound,
    min_adversarial_bound,
    ring_added_global_fraction,
    ring_added_link_fraction,
    valiant_bound,
)
from repro.analysis.results import Table
from repro.analysis.store import ResultStore
from repro.engine.backend import default_backend
from repro.engine.config import SimulationConfig
from repro.engine.orchestrator import summarize
from repro.engine.runner import run_burst, run_spec, run_transient
from repro.engine.runspec import RunSpec
from repro.experiments.common import (
    DEFAULT_STORE,
    fabric_options_from_args,
    get_scale,
    orchestration,
    orchestration_options,
    orchestrator_from_args,
)
from repro.topology.dragonfly import Dragonfly


def _config(args, routing: str | None = None) -> SimulationConfig:
    routing = routing or args.routing
    if getattr(args, "paper", False):
        return SimulationConfig.paper(routing=routing, seed=args.seed)
    return SimulationConfig.small(h=args.h, routing=routing, seed=args.seed)


def cmd_info(args) -> None:
    topo = Dragonfly(args.h)
    print(topo)
    print(f"  groups            : {topo.num_groups}")
    print(f"  routers           : {topo.num_routers} ({topo.ports_per_router} ports each)")
    print(f"  nodes             : {topo.num_nodes}")
    print(f"  local links       : {topo.num_local_links}")
    print(f"  global links      : {topo.num_global_links}")
    print("analytic bounds (phits/node/cycle):")
    print(f"  MIN under ADV+N   : {min_adversarial_bound(args.h):.5f}  (1/(2h^2))")
    print(f"  Valiant limit     : {valiant_bound():.3f}")
    print(f"  ADV+h local funnel: {local_link_advh_bound(args.h):.4f}  (1/h)")
    print("physical escape-ring cost:")
    print(f"  extra links       : {100 * ring_added_link_fraction(args.h):.2f}%")
    print(f"  extra long wires  : {100 * ring_added_global_fraction(args.h):.3f}%")


def cmd_sweep(args) -> None:
    cfg = _config(args)
    # Resolve the execution context first: --backend installs the
    # process default that every spec below is stamped with.
    fabric = getattr(args, "fabric", False) or bool(
        getattr(args, "coordinator", None)
    )
    if fabric:
        fabric_store, fabric_opts = fabric_options_from_args(args)
        orchestrator = None
    else:
        orchestrator = orchestrator_from_args(args)
    loads = [float(x) for x in args.loads.split(",")]
    max_windows = args.max_windows if args.saturating else None
    specs = [
        RunSpec(cfg, args.pattern, load, args.warmup, args.measure,
                max_windows=max_windows, backend=default_backend())
        for load in loads
    ]
    table = Table(f"{args.routing} on {args.pattern} (h={cfg.h})")
    if orchestrator is None and not fabric:
        points = [run_spec(spec) for spec in specs]
        for pt in points:
            table.add_row(pt.as_row())
    else:
        if fabric:
            from repro.fabric import drain

            results, summary = drain(specs, fabric_store, **fabric_opts)
            print(summary.render())
        else:
            results = orchestrator.run(specs)
        points = []
        for res in results:
            if res.ok:
                points.append(res.point)
                table.add_row(res.point.as_row())
            else:
                table.add_row({"load": round(res.spec.load, 4),
                               "error": res.error.strip().splitlines()[-1]})
        counts = summarize(results)
        print(f"[sweep] {counts['done']} run, {counts['cached']} cached, "
              f"{counts['failed']} failed")
    print(table.to_text())
    if args.chart:
        from repro.analysis.plots import throughput_chart
        from repro.analysis.results import Series

        print(throughput_chart([Series(args.routing, points)]))


def cmd_transient(args) -> None:
    cfg = _config(args)
    result = run_transient(
        cfg, args.before, args.after, args.load,
        warmup=args.warmup, post=args.measure, bucket=args.bucket,
    )
    table = Table(
        f"{args.routing}: {args.before} -> {args.after} at load {args.load} "
        f"(switch at cycle {result.switch_cycle})"
    )
    for cyc, lat in result.series:
        table.add(send_cycle=cyc, avg_latency=round(lat, 1))
    print(table.to_text())


def cmd_telemetry(args) -> None:
    from repro.analysis import heatmap
    from repro.telemetry import TelemetryConfig

    cfg = _config(args)
    tcfg = TelemetryConfig(interval=args.interval, per_link=True)
    result = run_transient(
        cfg, args.before, args.after, args.load,
        warmup=args.warmup, post=args.measure, bucket=args.bucket,
        telemetry=tcfg,
    )
    series = result.telemetry
    switch = result.switch_cycle
    series.write_jsonl(args.out)
    print(f"{args.routing}: {args.before} -> {args.after} at load {args.load}, "
          f"switch at cycle {switch}")
    print(f"wrote {len(series.samples)} samples "
          f"(interval {tcfg.interval}, {series.dropped} dropped) to {args.out}")
    if args.csv:
        series.write_csv(args.csv)
        print(f"wrote CSV to {args.csv}")
    print(heatmap.render_series(
        series.link_p99("local"), "local-link p99 util", mark_cycle=switch))
    print(heatmap.render_series(
        series.series(lambda s: float(s.injection_backlog)),
        "injection backlog   ", mark_cycle=switch))
    settle = heatmap.settle_from_utilization(series, after=switch)
    if settle is None:
        print("local-link p99 utilization never settles in the recorded window")
    else:
        print(f"local-link p99 utilization settles at cycle {settle} "
              f"({settle - switch} cycles after the switch)")
    if args.heatmap:
        print()
        print(heatmap.render_router_heatmap(series, "local", mark_cycle=switch))
        print()
        print(heatmap.render_group_heatmap(series, end=switch))
        print()
        print(heatmap.render_group_heatmap(series, start=switch))


def cmd_burst(args) -> None:
    cfg = _config(args)
    res = run_burst(cfg, args.pattern, args.packets)
    print(f"{args.routing} on {args.pattern}: {res.total_packets} packets "
          f"consumed by cycle {res.completion_cycle} "
          f"({res.packets_per_cycle:.2f} pkts/cycle, "
          f"avg latency {res.avg_latency:.1f}, "
          f"ring usage {100 * res.ring_fraction:.2f}%)")


def cmd_interference(args) -> None:
    from repro.experiments import interference

    scale = get_scale(args.scale)
    routings = tuple(args.routings.split(","))
    with orchestration(orchestrator_from_args(args)):
        outcomes = interference.run(
            scale, routings,
            bully_load=args.bully_load, victim_load=args.victim_load,
            seed=args.seed,
        )
    print(interference.points_table(scale, outcomes).to_text())
    print(interference.slowdown_table(scale, outcomes).to_text())
    print(interference.verdict(outcomes))


def cmd_offsets(args) -> None:
    from repro.experiments import fig2_offsets

    scale = get_scale(args.scale)
    print(fig2_offsets.run(scale, load=args.load).to_text())


def cmd_figure(args) -> None:
    scale = get_scale(args.scale)
    with orchestration(orchestrator_from_args(args)):
        _dispatch_figure(args, scale)


def _dispatch_figure(args, scale) -> None:
    from repro.experiments import (
        ablations,
        congestion,
        fig2_offsets,
        fig3_uniform,
        fig4_adv2,
        fig5_advh,
        fig6_transient,
        fig7_bursts,
        fig8_ring,
        fig9_reduced_vcs,
        mapping_study,
    )

    name = args.name.lower()
    if name == "fig2":
        print(fig2_offsets.run(scale).to_text())
    elif name == "fig3":
        table, series = fig3_uniform.run(scale)
        print(table.to_text())
        print(fig3_uniform.summary(series).to_text())
    elif name == "fig4":
        table, series = fig4_adv2.run(scale)
        print(table.to_text())
        print(fig4_adv2.summary(series).to_text())
    elif name == "fig5":
        table, series = fig5_advh.run(scale)
        print(table.to_text())
        print(fig5_advh.summary(scale, series).to_text())
    elif name == "fig6":
        print(fig6_transient.run(scale).to_text())
    elif name == "fig7":
        table = fig7_bursts.run(scale)
        print(table.to_text())
        print(f"mean OFAR time vs PB: {fig7_bursts.ofar_speedup(table):.3f} (paper: 0.695)")
    elif name == "fig8":
        print(fig8_ring.run(scale).to_text())
    elif name == "fig9":
        print(fig9_reduced_vcs.run(scale).to_text())
    elif name == "ablations":
        print(ablations.run_thresholds(scale).to_text())
        print(ablations.run_allocator_iterations(scale).to_text())
        print(ablations.run_ring_exits(scale).to_text())
        print(ablations.run_mechanism_family(scale).to_text())
    elif name == "congestion":
        print(congestion.run(scale).to_text())
    elif name == "mapping":
        print(mapping_study.run(scale).to_text())
    elif name == "design":
        from repro.experiments import router_design

        print(router_design.run(scale).to_text())
    else:
        raise SystemExit(f"unknown figure {args.name!r} (fig2..fig9, ablations, "
                         f"congestion, mapping, design)")


def _load_campaign_or_exit(args):
    from repro.campaign import CampaignError, load_campaign

    try:
        return load_campaign(args.file, scale=args.scale)
    except CampaignError as exc:
        raise SystemExit(f"campaign error: {exc}") from None


def cmd_campaign_run(args) -> None:
    import os

    from repro.campaign import CampaignError, emit, run_campaign, run_campaign_fabric

    campaign = _load_campaign_or_exit(args)
    if getattr(args, "fabric", False) or getattr(args, "coordinator", None):
        store, options = fabric_options_from_args(args)
        try:
            run = run_campaign_fabric(campaign, store, **options)
        except CampaignError as exc:
            raise SystemExit(f"campaign error: {exc}") from None
    else:
        run = run_campaign(campaign, orchestrator_from_args(args))
    c = run.counts
    print(f"[campaign {campaign.name}] {c['total']} points: "
          f"{c['done']} run, {c['cached']} cached, {c['failed']} failed")
    if "fabric" in c:
        print(c["fabric"])
    try:
        tables = emit(run)
    except CampaignError as exc:
        raise SystemExit(f"campaign error: {exc}") from None
    for name, table in tables:
        print(table.to_text())
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, f"{campaign.name}_{name}.csv")
            table.save_csv(path)
            print(f"[saved {path}]")


def cmd_campaign_expand(args) -> None:
    campaign = _load_campaign_or_exit(args)
    for i, point in enumerate(campaign.expand()):
        key = point.spec.fingerprint()[:12] if point.spec is not None else "transient   "
        print(f"{i:4d}  {key}  {point.label()}")


def cmd_campaign_validate(args) -> None:
    from repro.campaign import CampaignError, validate_post

    campaign = _load_campaign_or_exit(args)
    try:
        validate_post(campaign)
        points = campaign.expand()
    except CampaignError as exc:
        raise SystemExit(f"campaign error: {exc}") from None
    print(f"campaign   : {campaign.name} ({campaign.kind})")
    if campaign.description:
        print(f"description: {campaign.description}")
    print(f"scale      : {campaign.scale.name} (h={campaign.scale.h})")
    for axis, values in campaign.combination.items():
        print(f"axis       : {axis} ({len(values)} values)")
    print(f"seeds      : {list(campaign.seeds)}")
    print(f"post       : {list(campaign.post)}")
    print(f"points     : {len(points)}")


# ----------------------------------------------------------------------
# Cluster scenarios (repro.cluster)
# ----------------------------------------------------------------------

def _load_scenario_or_exit(path: str):
    import json as _json
    from pathlib import Path

    from repro.cluster.spec import ScenarioSpec

    p = Path(path)
    if not p.is_file():
        raise SystemExit(f"scenario error: file not found: {path}")
    text = p.read_text()
    try:
        if p.suffix in (".yaml", ".yml"):
            import yaml

            data = yaml.safe_load(text)
        else:
            data = _json.loads(text)
        return ScenarioSpec.from_jsonable(data)
    except (ValueError, TypeError, KeyError) as exc:
        raise SystemExit(f"scenario error: {exc}") from None


def cmd_scenario_schedule(args) -> None:
    """Compile the scenario (no network simulation) and print the plan."""
    from repro.cluster.schedule import compile_scenario

    scenario = _load_scenario_or_exit(args.file)
    topo = Dragonfly(args.h)
    compiled = compile_scenario(scenario, topo)
    table = Table(
        f"{scenario.scheduler} schedule on h={args.h} "
        f"({topo.num_nodes} nodes, horizon {scenario.horizon})"
    )
    for j in compiled.jobs:
        table.add(
            job=j.name, size=j.size, pattern=j.pattern, load=j.load,
            arrival=j.arrival,
            start="-" if j.start is None else j.start,
            finish="-" if j.finish is None else j.finish,
            wait="-" if j.wait is None else j.wait,
            slowdown="-" if j.slowdown is None else round(j.slowdown, 3),
        )
    print(table.to_text())
    queued = sum(1 for j in compiled.jobs if j.start is None)
    print(f"{len(compiled.jobs)} jobs ({queued} never started), "
          f"makespan {compiled.makespan}, "
          f"mean utilization {compiled.mean_utilization:.3f}")


def cmd_scenario_run(args) -> None:
    """Execute the scenario on the network and print per-job outcomes."""
    from repro.cluster.runner import run_scenario_cached

    scenario = _load_scenario_or_exit(args.file)
    cfg = _config(args)
    spec = RunSpec.for_scenario(cfg, scenario, backend=default_backend())
    store = ResultStore(args.store) if args.store else None
    result = run_scenario_cached(spec, store)
    table = Table(f"{spec.label()} — per-job outcomes")
    for row in result.jobs:
        cells = {
            "job": row.name, "size": row.size, "arrival": row.arrival,
            "start": "-" if row.start is None else row.start,
            "finish": "-" if row.finish is None else row.finish,
            "wait": "-" if row.wait is None else row.wait,
            "slowdown": "-" if row.slowdown is None else round(row.slowdown, 3),
            "completed": "yes" if row.completed else "no",
        }
        if row.point is not None:
            cells["thr"] = round(row.point.throughput, 4)
            cells["avg_lat"] = round(row.point.avg_latency, 1)
        table.add_row(cells)
    print(table.to_text())
    if result.blast:
        blast = Table("fault blast radius (per concurrent job)")
        for b in result.blast:
            blast.add(
                cycle=b.cycle, router=b.router, port=b.port, job=b.job,
                before="-" if b.before != b.before else round(b.before, 1),
                after="-" if b.after != b.after else round(b.after, 1),
                ratio="-" if b.ratio != b.ratio else round(b.ratio, 3),
            )
        print(blast.to_text())
    print(f"makespan {result.makespan}, queued {result.queued}, "
          f"mean utilization {result.mean_utilization:.3f}, "
          f"fairness {result.fairness:.3f}, "
          f"network thr {result.total.throughput:.4f} "
          f"avg lat {result.total.avg_latency:.1f}")


def cmd_snapshot_capture(args) -> None:
    from repro.engine.runner import build_steady_sim
    from repro.snapshot import Snapshot

    cfg = _config(args)
    spec = RunSpec(cfg, args.pattern, args.load, args.warmup, args.measure)
    sim = build_steady_sim(spec)
    sim.run(args.at)
    snap = Snapshot.capture(sim, spec=spec)
    snap.save(args.out)
    print(f"captured {spec.label()} at cycle {snap.cycle} -> {args.out}")
    print(f"digest {snap.digest()}")


def cmd_snapshot_inspect(args) -> None:
    from repro.snapshot import Snapshot

    snap = Snapshot.load(args.file)
    state = snap.state
    cfg = state["config"]
    net = state["network"]
    print(f"format     : {state['format']}")
    print(f"cycle      : {snap.cycle}")
    print(f"config     : {cfg['routing']} h={cfg['h']} seed={cfg['seed']}")
    spec = snap.spec()
    print(f"spec       : {spec.label() if spec is not None else '(none embedded)'}")
    print(f"packets    : {len(state['packets'])} live "
          f"({net['counters']['in_flight_packets']} in network)")
    print(f"backlog    : {sum(len(q) for _, q in state['source_queues'])} queued "
          f"at {len(state['source_queues'])} nodes")
    print(f"events     : {sum(len(b) for _, b in state['events'])} pending "
          f"in {len(state['events'])} buckets")
    print(f"routers    : {len(net['routers'])} "
          f"({sum(1 for r in net['routers'] if r['scheduled'])} awake)")
    print(f"telemetry  : {'attached' if state['telemetry'] is not None else 'none'}")
    if snap.extras is not None:
        print(f"extras     : {sorted(snap.extras)}")
    print(f"digest     : {snap.digest()}")


def cmd_snapshot_digest(args) -> None:
    from repro.snapshot import Snapshot

    for path in args.files:
        print(f"{Snapshot.load(path).digest()}  {path}")


def cmd_snapshot_diff(args) -> None:
    from repro.snapshot import Snapshot, diff_states

    a, b = Snapshot.load(args.a), Snapshot.load(args.b)
    diffs = diff_states(a.state, b.state, max_diffs=args.limit)
    if not diffs:
        print(f"identical (digest {a.digest()})")
        return
    print(f"cycle {a.cycle} vs {b.cycle}: {len(diffs)} differing leaves"
          f"{' (truncated)' if len(diffs) >= args.limit else ''}")
    for path, va, vb in diffs:
        print(f"  {path}: {va!r} != {vb!r}")
    raise SystemExit(1)


def cmd_snapshot_bisect(args) -> None:
    """Fork two same-cycle snapshots and lockstep-run them until their
    state digests diverge — the cycle where determinism broke."""
    from repro.snapshot import Snapshot, first_divergence

    a, b = Snapshot.load(args.a), Snapshot.load(args.b)
    if a.cycle != b.cycle:
        raise SystemExit(f"snapshots are at different cycles ({a.cycle} vs {b.cycle})")
    hit = first_divergence(a.fork(), b.fork(), max_cycles=args.max_cycles,
                           check_every=args.check_every)
    if hit is None:
        print(f"no divergence within {args.max_cycles} cycles of cycle {a.cycle}")
        return
    print(f"first divergence at cycle {hit['cycle']}")
    print(f"  digest A {hit['digest_a']}")
    print(f"  digest B {hit['digest_b']}")
    for path, va, vb in hit["diff"]:
        print(f"  {path}: {va!r} != {vb!r}")
    raise SystemExit(1)


# ----------------------------------------------------------------------
# Fabric: distributed campaign draining (repro.fabric)
# ----------------------------------------------------------------------

def _fabric_campaign_specs(args):
    """The campaign plus its expanded RunSpec grid (steady/scenario)."""
    campaign = _load_campaign_or_exit(args)
    if campaign.kind == "transient":
        raise SystemExit(
            "fabric error: transient campaigns have no store "
            "representation to coordinate through"
        )
    return campaign, [p.spec for p in campaign.expand()]


def _fabric_backend(args):
    """``(store, leases)`` for the observer commands, honoring
    ``--coordinator`` (leases None = the file backend over --store)."""
    coordinator = getattr(args, "coordinator", None)
    if not coordinator:
        return ResultStore(args.store or DEFAULT_STORE), None
    from repro.fabric import FabricBackendError
    from repro.fabric.coordinator import open_coordinator

    try:
        return open_coordinator(
            coordinator, args.store or DEFAULT_STORE,
            lease_ttl=args.lease_ttl,
        )
    except FabricBackendError as exc:
        raise SystemExit(f"fabric error: {exc}") from None


def cmd_fabric_work(args) -> None:
    from repro.fabric import FabricWorker, WorkQueue

    # Options first: --backend must be installed before specs are built.
    store, options = fabric_options_from_args(args)
    campaign, specs = _fabric_campaign_specs(args)
    queue = WorkQueue(
        specs, store,
        worker_id=options.pop("worker_id"),
        lease_ttl=options.pop("lease_ttl"),
        max_attempts=options.pop("max_attempts"),
        leases=options.pop("leases", None),
    )
    worker = FabricWorker(queue, **options)
    where = (
        f"coordinator {args.coordinator} (spool {store.root})"
        if getattr(args, "coordinator", None) else f"{store.root}"
    )
    print(f"[fabric] {queue.worker_id} joining '{campaign.name}': "
          f"{len(specs)} points over {where} "
          f"({queue.initial_done} already resolved)")
    summary = worker.run()
    print(summary.render())
    if summary.backend_error or summary.status.failed:
        raise SystemExit(1)


def cmd_fabric_status(args) -> None:
    from repro.fabric import fleet_status

    campaign, specs = _fabric_campaign_specs(args)
    store, leases = _fabric_backend(args)
    status = fleet_status(specs, store, lease_ttl=args.lease_ttl, leases=leases)
    print(f"[fabric {campaign.name}] {status.done}/{status.total} done, "
          f"{status.failed} failed, {status.leased} leased, "
          f"{status.stale} stale, {status.pending} pending")
    live = status.live_workers()
    rate = status.fleet_rate
    if not status.workers and not status.leases:
        # A store with no leases and no worker records is not a broken
        # fleet — nobody has joined (or everyone has finished and been
        # reaped).  Say so instead of printing empty tables.
        print(f"no fleet activity: 0 workers, 0 leases "
              f"({status.done} point(s) already in the store, "
              f"{status.pending} pending)")
    if status.drained:
        print("drained: every point has a result or a recorded failure")
    elif rate == rate:  # NaN-safe: at least one live worker
        eta = status.eta_seconds
        eta_text = f"{eta:.0f}s" if eta == eta else "?"
        print(f"fleet: {len(live)} live worker(s), {rate:.2f} pt/s, "
              f"eta {eta_text}")
    elif status.workers or status.leases:
        print("fleet: no live workers")
    if status.workers:
        table = Table("workers")
        for w in sorted(status.workers, key=lambda w: w.worker):
            table.add(
                worker=w.worker,
                live="yes" if w.live(2 * status.lease_ttl) else "no",
                done=w.done, failed=w.failed, reclaimed=w.reclaimed,
                rate=round(w.rate, 3), last=w.last_label,
            )
        print(table.to_text())
    if status.leases:
        table = Table("leases")
        for lease in sorted(status.leases, key=lambda le: le.fingerprint):
            table.add(
                point=lease.fingerprint[:12], worker=lease.worker,
                attempt=lease.attempt, age_s=round(lease.age(), 1),
                stale="yes" if lease.stale(status.lease_ttl) else "no",
                label=lease.label,
            )
        print(table.to_text())


def cmd_fabric_watch(args) -> None:
    from repro.fabric.watch import watch

    campaign, specs = _fabric_campaign_specs(args)
    store, leases = _fabric_backend(args)
    try:
        watch(campaign.name, specs, store, lease_ttl=args.lease_ttl,
              leases=leases, interval=args.interval)
    except KeyboardInterrupt:
        pass


def cmd_fabric_serve(args) -> None:
    from repro.fabric.coordinator import serve

    serve(args.store or DEFAULT_STORE, host=args.host, port=args.port,
          verbose=args.verbose)


def cmd_fabric_reap(args) -> None:
    from repro.fabric import reap

    _, specs = _fabric_campaign_specs(args)
    store, leases = _fabric_backend(args)
    report = reap(specs, store, lease_ttl=args.lease_ttl,
                  max_attempts=args.max_attempts, leases=leases)
    for lease in report.dropped_leases:
        print(f"dropped stale lease {lease.fingerprint[:12]} "
              f"(held by {lease.worker}, attempt {lease.attempt}) "
              f"-> point back to pending")
    for fp in report.failed_points:
        print(f"recorded failure for {fp[:12]} (attempt budget exhausted)")
    for worker in report.pruned_workers:
        print(f"pruned dead worker stats for {worker}")
    gc = report.gc
    print(f"reap: {len(report.dropped_leases)} lease(s) dropped, "
          f"{len(report.failed_points)} point(s) failed, "
          f"{len(report.pruned_workers)} worker record(s) pruned; "
          f"gc removed {len(gc.removed_checkpoints)} checkpoint(s) and "
          f"{len(gc.removed_telemetry)} telemetry series "
          f"({gc.bytes_reclaimed} bytes), kept {gc.kept_checkpoints} in flight")


# ----------------------------------------------------------------------
# Store maintenance (repro.analysis.store)
# ----------------------------------------------------------------------

def cmd_store_verify(args) -> None:
    store = ResultStore(args.dir)
    total = sum(
        1 for kind in store.entry_kinds()
        for _ in (store.root / kind).glob("*/*.json")
    )
    bad = store.verify()
    if not bad:
        print(f"{total} entries verified in {store.root}, all clean")
        return
    for path, reason in bad:
        print(f"CORRUPT {path}: {reason}")
    print(f"{len(bad)} corrupt of {total} entries in {store.root}")
    raise SystemExit(1)


def cmd_store_gc(args) -> None:
    store = ResultStore(args.dir)
    report = store.gc(dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    for path in report.removed_checkpoints:
        print(f"{verb} orphaned checkpoint {path}")
    for path in report.removed_telemetry:
        print(f"{verb} orphaned telemetry {path}")
    print(f"gc: {verb} {len(report.removed_checkpoints)} checkpoint(s) and "
          f"{len(report.removed_telemetry)} telemetry series "
          f"({report.bytes_reclaimed} bytes); "
          f"kept {report.kept_checkpoints} potentially in-flight checkpoint(s)")


def cmd_store_stats(args) -> None:
    store = ResultStore(args.dir)
    stats = store.stats_by_kind()
    if not stats:
        print(f"empty or missing store at {store.root}")
        return
    table = Table(f"store {store.root}")
    for kind, (count, size) in stats.items():
        table.add(kind=kind, files=count, bytes=size)
    table.add(kind="total",
              files=sum(c for c, _ in stats.values()),
              bytes=sum(b for _, b in stats.values()))
    print(table.to_text())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="OFAR dragonfly reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, routing=True):
        p.add_argument("--h", type=int, default=2, help="dragonfly h (default 2)")
        p.add_argument("--paper", action="store_true",
                       help="use the paper's full h=6 configuration")
        p.add_argument("--seed", type=int, default=1)
        if routing:
            p.add_argument("--routing", default="ofar",
                           choices=["min", "val", "ugal", "pb", "par", "ofar", "ofar-l"])
        p.add_argument("--warmup", type=int, default=1000)
        p.add_argument("--measure", type=int, default=1200)

    p = sub.add_parser("info", help="topology facts and analytic bounds")
    p.add_argument("--h", type=int, default=6)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("sweep", help="steady-state load sweep",
                       parents=[orchestration_options()])
    common(p)
    p.add_argument("--pattern", default="UN")
    p.add_argument("--loads", default="0.1,0.2,0.3,0.4,0.5")
    p.add_argument("--saturating", action="store_true",
                   help="windowed-convergence protocol: repeat measurement "
                        "windows (--measure cycles each) until accepted "
                        "throughput stabilizes — robust past saturation")
    p.add_argument("--max-windows", type=int, default=12, metavar="N",
                   help="window budget for --saturating (default 12)")
    p.add_argument("--chart", action="store_true",
                   help="render an ASCII throughput chart after the table")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("transient", help="pattern-switch experiment")
    common(p)
    p.add_argument("--before", default="UN")
    p.add_argument("--after", default="ADV+2")
    p.add_argument("--load", type=float, default=0.14)
    p.add_argument("--bucket", type=int, default=50)
    p.set_defaults(func=cmd_transient)

    p = sub.add_parser("telemetry",
                       help="pattern-switch experiment with in-run telemetry")
    common(p)
    p.add_argument("--before", default="UN")
    p.add_argument("--after", default="ADV+2")
    p.add_argument("--load", type=float, default=0.14)
    p.add_argument("--bucket", type=int, default=50)
    p.add_argument("--interval", type=int, default=100,
                   help="telemetry sampling window in cycles (default 100)")
    p.add_argument("--out", default="telemetry.jsonl",
                   help="JSONL series output path (default telemetry.jsonl)")
    p.add_argument("--csv", default=None, metavar="FILE",
                   help="also export the flat CSV view")
    p.add_argument("--heatmap", action="store_true",
                   help="render router×time and group×group heatmaps")
    p.set_defaults(func=cmd_telemetry)

    p = sub.add_parser("burst", help="burst-consumption experiment")
    common(p)
    p.add_argument("--pattern", default="MIX1")
    p.add_argument("--packets", type=int, default=20,
                   help="packets per node in the burst")
    p.set_defaults(func=cmd_burst)

    p = sub.add_parser("interference",
                       help="multi-job bully/victim interference study",
                       parents=[orchestration_options()])
    p.add_argument("--scale", default="small",
                   choices=["tiny", "small", "medium", "large", "paper"])
    p.add_argument("--routings", default="min,ofar",
                   help="comma-separated routings to compare (default min,ofar)")
    p.add_argument("--bully-load", type=float, default=0.7)
    p.add_argument("--victim-load", type=float, default=0.2)
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=cmd_interference)

    p = sub.add_parser(
        "snapshot",
        help="capture / inspect / diff simulator state snapshots",
        description="Deterministic checkpoint tooling (repro.snapshot): "
                    "capture a mid-run state, inspect or hash it, diff two "
                    "snapshots leaf-by-leaf, or bisect a determinism "
                    "divergence to the first differing cycle.",
    )
    snap_sub = p.add_subparsers(dest="snapshot_action", required=True)

    q = snap_sub.add_parser("capture", help="run a steady point and save its state")
    common(q)
    q.add_argument("--pattern", default="UN")
    q.add_argument("--load", type=float, default=0.2)
    q.add_argument("--at", type=int, default=500,
                   help="cycles to run before capturing (default 500)")
    q.add_argument("out", help="snapshot JSON output path")
    q.set_defaults(func=cmd_snapshot_capture)

    q = snap_sub.add_parser("inspect", help="summarize one snapshot file")
    q.add_argument("file")
    q.set_defaults(func=cmd_snapshot_inspect)

    q = snap_sub.add_parser("digest", help="behavioral content hash per file")
    q.add_argument("files", nargs="+")
    q.set_defaults(func=cmd_snapshot_digest)

    q = snap_sub.add_parser("diff", help="leaf-level diff of two snapshots "
                                         "(exit 1 when they differ)")
    q.add_argument("a")
    q.add_argument("b")
    q.add_argument("--limit", type=int, default=25,
                   help="max differing leaves to print (default 25)")
    q.set_defaults(func=cmd_snapshot_diff)

    q = snap_sub.add_parser(
        "bisect",
        help="lockstep-run two same-cycle snapshots to the first "
             "divergent cycle (exit 1 when one is found)")
    q.add_argument("a")
    q.add_argument("b")
    q.add_argument("--max-cycles", type=int, default=2_000)
    q.add_argument("--check-every", type=int, default=1,
                   help="digest every N cycles (default 1)")
    q.set_defaults(func=cmd_snapshot_bisect)

    p = sub.add_parser(
        "scenario",
        help="cluster scenarios: schedule / run a churn+fault scenario",
        description="Cluster scenarios (repro.cluster): a YAML/JSON "
                    "ScenarioSpec describes job arrivals, a weighted job "
                    "mix, a scheduler (fcfs/easy), a placement policy and "
                    "a link fault/repair schedule; 'schedule' compiles the "
                    "job timeline without touching the network, 'run' "
                    "executes it and reports per-job outcomes and fault "
                    "blast radii.",
    )
    scen_sub = p.add_subparsers(dest="scenario_action", required=True)

    q = scen_sub.add_parser(
        "schedule", help="compile the job timeline (no network simulation)")
    q.add_argument("file", help="ScenarioSpec YAML/JSON file")
    q.add_argument("--h", type=int, default=2, help="dragonfly h (default 2)")
    q.set_defaults(func=cmd_scenario_schedule)

    q = scen_sub.add_parser(
        "run", help="execute the scenario on the network")
    q.add_argument("file", help="ScenarioSpec YAML/JSON file")
    q.add_argument("--h", type=int, default=2, help="dragonfly h (default 2)")
    q.add_argument("--paper", action="store_true",
                   help="use the paper's full h=6 configuration")
    q.add_argument("--seed", type=int, default=1)
    q.add_argument("--routing", default="ofar",
                   choices=["min", "val", "ugal", "pb", "par", "ofar", "ofar-l"])
    q.add_argument("--store", default=None, metavar="DIR",
                   help="cache the full ScenarioResult in this result store")
    q.set_defaults(func=cmd_scenario_run)

    p = sub.add_parser(
        "campaign",
        help="declarative campaign files: validate / expand / run",
        description="Declarative campaigns (repro.campaign): a YAML/JSON "
                    "file with inherits: deep-merge, a cartesian "
                    "combination: grid, seeds:/replications: replication "
                    "and post: emitters, compiled to a RunSpec grid and "
                    "executed through the orchestrator + result store.",
    )
    camp_sub = p.add_subparsers(dest="campaign_action", required=True)

    def campaign_common(q):
        q.add_argument("file", help="campaign YAML/JSON file")
        q.add_argument("--scale", default=None, choices=sorted(
            ["tiny", "small", "medium", "large", "paper"]),
            help="override the campaign file's scale preset")

    q = camp_sub.add_parser(
        "run", help="execute a campaign and evaluate its post emitters",
        parents=[orchestration_options()])
    campaign_common(q)
    q.add_argument("--out", default=None, metavar="DIR",
                   help="also save each emitted table as CSV under DIR")
    q.set_defaults(func=cmd_campaign_run)

    q = camp_sub.add_parser(
        "expand", help="print the compiled point grid (stable order)")
    campaign_common(q)
    q.set_defaults(func=cmd_campaign_expand)

    q = camp_sub.add_parser(
        "validate", help="load, inherit and type-check a campaign file")
    campaign_common(q)
    q.set_defaults(func=cmd_campaign_validate)

    p = sub.add_parser(
        "fabric",
        help="distributed campaign draining: work / status / watch / "
             "serve / reap",
        description="Lease-based distributed sweeps (repro.fabric): start "
                    "'fabric work' for the same campaign and store on any "
                    "number of hosts that see the store directory; workers "
                    "coordinate through lease files alone — the store is "
                    "the only shared state, there is no server.  For hosts "
                    "that cannot share a directory, 'fabric serve' puts "
                    "the same protocol behind an HTTP socket and workers "
                    "join with --coordinator URL.",
    )
    fab_sub = p.add_subparsers(dest="fabric_action", required=True)

    q = fab_sub.add_parser(
        "work",
        help="run one fabric worker until the campaign is drained",
        parents=[orchestration_options()])
    campaign_common(q)
    q.add_argument("--poll", type=float, default=1.0, metavar="SECONDS",
                   help="seconds between queue re-scans while peers hold "
                        "every remaining point (default 1)")
    q.add_argument("--max-points", type=int, default=None, metavar="N",
                   help="stop after resolving N points (default: drain "
                        "the whole campaign)")
    q.set_defaults(func=cmd_fabric_work)

    def fabric_common(q, attempts=False):
        campaign_common(q)
        q.add_argument("--store", default=None, metavar="DIR",
                       help=f"shared store directory (default {DEFAULT_STORE!r})")
        q.add_argument("--lease-ttl", type=float, default=60.0,
                       metavar="SECONDS",
                       help="staleness threshold for leases (default 60; "
                            "match the workers' setting)")
        q.add_argument("--coordinator", default=None, metavar="URL",
                       help="observe through a 'repro fabric serve' "
                            "coordinator instead of a shared directory")
        if attempts:
            q.add_argument("--max-attempts", type=int, default=3, metavar="N",
                           help="fleet-wide attempt budget per point "
                                "(default 3; match the workers' setting)")

    q = fab_sub.add_parser(
        "status", help="fleet progress, per-worker stats and live leases")
    fabric_common(q)
    q.set_defaults(func=cmd_fabric_status)

    q = fab_sub.add_parser(
        "watch",
        help="live-refreshing fleet dashboard (exits when drained)")
    fabric_common(q)
    q.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                   help="seconds between dashboard refreshes (default 2)")
    q.set_defaults(func=cmd_fabric_watch)

    q = fab_sub.add_parser(
        "serve",
        help="run the HTTP coordinator for fleets without a shared "
             "filesystem",
        description="Serve the lease protocol and store traffic over "
                    "HTTP (repro.fabric.coordinator): workers connect "
                    "with --coordinator URL; all state lives in the "
                    "store directory on this host's disk, so a restart "
                    "recovers the full fleet state and 'repro store' / "
                    "'repro fabric status' work against it unchanged.")
    q.add_argument("--store", default=None, metavar="DIR",
                   help=f"store directory to serve (default {DEFAULT_STORE!r})")
    q.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1; use 0.0.0.0 "
                        "for other hosts)")
    q.add_argument("--port", type=int, default=8642,
                   help="bind port (default 8642)")
    q.add_argument("-v", "--verbose", action="store_true",
                   help="log every request to stderr")
    q.set_defaults(func=cmd_fabric_serve)

    q = fab_sub.add_parser(
        "reap",
        help="clean up after dead workers (stale leases, orphaned files)")
    fabric_common(q, attempts=True)
    q.set_defaults(func=cmd_fabric_reap)

    p = sub.add_parser(
        "store",
        help="result-store maintenance: verify / gc / stats",
        description="Maintenance for result-store directories "
                    "(repro.analysis.store): re-hash every cached entry "
                    "against its filename, sweep orphaned snapshot "
                    "checkpoints and telemetry series, and summarize disk "
                    "usage by entry kind.",
    )
    store_sub = p.add_subparsers(dest="store_action", required=True)

    q = store_sub.add_parser(
        "verify",
        help="re-hash every cached entry (exit 1 if any is corrupt)")
    q.add_argument("dir", nargs="?", default=DEFAULT_STORE,
                   help=f"store directory (default {DEFAULT_STORE!r})")
    q.set_defaults(func=cmd_store_verify)

    q = store_sub.add_parser(
        "gc", help="delete orphaned snapshot checkpoints and telemetry")
    q.add_argument("dir", nargs="?", default=DEFAULT_STORE,
                   help=f"store directory (default {DEFAULT_STORE!r})")
    q.add_argument("--dry-run", action="store_true",
                   help="report what would be removed without deleting")
    q.set_defaults(func=cmd_store_gc)

    q = store_sub.add_parser(
        "stats", help="file counts and bytes per store kind")
    q.add_argument("dir", nargs="?", default=DEFAULT_STORE,
                   help=f"store directory (default {DEFAULT_STORE!r})")
    q.set_defaults(func=cmd_store_stats)

    p = sub.add_parser("offsets", help="ADV offset study (Fig. 2)")
    p.add_argument("--scale", default="small")
    p.add_argument("--load", type=float, default=0.5)
    p.set_defaults(func=cmd_offsets)

    p = sub.add_parser("figure", help="regenerate a paper figure",
                       parents=[orchestration_options()])
    p.add_argument("name", help="fig2..fig9, ablations, congestion, mapping")
    p.add_argument("--scale", default="medium",
                   choices=["tiny", "small", "medium", "large", "paper"])
    p.set_defaults(func=cmd_figure)

    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
