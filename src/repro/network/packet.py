"""Packets: the unit of routing, with OFAR header flags.

The simulator works at packet granularity with phit-accurate accounting:
a packet of ``size`` phits occupies ``size`` phits of buffer space,
``size`` cycles of crossbar/link serialization time, and ``size``
credits.

Header state carried for routing:

- ``intermediate_group`` — Valiant-style intermediate group for
  VAL/UGAL/PB (cleared once reached); unused (-1) by MIN and OFAR;
- ``global_misrouted`` — OFAR flag: at most one nonminimal global hop
  per packet (paper §IV-A);
- ``local_misroute_group`` — group id in which the (single allowed)
  nonminimal local hop of that group was taken; a packet never revisits
  a group, so remembering the latest group suffices;
- ``on_ring`` / ``ring_exits`` — escape-ring state; ``ring_exits`` is
  bounded to prevent livelock (paper §IV-C).
"""

from __future__ import annotations


class Packet:
    """A fixed-size packet traversing the network."""

    __slots__ = (
        "pid",
        "src",
        "src_group",
        "dst",
        "dst_router",
        "dst_group",
        "size",
        "created_cycle",
        "injected_cycle",
        "ejected_cycle",
        "intermediate_group",
        "global_misrouted",
        "local_misroute_group",
        "on_ring",
        "ring_exits",
        "hops",
        "local_hops",
        "global_hops",
        "ring_hops",
        "misroutes_global",
        "misroutes_local",
        "used_ring",
        # Minimal-output memoization: valid while (router, intermediate
        # group) are unchanged, i.e. while the packet waits at one router.
        "cache_rid",
        "cache_ig",
        "cache_port",
        # Cycle at which the packet was first evaluated at the head of
        # its current buffer; -1 while not at a head.  Used by OFAR's
        # escape patience (see SimulationConfig.escape_patience).
        "head_cycle",
        # Escape ring the packet is riding (multi-ring support); -1 off.
        "ring_id",
        # Multi-job workloads (repro.workloads): index of the job that
        # created this packet, -1 for single-tenant traffic.  Routing
        # never reads it; it only drives per-job attribution.
        "job",
    )

    def __init__(
        self,
        pid: int,
        src: int,
        dst: int,
        size: int,
        created_cycle: int,
        dst_router: int,
        dst_group: int,
        src_group: int,
    ) -> None:
        self.pid = pid
        self.src = src
        self.src_group = src_group
        self.dst = dst
        self.dst_router = dst_router
        self.dst_group = dst_group
        self.size = size
        self.created_cycle = created_cycle
        self.injected_cycle = -1
        self.ejected_cycle = -1
        self.intermediate_group = -1
        self.global_misrouted = False
        self.local_misroute_group = -1
        self.on_ring = False
        self.ring_exits = 0
        self.hops = 0
        self.local_hops = 0
        self.global_hops = 0
        self.ring_hops = 0
        self.misroutes_global = 0
        self.misroutes_local = 0
        self.used_ring = False
        self.cache_rid = -1
        self.cache_ig = -2
        self.cache_port = -1
        self.head_cycle = -1
        self.ring_id = -1
        self.job = -1

    @property
    def latency(self) -> int:
        """End-to-end latency in cycles (generation to complete ejection).

        Only meaningful once the packet has been ejected.
        """
        if self.ejected_cycle < 0:
            raise ValueError(f"packet {self.pid} has not been ejected yet")
        return self.ejected_cycle - self.created_cycle

    @property
    def network_latency(self) -> int:
        """Latency excluding the time spent waiting in the source queue."""
        if self.ejected_cycle < 0:
            raise ValueError(f"packet {self.pid} has not been ejected yet")
        if self.injected_cycle < 0:
            raise ValueError(f"packet {self.pid} was never injected")
        return self.ejected_cycle - self.injected_cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(pid={self.pid}, {self.src}->{self.dst}, hops={self.hops}, "
            f"gmis={self.global_misrouted}, ring={self.on_ring})"
        )
