"""Assembly of routers, links, nodes and the escape ring.

The :class:`Network` owns:

- every :class:`~repro.network.router.Router` with its input buffers and
  output channels (wired per the dragonfly topology);
- the escape subnetwork (physical ring ports or embedded ring VCs);
- the event wheel (packet arrivals, credit returns, ejections);
- the grant executor that moves packets between routers while keeping
  the credit/occupancy invariants.

It is driven by the :class:`~repro.engine.simulator.Simulator`, which
adds traffic injection, metrics and the warm-up/measurement protocol.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappush
from typing import Callable

from repro.engine.config import (
    ESCAPE_EMBEDDED,
    ESCAPE_NONE,
    ESCAPE_PHYSICAL,
    SimulationConfig,
)
from repro.network.events import EventWheel
from repro.network.packet import Packet
from repro.network.router import (
    CODE_GLOBAL,
    CODE_LOCAL,
    CODE_NODE,
    CODE_RING,
    KIND_MIS_GLOBAL,
    KIND_MIS_LOCAL,
    KIND_RING_ENTER,
    KIND_RING_EXIT,
    KIND_RING_MOVE,
    OutputChannel,
    Router,
)
from repro.topology.dragonfly import Dragonfly, PortKind
from repro.topology.hamiltonian import HamiltonianRing

# A node always sinks its traffic; model the ejection channel with a
# practically infinite buffer so credits never block ejection.
_EJECT_CAPACITY = 1 << 40

_EV_ARRIVAL = 0
_EV_CREDIT = 1
_EV_EJECT = 2
# Timed re-arm of a sleeping router: ``(_EV_WAKE, router)``.  Scheduled
# when every pending head of a router sits behind a busy read slot — the
# router cannot possibly grant before the earliest slot release, so the
# allocation sweep skips it until then (skipping a provably zero-grant
# allocate is invisible: it mutates nothing and consumes no rng).
_EV_WAKE = 3


class Network:
    """A simulable dragonfly network instance."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.topo = Dragonfly(config.h)
        # Escape subnetwork: one or more (§VII) Hamiltonian rings.  Each
        # spec answers successor(rid) / successor_port(rid).
        self.ring: HamiltonianRing | None = None
        self.ring_specs: list = []
        if config.escape != ESCAPE_NONE:
            if config.escape_rings == 1:
                self.ring = HamiltonianRing(self.topo)
                self.ring_specs = [self.ring]
            else:
                from repro.topology.multiring import MultiRing

                self.ring_specs = MultiRing(self.topo, config.escape_rings).rings
        self.routers: list[Router] = []
        # Escape-hop lookup: escape_hops[rid][ring_id] = (out_port, vc).
        self.escape_hops: list[list[tuple[int, int]]] = [
            [] for _ in range(self.topo.num_routers)
        ]
        # Which ring a ring-carrying output channel belongs to.
        self.ring_of_channel: dict[tuple[int, int], int] = {}
        # Rings currently refusing new entries (fault-tolerance demos).
        self.disabled_rings: set[int] = set()
        # The subset of ``disabled_rings`` that was disabled by
        # ``fail_link`` (as opposed to an explicit ``disable_ring``):
        # ``restore_link`` only re-enables rings it disabled itself.
        self._fault_disabled_rings: set[int] = set()
        # Hashed event wheel: per-cycle FIFO buckets plus a lazy heap
        # for next-event queries (see repro.network.events).
        self._events = EventWheel()
        # Active-set scheduling: router ids with non-empty ``pending``,
        # kept sorted so the simulator allocates in router-id order
        # without scanning every router each cycle.  Routers register
        # here when they gain a head packet (arrival or injection) and
        # leave when their last buffered packet departs.
        self._active_routers: list[int] = []
        # Conservation / progress counters.
        self.injected_packets = 0
        self.ejected_packets = 0
        self.injected_phits = 0
        self.ejected_phits = 0
        self.in_flight_packets = 0  # scheduled arrivals not yet delivered
        self.movements = 0  # grants executed (progress watchdog)
        self.last_eject_cycle = -1  # cycle of the most recent ejection
        self.ring_entries = 0
        self.ring_moves = 0
        self.ring_packets = 0  # packets currently riding an escape ring
        self.ring_entry_stalls = 0  # ring entries refused for lack of a bubble
        self.local_misroutes = 0
        self.global_misroutes = 0
        # Hook invoked as on_eject(packet, eject_cycle).
        self.on_eject: Callable[[Packet, int], None] | None = None
        # Hot-path constants hoisted from the (frozen) config, plus the
        # node -> (router, port) attachment tables.
        self._packet_size = config.packet_size
        topo = self.topo
        self._node_router_tab = [topo.node_router(n) for n in range(topo.num_nodes)]
        self._node_port_tab = [topo.node_port(n) for n in range(topo.num_nodes)]
        self._build()
        # Precompute the credit-return descriptor per input port:
        # (upstream output channel, reverse-channel latency).  Holding
        # the channel object directly lets the event loop skip the
        # routers[rid].out[port] index chain per credit.
        for rt in self.routers:
            rt.up_credit = [
                None
                if up is None
                else (self.routers[up[0]].out[up[1]], self.routers[up[0]].out[up[1]].latency)
                for up in rt.upstream
            ]
        # Destination-side views per inter-router channel: the receiving
        # Router, its per-VC input buffers and the (port, vc) pending
        # keys (shared tuples — arrival processing reuses them instead
        # of allocating a fresh tuple per packet).
        for rt in self.routers:
            for ch in rt.out:
                if ch is None or ch.dest_router < 0:
                    continue
                dest = self.routers[ch.dest_router]
                ch.dest_rt = dest
                ch.dest_bufs = dest.in_bufs[ch.dest_port]
                ch.dest_keys = [(ch.dest_port, v) for v in range(ch.num_vcs)]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        cfg = self.config
        topo = self.topo
        # Which directed channels carry an embedded ring: (rid, port) ->
        # ring id.  Rings are edge-disjoint, so at most one per channel.
        embedded_ring_out: dict[tuple[int, int], int] = {}
        if cfg.escape == ESCAPE_EMBEDDED:
            for ring_id, spec in enumerate(self.ring_specs):
                for rid in topo.routers():
                    key = (rid, spec.successor_port(rid))
                    assert key not in embedded_ring_out, "rings share a channel"
                    embedded_ring_out[key] = ring_id

        def vcs_and_capacity(kind: PortKind, ring_extra: bool) -> tuple[int, int, int]:
            """(num_vcs, capacity, ring_vc) for a channel of ``kind``."""
            if kind is PortKind.NODE:
                return cfg.injection_vcs, cfg.injection_buffer, -1
            if kind is PortKind.LOCAL:
                base, capacity = cfg.local_vcs, cfg.local_buffer
            elif kind is PortKind.GLOBAL:
                base, capacity = cfg.global_vcs, cfg.global_buffer
            else:  # RING (physical)
                return cfg.ring_vcs, cfg.ring_buffer, 0
            if ring_extra:
                return base + 1, capacity, base
            return base, capacity, -1

        for rid in topo.routers():
            self.routers.append(
                Router(
                    rid,
                    topo.router_group(rid),
                    topo.router_index(rid),
                    cfg.packet_size,
                    cfg.allocator_iterations,
                    read_ports=cfg.input_read_ports,
                )
            )

        for rid in topo.routers():
            rt = self.routers[rid]
            g, r = rt.group, rt.index
            # Node ports: injection input (from the node), ejection output.
            for c in range(topo.p):
                port = rt.add_input_port(
                    PortKind.NODE, cfg.injection_vcs, cfg.injection_buffer, None
                )
                assert port == c
                rt.add_output_channel(
                    OutputChannel(
                        port=c,
                        kind=PortKind.NODE,
                        latency=cfg.ejection_latency,
                        num_vcs=1,
                        capacity=_EJECT_CAPACITY,
                        dest_node=rid * topo.p + c,
                    )
                )
            # Local ports.
            for j in range(topo.local_ports):
                port = topo.node_ports + j
                peer_idx = topo.local_peer(r, port)
                peer_rid = topo.router_id(g, peer_idx)
                peer_port = topo.local_port(peer_idx, r)
                # The input side mirrors the *peer's* outgoing channel
                # toward us (ring VC presence is per direction).
                in_ring = (peer_rid, peer_port) in embedded_ring_out
                in_vcs, in_cap, _ = vcs_and_capacity(PortKind.LOCAL, in_ring)
                got = rt.add_input_port(PortKind.LOCAL, in_vcs, in_cap, (peer_rid, peer_port))
                assert got == port
                out_ring = (rid, port) in embedded_ring_out
                out_vcs, out_cap, ring_vc = vcs_and_capacity(PortKind.LOCAL, out_ring)
                rt.add_output_channel(
                    OutputChannel(
                        port=port,
                        kind=PortKind.LOCAL,
                        latency=cfg.local_latency,
                        num_vcs=out_vcs,
                        capacity=out_cap,
                        dest_router=peer_rid,
                        dest_port=peer_port,
                        ring_vc=ring_vc,
                    )
                )
            # Global ports.
            for k in range(topo.h):
                port = topo.global_port(k)
                ep = topo.global_link_endpoint(g, r, k)
                peer_rid = topo.router_id(ep.group, ep.router)
                peer_port = topo.global_port(ep.port)
                in_ring = (peer_rid, peer_port) in embedded_ring_out
                in_vcs, in_cap, _ = vcs_and_capacity(PortKind.GLOBAL, in_ring)
                got = rt.add_input_port(PortKind.GLOBAL, in_vcs, in_cap, (peer_rid, peer_port))
                assert got == port
                out_ring = (rid, port) in embedded_ring_out
                out_vcs, out_cap, ring_vc = vcs_and_capacity(PortKind.GLOBAL, out_ring)
                rt.add_output_channel(
                    OutputChannel(
                        port=port,
                        kind=PortKind.GLOBAL,
                        latency=cfg.global_latency,
                        num_vcs=out_vcs,
                        capacity=out_cap,
                        dest_router=peer_rid,
                        dest_port=peer_port,
                        ring_vc=ring_vc,
                    )
                )

        # Escape subnetwork.
        if cfg.escape == ESCAPE_PHYSICAL:
            # Each ring gets its own dedicated port pair per router:
            # ring j lives on port ports_per_router + j.
            preds: list[dict[int, int]] = []
            for spec in self.ring_specs:
                preds.append({spec.successor(rid): rid for rid in topo.routers()})
            for rid in topo.routers():
                rt = self.routers[rid]
                for j, spec in enumerate(self.ring_specs):
                    ring_port = topo.ports_per_router + j
                    succ = spec.successor(rid)
                    pred = preds[j][rid]
                    # Wire latency: local within a group, global across.
                    succ_latency = (
                        cfg.local_latency
                        if topo.router_group(succ) == rt.group
                        else cfg.global_latency
                    )
                    got = rt.add_input_port(
                        PortKind.RING, cfg.ring_vcs, cfg.ring_buffer, (pred, ring_port)
                    )
                    assert got == ring_port
                    rt.add_output_channel(
                        OutputChannel(
                            port=ring_port,
                            kind=PortKind.RING,
                            latency=succ_latency,
                            num_vcs=cfg.ring_vcs,
                            capacity=cfg.ring_buffer,
                            dest_router=succ,
                            dest_port=ring_port,
                            ring_vc=0,
                        )
                    )
                    self.escape_hops[rid].append((ring_port, 0))
                    self.ring_of_channel[(rid, ring_port)] = j
        elif cfg.escape == ESCAPE_EMBEDDED:
            for rid in topo.routers():
                for j, spec in enumerate(self.ring_specs):
                    port = spec.successor_port(rid)
                    ch = self.routers[rid].out[port]
                    assert ch is not None and ch.ring_vc >= 0
                    self.escape_hops[rid].append((port, ch.ring_vc))
                    self.ring_of_channel[(rid, port)] = j

    # ------------------------------------------------------------------
    @property
    def escape_hop(self) -> list[tuple[int, int] | None]:
        """Legacy single-ring view: first escape hop per router."""
        return [hops[0] if hops else None for hops in self.escape_hops]

    def disable_ring(self, ring_id: int) -> None:
        """Stop admitting new packets onto ``ring_id`` (fault model).

        Packets already riding the ring keep moving (its links are
        still usable); the ring merely stops serving as an escape
        target.  With ``escape_rings >= 2`` the network keeps its
        deadlock-freedom guarantee through the remaining rings.
        """
        if not 0 <= ring_id < len(self.ring_specs):
            raise ValueError(f"no ring {ring_id}")
        self.disabled_rings.add(ring_id)

    def enable_ring(self, ring_id: int) -> None:
        """Re-admit packets onto ``ring_id``.

        An explicit enable overrides any standing attribution: the ring
        is no longer considered fault-disabled either.
        """
        self.disabled_rings.discard(ring_id)
        self._fault_disabled_rings.discard(ring_id)

    # ------------------------------------------------------------------
    # Fault injection (§VII reliability)
    # ------------------------------------------------------------------
    def fail_link(self, router: int, port: int) -> None:
        """Fail the bidirectional link on ``(router, port)``.

        Both directions stop accepting transfers and report full
        occupancy, so adaptive mechanisms (OFAR) misroute around the
        fault while oblivious ones (MIN) stall on it.  Packets already
        in flight on the link are delivered (a fail-stop link model at
        transfer granularity).  If the link carries an escape ring, that
        ring is disabled as a whole — a broken ring cannot guarantee
        deadlock freedom.

        Idempotent: failing an already-failed link is a no-op (it does
        not add a second entry to ``failed_links()``).
        """
        ch = self.routers[router].out[port]
        if ch is None or ch.kind is PortKind.NODE:
            raise ValueError(f"router {router} port {port} is not a router link")
        if ch.failed:
            return
        ch.failed = True
        if ch.kind is not PortKind.RING:
            peer, peer_port = self.topo.neighbor(router, port)
            self.routers[peer].out[peer_port].failed = True
            peer_ring = self.ring_of_channel.get((peer, peer_port))
        else:
            peer_ring = None
        ring = self.ring_of_channel.get((router, port))
        for rid in (ring, peer_ring):
            if rid is not None:
                # Attribute the disable to the fault only if the fault
                # caused it — a ring already off via disable_ring stays
                # off after a repair.
                if rid not in self.disabled_rings:
                    self._fault_disabled_rings.add(rid)
                self.disabled_rings.add(rid)

    def restore_link(self, router: int, port: int) -> None:
        """Repair the bidirectional link on ``(router, port)``.

        The inverse of :meth:`fail_link`: both directions accept
        transfers again.  An escape ring that ``fail_link`` disabled is
        re-enabled once none of its channels is still failed; a ring
        turned off by an explicit :meth:`disable_ring` stays off.
        Restoring a healthy link is a no-op.
        """
        ch = self.routers[router].out[port]
        if ch is None or ch.kind is PortKind.NODE:
            raise ValueError(f"router {router} port {port} is not a router link")
        if not ch.failed:
            return
        ch.failed = False
        rings = {self.ring_of_channel.get((router, port))}
        if ch.kind is not PortKind.RING:
            peer, peer_port = self.topo.neighbor(router, port)
            self.routers[peer].out[peer_port].failed = False
            rings.add(self.ring_of_channel.get((peer, peer_port)))
        rings.discard(None)
        for ring_id in rings:
            if ring_id not in self._fault_disabled_rings:
                continue  # explicit disable_ring: not ours to undo
            if any(
                self.routers[rid].out[p].failed
                for (rid, p), rg in self.ring_of_channel.items()
                if rg == ring_id
            ):
                continue  # another fault still breaks this ring
            self._fault_disabled_rings.discard(ring_id)
            self.disabled_rings.discard(ring_id)

    def failed_links(self) -> list[tuple[int, int]]:
        """(router, port) pairs whose outgoing channel has failed."""
        return [
            (rt.rid, ch.port)
            for rt in self.routers
            for ch in rt.out
            if ch is not None and ch.failed
        ]

    # ------------------------------------------------------------------
    # Active-set router scheduling
    # ------------------------------------------------------------------
    def _activate_router(self, rt: Router) -> None:
        """Register ``rt`` on the pending set (it gained a head packet)."""
        if not rt.scheduled:
            rt.scheduled = True
            insort(self._active_routers, rt.rid)

    def _deactivate_router(self, rt: Router) -> None:
        """Drop ``rt`` from the pending set once it has no buffered work."""
        if rt.scheduled:
            rt.scheduled = False
            self._active_routers.remove(rt.rid)

    def wake_router(self, rt: Router) -> None:
        """Public registration hook: put ``rt`` on the pending set.

        Normal traffic never needs this — injection, arrivals and wake
        events all register routers internally.  It exists for code
        (white-box tests, fault-injection harnesses) that places packets
        directly into input buffers and then drives the main loop: the
        active-set sweep only visits registered routers.
        """
        self._activate_router(rt)

    def maybe_sleep_router(self, rt: Router, cycle: int) -> None:
        """Deschedule ``rt`` until its earliest read-slot release when
        every pending head sits behind a busy read port.

        During packet serialization (``packet_size`` cycles per
        transfer) a single-head router is re-polled every cycle only to
        find its read slot busy; such an allocate call is provably a
        zero-grant no-op (it mutates nothing and consumes no rng), so
        skipping the router is bit-for-bit invisible.  A timed
        ``_EV_WAKE`` event re-arms it at the earliest release cycle;
        packet arrivals re-arm it earlier through the event loop.  Only
        the classic single-read-slot router is descheduled — multi-read
        configurations keep polling.
        """
        if rt.read_ports != 1 or not rt.scheduled:
            return
        pending = rt.pending
        if not pending:
            return
        in_busy = rt.in_busy
        wake = -1
        for p, _v in pending:
            b = in_busy[p][0]
            if b <= cycle:
                return  # a head can still move this window: keep polling
            if wake < 0 or b < wake:
                wake = b
        rt.scheduled = False
        self._active_routers.remove(rt.rid)
        self._events.schedule(wake, (_EV_WAKE, rt))

    def active_router_ids(self) -> tuple[int, ...]:
        """Snapshot of routers with pending head packets, in id order.

        The simulator's allocation sweep iterates this instead of every
        router; the snapshot keeps the sweep stable while grants remove
        drained routers from the underlying set.
        """
        return tuple(self._active_routers)

    # ------------------------------------------------------------------
    # Event wheel
    # ------------------------------------------------------------------
    def schedule(self, cycle: int, event: tuple) -> None:
        """Queue an event for processing at ``cycle``.

        Takes the id-based public shapes ``(_EV_ARRIVAL, rid, port, vc,
        pkt)`` / ``(_EV_CREDIT, rid, port, vc, amount)`` / ``(_EV_EJECT,
        pkt, cycle)`` and translates them to the object-reference shapes
        the event loop consumes internally (the hot producers build
        those directly; this entry point serves tests and tools).
        """
        tag = event[0]
        if tag == _EV_ARRIVAL:
            _, rid, port, vc, pkt = event
            rt = self.routers[rid]
            event = (tag, rt, rt.in_bufs[port][vc], (port, vc), pkt)
        elif tag == _EV_CREDIT:
            _, rid, port, vc, amount = event
            event = (tag, self.routers[rid].out[port], vc, amount)
        self._events.schedule(cycle, event)

    def process_events(self, cycle: int) -> None:
        """Deliver all events due this cycle (arrivals, credits, ejections)."""
        events = self._events.pop_due(cycle)
        if not events:
            return
        active_routers = self._active_routers
        ev_arrival = _EV_ARRIVAL
        ev_credit = _EV_CREDIT
        on_eject = self.on_eject
        # Counter updates are accumulated locally and written back once
        # after the loop (dozens of self-attribute writes per cycle
        # otherwise).
        arrivals = 0
        ejected = 0
        ejected_phits = 0
        last_eject = -1
        for ev in events:
            tag = ev[0]
            if tag == ev_arrival:
                _, rt, buf, key, pkt = ev
                if pkt.intermediate_group == rt.group:
                    pkt.intermediate_group = -1  # Valiant phase complete
                occupancy = buf.occupancy + pkt.size  # Buffer.push, inlined
                if occupancy > buf.capacity:
                    raise AssertionError(
                        f"buffer overflow: {occupancy}/{buf.capacity} phits "
                        "— credit accounting broke"
                    )
                buf.occupancy = occupancy
                buf._fifo.append(pkt)
                if not rt.scheduled:
                    rt.scheduled = True
                    insort(active_routers, rt.rid)
                rt.pending[key] = None
                arrivals += 1
            elif tag == ev_credit:
                _, ch, vc, amount = ev
                credits = ch.credits
                total = credits[vc] + amount
                credits[vc] = total
                if total > ch.capacity:
                    raise AssertionError(
                        f"credit overflow on port {ch.port} vc {vc}"
                    )
            elif tag == _EV_EJECT:
                _, pkt, eject_cycle = ev
                pkt.ejected_cycle = eject_cycle
                ejected += 1
                ejected_phits += pkt.size
                last_eject = eject_cycle
                if on_eject is not None:
                    on_eject(pkt, eject_cycle)
            else:  # _EV_WAKE: timed re-arm of a slot-blocked router
                rt = ev[1]
                if rt.pending and not rt.scheduled:
                    rt.scheduled = True
                    insort(active_routers, rt.rid)
        if arrivals:
            self.in_flight_packets -= arrivals
        if ejected:
            self.ejected_packets += ejected
            self.ejected_phits += ejected_phits
            self.last_eject_cycle = last_eject

    def pending_event_cycles(self) -> list[int]:
        """Cycles that still have scheduled events (diagnostics/tests)."""
        return self._events.pending_cycles()

    def has_pending_events(self) -> bool:
        """Whether any arrivals/credits/ejections are still scheduled."""
        return bool(self._events)

    # ------------------------------------------------------------------
    # Grant execution
    # ------------------------------------------------------------------
    def execute_grant(
        self,
        rt: Router,
        in_port: int,
        in_vc: int,
        out_port: int,
        out_vc: int,
        kind: int,
        cycle: int,
    ) -> Packet:
        """Move the head packet of (in_port, in_vc) through the crossbar.

        This runs once per grant — the second-hottest function of the
        engine after the allocator — so the buffer pop, read-slot claim
        and pending bookkeeping are inlined (same behavior as the
        Buffer/Router helpers they mirror).
        """
        size = self._packet_size
        wheel = self._events
        buf = rt.in_bufs[in_port][in_vc]
        fifo = buf._fifo
        pkt = fifo.popleft()
        buf.occupancy -= pkt.size
        pkt.head_cycle = -1  # head-wait clock restarts at the next buffer
        if not fifo:
            pending = rt.pending
            pending.pop((in_port, in_vc), None)
            if not pending and rt.scheduled:
                rt.scheduled = False
                self._active_routers.remove(rt.rid)
        # Return credits upstream once the tail leaves this buffer and
        # the credit signal crosses the reverse channel.  Events are
        # bucketed straight into the wheel's hash table here (the two
        # schedules per grant are the engine's hottest event source);
        # semantics are exactly EventWheel.schedule's.
        buckets = wheel._buckets
        up = rt.up_credit[in_port]
        if up is not None:
            up_ch, latency = up
            due = cycle + size + latency
            bucket = buckets.get(due)
            if bucket is None:
                buckets[due] = [(_EV_CREDIT, up_ch, in_vc, size)]
                heappush(wheel._heap, due)
            else:
                bucket.append((_EV_CREDIT, up_ch, in_vc, size))
            wheel._len += 1
        ch = rt.out[out_port]
        ch.busy_until = cycle + size
        if rt.read_ports == 1:
            rt.in_busy[in_port][0] = cycle + size
        else:
            rt.occupy_read_slot(in_port, cycle)
        credits = ch.credits
        remaining = credits[out_vc] - size
        credits[out_vc] = remaining
        if remaining < 0:
            raise AssertionError(
                f"credit underflow on router {rt.rid} port {out_port} vc {out_vc}"
            )
        ch.sent_phits += size
        # Per-job link attribution (multi-job workloads): single-tenant
        # packets carry job == -1, so the common case is one int compare.
        job = pkt.job
        if job >= 0:
            job_phits = ch.job_phits
            job_phits[job] = job_phits.get(job, 0) + size
        # Header/state updates and hop accounting.  Minimal grants
        # (``kind`` 0, the vast majority) skip the whole chain with a
        # single truthiness test.
        pkt.hops += 1
        kind_code = ch.kind_code
        if kind:
            if kind == KIND_MIS_LOCAL:
                pkt.local_misroute_group = rt.group
                pkt.misroutes_local += 1
                self.local_misroutes += 1
            elif kind == KIND_MIS_GLOBAL:
                pkt.global_misrouted = True
                pkt.misroutes_global += 1
                self.global_misroutes += 1
            elif kind == KIND_RING_ENTER:
                pkt.on_ring = True
                pkt.used_ring = True
                pkt.ring_id = self.ring_of_channel[(rt.rid, out_port)]
                self.ring_entries += 1
                self.ring_packets += 1
            elif kind == KIND_RING_MOVE:
                self.ring_moves += 1
            elif kind == KIND_RING_EXIT:
                pkt.on_ring = False
                pkt.ring_id = -1
                pkt.ring_exits += 1
                self.ring_packets -= 1
            if kind == KIND_RING_ENTER or kind == KIND_RING_MOVE:
                pkt.ring_hops += 1
            elif kind_code == CODE_LOCAL:
                pkt.local_hops += 1
            elif kind_code == CODE_GLOBAL:
                pkt.global_hops += 1
            elif kind_code == CODE_RING:
                pkt.ring_hops += 1
        elif kind_code == CODE_LOCAL:
            pkt.local_hops += 1
        elif kind_code == CODE_GLOBAL:
            pkt.global_hops += 1
        elif kind_code == CODE_RING:
            pkt.ring_hops += 1
        # Departure.
        if kind_code == CODE_NODE:
            pkt.hops -= 1  # ejection is not a router-to-router hop
            if pkt.on_ring:
                pkt.on_ring = False  # final ring exit at the destination
                pkt.ring_id = -1
                self.ring_packets -= 1
            due = cycle + ch.latency + size
            event = (_EV_EJECT, pkt, due)
        else:
            self.in_flight_packets += 1
            due = cycle + ch.latency + size
            event = (_EV_ARRIVAL, ch.dest_rt, ch.dest_bufs[out_vc], ch.dest_keys[out_vc], pkt)
        bucket = buckets.get(due)
        if bucket is None:
            buckets[due] = [event]
            heappush(wheel._heap, due)
        else:
            bucket.append(event)
        wheel._len += 1
        self.movements += 1
        return pkt

    # ------------------------------------------------------------------
    # Injection (called by the simulator's node model)
    # ------------------------------------------------------------------
    def try_inject(self, pkt: Packet, cycle: int) -> bool:
        """Move ``pkt`` from its node into the router injection buffer.

        Chooses the injection VC with the most free space; returns False
        when no VC can hold the whole packet (the node retries later).
        """
        src = pkt.src
        rid = self._node_router_tab[src]
        port = self._node_port_tab[src]
        rt = self.routers[rid]
        # Read the threshold from config at call time: tests flip
        # ``network.config`` mid-run to relax the restriction.
        config = self.config
        if config.congestion_control and self.router_occupancy(rt, cycle) > (
            config.congestion_threshold
        ):
            return False  # injection restriction (§VII extension)
        bufs = rt.in_bufs[port]
        best_vc = -1
        best_free = pkt.size - 1
        for vc, buf in enumerate(bufs):
            free = buf.capacity - buf.occupancy
            if free > best_free:
                best_free = free
                best_vc = vc
        if best_vc < 0:
            return False
        bufs[best_vc].push(pkt)
        if not rt.scheduled:
            rt.scheduled = True
            insort(self._active_routers, rid)
        rt.pending[(port, best_vc)] = None
        pkt.injected_cycle = cycle
        self.injected_packets += 1
        self.injected_phits += pkt.size
        return True

    def router_occupancy(self, rt: Router, cycle: int) -> float:
        """Mean estimated occupancy of a router's local+global channels
        (memoized per cycle; the congestion-control signal)."""
        cached_cycle, value = rt.congestion_cache
        if cached_cycle == cycle:
            return value
        total = 0.0
        count = 0
        for ch in rt.out:
            if ch is None or ch.kind is PortKind.NODE:
                continue
            total += ch.occupancy_fraction()
            count += 1
        value = total / count if count else 0.0
        rt.congestion_cache = (cycle, value)
        return value

    # ------------------------------------------------------------------
    # Introspection helpers (tests, metrics, PB)
    # ------------------------------------------------------------------
    def buffered_packets(self) -> int:
        """Total packets currently sitting in any input buffer."""
        total = 0
        for rt in self.routers:
            for bufs in rt.in_bufs:
                for buf in bufs:
                    total += len(buf)
        return total

    def check_conservation(self) -> None:
        """Assert the packet conservation invariant (tests/debug)."""
        pending_ejects = sum(
            1 for ev in self._events.iter_events() if ev[0] == _EV_EJECT
        )
        accounted = (
            self.ejected_packets
            + self.buffered_packets()
            + self.in_flight_packets
            + pending_ejects
        )
        if accounted != self.injected_packets:
            raise AssertionError(
                f"packet conservation broken: injected={self.injected_packets} "
                f"ejected={self.ejected_packets} buffered={self.buffered_packets()} "
                f"in_flight={self.in_flight_packets} pending_ejects={pending_ejects}"
            )
