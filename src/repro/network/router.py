"""The input-buffered virtual cut-through router of §V.

Model summary (all paper defaults):

- input FIFO buffers per (port, VC); 3 VCs on local and injection ports,
  2 on global ports;
- credit-based flow control: the sender tracks free space of the
  downstream buffer per VC; credits are debited at grant time and
  returned (with the link's latency) when the packet later leaves the
  downstream buffer;
- no internal speedup: one packet transfer may start per input port and
  per output port per cycle, and a transfer of an ``s``-phit packet
  keeps both ports and the link busy for ``s`` cycles;
- an iterative separable batch allocator (default 3 iterations) with
  least-recently-served arbiters at the input stage (VC selection per
  input port) and the output stage (input selection per output port);
- the routing decision of a head packet is (re-)evaluated on every
  allocation iteration of every cycle while the packet waits, which is
  what enables OFAR's on-the-fly adaptivity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.network.arbiter import LRSArbiter
from repro.network.buffers import Buffer
from repro.topology.dragonfly import PortKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.routing.base import RoutingAlgorithm

# Request kinds: what a grant means for the packet's header state.
KIND_MIN = 0  # minimal (or Valiant-phase minimal) hop
KIND_MIS_LOCAL = 1  # OFAR nonminimal local hop
KIND_MIS_GLOBAL = 2  # OFAR nonminimal global hop
KIND_RING_ENTER = 3  # deflection into the escape ring (needs a bubble)
KIND_RING_MOVE = 4  # advance along the escape ring
KIND_RING_EXIT = 5  # leave the escape ring through a minimal output

# OutputChannel.kind_code values (see OutputChannel.__init__).
CODE_NODE = 0
CODE_LOCAL = 1
CODE_GLOBAL = 2
CODE_RING = 3

_KIND_CODES = {
    PortKind.NODE: CODE_NODE,
    PortKind.LOCAL: CODE_LOCAL,
    PortKind.GLOBAL: CODE_GLOBAL,
    PortKind.RING: CODE_RING,
}

KIND_NAMES = {
    KIND_MIN: "min",
    KIND_MIS_LOCAL: "misroute-local",
    KIND_MIS_GLOBAL: "misroute-global",
    KIND_RING_ENTER: "ring-enter",
    KIND_RING_MOVE: "ring-move",
    KIND_RING_EXIT: "ring-exit",
}


class PendingSet(dict):
    """Insertion-ordered set of (port, vc) keys with history-independent
    iteration order.

    The allocator iterates ``Router.pending`` to build its request list,
    so iteration order is behaviorally significant.  A builtin ``set``
    iterates in hash-table order, which depends on the table's entire
    insert/discard history and therefore cannot be reconstructed from
    the current elements alone — that would make bit-exact
    snapshot/restore unsound.  A dict iterates in pure insertion order,
    fully determined by the key sequence, so a restored router resumes
    with exactly the iteration order the original would have had.
    Set-style mutators cover the existing call sites; hot paths use raw
    dict operations (``pending[key] = None`` / ``pending.pop(key,
    None)``).
    """

    __slots__ = ()

    def add(self, key: tuple[int, int]) -> None:
        self[key] = None

    def discard(self, key: tuple[int, int]) -> None:
        self.pop(key, None)

    def update(self, keys) -> None:  # a set-of-tuples, not a mapping
        for key in keys:
            self[key] = None


class OutputChannel:
    """Sender-side view of one outgoing channel of a router.

    Tracks the credit count per downstream VC, the serialization state
    of the physical channel and, for channels that carry the embedded
    escape ring, which VC index is the ring VC.
    """

    __slots__ = (
        "port",
        "kind",
        "latency",
        "dest_router",
        "dest_port",
        "dest_node",
        "num_vcs",
        "capacity",
        "credits",
        "busy_until",
        "ring_vc",
        "kind_code",
        "data_vcs",
        "data_capacity",
        "nd",
        "dv0",
        "dv1",
        "dv2",
        "dest_rt",
        "dest_bufs",
        "dest_keys",
        "sent_phits",
        "job_phits",
        "failed",
    )

    def __init__(
        self,
        port: int,
        kind: PortKind,
        latency: int,
        num_vcs: int,
        capacity: int,
        dest_router: int = -1,
        dest_port: int = -1,
        dest_node: int = -1,
        ring_vc: int = -1,
    ) -> None:
        self.port = port
        self.kind = kind
        # Small-int mirror of ``kind`` (index into _KIND_CODES) for the
        # grant executor's hot path — int compares beat enum identity
        # chains there.
        self.kind_code = _KIND_CODES[kind]
        self.latency = latency
        self.dest_router = dest_router
        self.dest_port = dest_port
        self.dest_node = dest_node
        self.num_vcs = num_vcs
        self.capacity = capacity  # phits per VC
        self.credits = [capacity] * num_vcs
        self.busy_until = 0
        self.ring_vc = ring_vc
        # Data VCs exclude the embedded ring VC (if any): misrouting
        # thresholds and VC selection must not consume escape resources.
        self.data_vcs = [v for v in range(num_vcs) if v != ring_vc]
        self.data_capacity = capacity * len(self.data_vcs)
        # Unrolled mirrors of ``data_vcs`` for the routing hot path: the
        # credit-sum and best-VC scans over 1-3 data VCs are executed
        # hundreds of times per cycle, and indexing ``dv0``/``dv1``/
        # ``dv2`` directly beats iterating the list.  ``nd`` is the
        # data-VC count; unused slots hold -1.
        dv = self.data_vcs
        self.nd = len(dv)
        self.dv0 = dv[0] if len(dv) > 0 else -1
        self.dv1 = dv[1] if len(dv) > 1 else -1
        self.dv2 = dv[2] if len(dv) > 2 else -1
        self.sent_phits = 0
        # Per-job phit counts (multi-job workloads only): job index ->
        # phits this channel carried for that job.  Stays empty for
        # single-tenant traffic (packets with job == -1).
        self.job_phits: dict[int, int] = {}
        # Destination-side views, wired by Network after construction
        # for inter-router channels (None for ejection channels and
        # stand-alone unit tests): the receiving Router, its per-VC
        # input-buffer list and shared (port, vc) pending-key tuples.
        self.dest_rt = None
        self.dest_bufs = None
        self.dest_keys = None
        # Fault injection (§VII reliability): a failed channel accepts
        # no transfers and reports full occupancy, so adaptive routing
        # steers around it.
        self.failed = False

    def occupancy_fraction(self) -> float:
        """Estimated downstream occupancy of the *data* VCs, as a
        fraction in [0, 1], derived from outstanding credits.

        This is the Q value used by the misrouting thresholds of §IV-B;
        using a fraction makes local (32-phit) and global (256-phit)
        FIFOs comparable, as the paper prescribes.
        """
        if self.failed or self.data_capacity == 0:
            return 1.0
        credits = self.credits
        nd = self.nd
        if nd == 3:
            free = credits[self.dv0] + credits[self.dv1] + credits[self.dv2]
        elif nd == 2:
            free = credits[self.dv0] + credits[self.dv1]
        elif nd == 1:
            free = credits[self.dv0]
        else:
            free = 0
            for v in self.data_vcs:
                free += credits[v]
        return 1.0 - free / self.data_capacity

    def best_data_vc(self, size: int) -> int:
        """Data VC with the most credits, requiring at least ``size``.

        Returns -1 when no data VC can hold a whole packet (VCT) or the
        channel has failed (a failed link can never accept a packet, so
        it must count as hard-blocked for escape-ring purposes).
        Ties break toward the lowest VC index for determinism.
        """
        if self.failed:
            return -1
        credits = self.credits
        nd = self.nd
        # Unrolled first-max scans (ties toward the earliest data VC,
        # exactly like the generic loop below).
        if nd == 3:
            best = self.dv0
            best_credits = credits[best]
            c = credits[self.dv1]
            if c > best_credits:
                best_credits = c
                best = self.dv1
            c = credits[self.dv2]
            if c > best_credits:
                best_credits = c
                best = self.dv2
            return best if best_credits >= size else -1
        if nd == 2:
            c0 = credits[self.dv0]
            c1 = credits[self.dv1]
            if c1 > c0:
                return self.dv1 if c1 >= size else -1
            return self.dv0 if c0 >= size else -1
        if nd == 1:
            return self.dv0 if credits[self.dv0] >= size else -1
        best = -1
        best_credits = size - 1
        for v in self.data_vcs:
            c = credits[v]
            if c > best_credits:
                best_credits = c
                best = v
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OutputChannel(port={self.port}, {self.kind.value}, "
            f"credits={self.credits}, busy_until={self.busy_until})"
        )


class Router:
    """One dragonfly router: input buffers, credits and the allocator."""

    __slots__ = (
        "rid",
        "group",
        "index",
        "in_bufs",
        "in_kind",
        "in_kind_codes",
        "in_busy",
        "upstream",
        "up_credit",
        "out",
        "pending",
        "scheduled",
        "_in_arbiters",
        "_out_arbiters",
        "iterations",
        "packet_size",
        "read_ports",
        "_claimed_out",
        "_matched_in",
        "congestion_cache",
    )

    def __init__(
        self,
        rid: int,
        group: int,
        index: int,
        packet_size: int,
        iterations: int,
        read_ports: int = 1,
    ) -> None:
        self.rid = rid
        self.group = group
        self.index = index
        self.packet_size = packet_size
        self.iterations = iterations
        self.read_ports = read_ports
        self.in_bufs: list[list[Buffer]] = []
        self.in_kind: list[PortKind] = []
        # Small-int mirror (see _KIND_CODES) for hot-path comparisons.
        self.in_kind_codes: list[int] = []
        # Per input port: busy-until time of each read slot.  A port can
        # start one transfer per free slot per cycle (§VIII multi-read-
        # port extension; the classic router has one slot).
        self.in_busy: list[list[int]] = []
        # (upstream router id, upstream output port) per input port, or
        # None for injection and physical-ring-head ports handled elsewhere.
        self.upstream: list[tuple[int, int] | None] = []
        # (upstream output channel, reverse latency) per input port,
        # precomputed by the Network once wiring is complete (the grant
        # executor's credit return needs both every transfer).
        self.up_credit: list[tuple[OutputChannel, int] | None] = []
        self.out: list[OutputChannel | None] = []
        self.pending: PendingSet = PendingSet()
        # Whether the network's active-set scheduler currently tracks
        # this router (kept in lockstep with ``pending`` by Network).
        self.scheduled = False
        self._in_arbiters: dict[int, LRSArbiter] = {}
        self._out_arbiters: dict[int, LRSArbiter] = {}
        self._claimed_out: set[int] = set()
        self._matched_in: set[int] = set()
        # (cycle, mean occupancy) memo for congestion-controlled injection.
        self.congestion_cache: tuple[int, float] = (-1, 0.0)

    # ------------------------------------------------------------------
    # Wiring (done once by Network)
    # ------------------------------------------------------------------
    def add_input_port(
        self,
        kind: PortKind,
        num_vcs: int,
        capacity: int,
        upstream: tuple[int, int] | None,
    ) -> int:
        """Append an input port; returns its index."""
        port = len(self.in_bufs)
        self.in_bufs.append([Buffer(capacity) for _ in range(num_vcs)])
        self.in_kind.append(kind)
        self.in_kind_codes.append(_KIND_CODES[kind])
        self.in_busy.append([0] * self.read_ports)
        self.upstream.append(upstream)
        return port

    def add_output_channel(self, channel: OutputChannel) -> None:
        """Register the output channel for ``channel.port`` (ports must be
        added in index order, possibly with None gaps filled first)."""
        while len(self.out) <= channel.port:
            self.out.append(None)
        self.out[channel.port] = channel

    # ------------------------------------------------------------------
    # Allocation-time predicates used by routing algorithms
    # ------------------------------------------------------------------
    def free_read_slots(self, port: int, cycle: int) -> int:
        """Read slots of an input port that can start a transfer now."""
        count = 0
        for t in self.in_busy[port]:
            if t <= cycle:
                count += 1
        return count

    def occupy_read_slot(self, port: int, cycle: int) -> None:
        """Claim one free read slot for a transfer starting this cycle."""
        slots = self.in_busy[port]
        for i, t in enumerate(slots):
            if t <= cycle:
                slots[i] = cycle + self.packet_size
                return
        raise AssertionError(f"no free read slot on router {self.rid} port {port}")

    def out_port_free(self, port: int, cycle: int) -> bool:
        """Output port can start a new transfer this cycle."""
        ch = self.out[port]
        return (
            ch is not None
            and not ch.failed
            and ch.busy_until <= cycle
            and port not in self._claimed_out
        )

    def min_available(self, port: int, cycle: int, vc: int, size: int) -> bool:
        """Port free and the given VC has room for a whole packet."""
        if not self.out_port_free(port, cycle):
            return False
        return self.out[port].credits[vc] >= size

    # ------------------------------------------------------------------
    # The separable iterative batch allocator
    # ------------------------------------------------------------------
    def allocate(self, cycle: int, routing: "RoutingAlgorithm", network) -> int:
        """Run one cycle of allocation; returns the number of grants.

        ``network.execute_grant(router, in_port, in_vc, out_port,
        out_vc, kind, cycle)`` is invoked for every grant; the network
        layer executes the transfer (credit bookkeeping, event
        scheduling, metric updates).
        """
        pending = self.pending
        if not pending:
            return 0
        in_bufs = self.in_bufs
        in_busy = self.in_busy
        route = routing.route
        iterations = self.iterations
        single_read = self.read_ports == 1
        if len(pending) == 1 and iterations > 0:
            # Fast path: one waiting head packet means at most one grant
            # and no arbitration, so the whole proposals/winners
            # machinery reduces to a single route call.  (On iteration 2
            # the matched pair would be skipped and the loop would break
            # with no further requests — identical behavior.)
            for key in pending:
                break
            in_port, in_vc = key
            if single_read:
                if in_busy[in_port][0] > cycle:
                    return 0
            elif self.free_read_slots(in_port, cycle) <= 0:
                return 0
            fifo = in_bufs[in_port][in_vc]._fifo
            if not fifo:
                return 0
            req = route(self, in_port, in_vc, fifo[0], cycle)
            if req is None:
                return 0
            network.execute_grant(self, in_port, in_vc, req[0], req[1], req[2], cycle)
            return 1
        claimed_out = self._claimed_out
        matched_vc = self._matched_in  # (port, vc) pairs granted this cycle
        claimed_out.clear()
        matched_vc.clear()
        execute_grant = network.execute_grant
        grants = 0
        if single_read:
            # Flattened allocator for the classic one-read-port router.
            # Stage 1 collects all requests into a flat list while two
            # int bitmasks watch for input (same in_port twice) and
            # output (same out_port twice) collisions; when none occur —
            # the overwhelmingly common case — every request wins its
            # arbiter trivially and the grants execute in list order,
            # which equals the winners-dict insertion order of the
            # classic formulation (each in_port appears once, so
            # first-appearance order is list order).  On a collision the
            # iteration falls back to the exact proposals/winners/LRS
            # machinery, rebuilt from the same list in the same order.
            checked_ready = 0  # ports whose read slot was tested this cycle
            ready = 0  # ports whose single read slot is free
            reqs: list[tuple[int, int, int, int, int]] = []
            for _ in range(iterations):
                any_request = False
                conflict = False
                stalled = False
                seen_in = 0
                seen_out = 0
                reqs.clear()
                for key in pending:
                    if key in matched_vc:
                        continue
                    in_port, in_vc = key
                    bit = 1 << in_port
                    if not checked_ready & bit:
                        checked_ready |= bit
                        if in_busy[in_port][0] <= cycle:
                            ready |= bit
                    if not ready & bit:
                        continue
                    fifo = in_bufs[in_port][in_vc]._fifo
                    if not fifo:
                        continue
                    req = route(self, in_port, in_vc, fifo[0], cycle)
                    if req is None:
                        stalled = True
                        continue
                    any_request = True
                    out_port, out_vc, kind = req
                    reqs.append((in_port, in_vc, out_port, out_vc, kind))
                    out_bit = 1 << out_port
                    if seen_in & bit or seen_out & out_bit:
                        conflict = True
                    seen_in |= bit
                    seen_out |= out_bit
                if not any_request:
                    break
                if not conflict:
                    for in_port, in_vc, out_port, out_vc, kind in reqs:
                        claimed_out.add(out_port)
                        matched_vc.add((in_port, in_vc))
                        ready &= ~(1 << in_port)
                        grants += 1
                        execute_grant(self, in_port, in_vc, out_port, out_vc, kind, cycle)
                    if stalled:
                        # A stalled head may become routable after these
                        # grants (e.g. a relative misroute threshold that
                        # loosens as the minimal channel drains credits),
                        # so the next iteration must re-ask it.
                        continue
                    # Every unmatched head was granted: the next
                    # iteration could only walk matched / read-busy /
                    # empty entries and break with no requests — skip it.
                    break
                # Collision: run the separable stages over the same
                # requests (identical proposal order, arbiters, grants).
                proposals: dict[int, list[tuple[int, int, int, int]]] = {}
                for in_port, in_vc, out_port, out_vc, kind in reqs:
                    entry = (in_vc, out_port, out_vc, kind)
                    lst = proposals.get(in_port)
                    if lst is None:
                        proposals[in_port] = [entry]
                    else:
                        lst.append(entry)
                winners: dict[int, list[tuple[int, int, int, int]]] = {}
                for in_port, in_reqs in proposals.items():
                    if len(in_reqs) == 1:
                        pick = in_reqs[0]
                    else:
                        arb = self._in_arbiters.get(in_port)
                        if arb is None:
                            arb = self._in_arbiters[in_port] = LRSArbiter()
                        vc_pick = arb.grant([r[0] for r in in_reqs])
                        pick = next(r for r in in_reqs if r[0] == vc_pick)
                    entry = (in_port, pick[0], pick[2], pick[3])
                    lst = winners.get(pick[1])
                    if lst is None:
                        winners[pick[1]] = [entry]
                    else:
                        lst.append(entry)
                for out_port, cands in winners.items():
                    if out_port in claimed_out:
                        continue
                    if len(cands) == 1:
                        in_port, in_vc, out_vc, kind = cands[0]
                    else:
                        arb = self._out_arbiters.get(out_port)
                        if arb is None:
                            arb = self._out_arbiters[out_port] = LRSArbiter()
                        key = arb.grant([c[0] for c in cands])
                        in_port, in_vc, out_vc, kind = next(
                            c for c in cands if c[0] == key
                        )
                    claimed_out.add(out_port)
                    matched_vc.add((in_port, in_vc))
                    ready &= ~(1 << in_port)
                    grants += 1
                    execute_grant(self, in_port, in_vc, out_port, out_vc, kind, cycle)
            claimed_out.clear()
            matched_vc.clear()
            return grants
        # Multi-read-port general path (§VIII extension): per-port read
        # budgets need counting, so keep the classic dict formulation.
        # Per-port read budget this cycle (a port may launch one
        # transfer per free read slot).
        reads_left: dict[int, int] = {}
        reads_get = reads_left.get
        for _ in range(iterations):
            # Stage 1 — input arbitration: each input port with a free
            # read slot proposes at most one (vc, request) among its
            # head packets that found a usable output this iteration.
            proposals: dict[int, list[tuple[int, int, int, int]]] = {}
            any_request = False
            for key in pending:
                if key in matched_vc:
                    continue
                in_port, in_vc = key
                left = reads_get(in_port)
                if left is None:
                    if single_read:
                        left = 1 if in_busy[in_port][0] <= cycle else 0
                    else:
                        left = self.free_read_slots(in_port, cycle)
                    reads_left[in_port] = left
                if left <= 0:
                    continue
                fifo = in_bufs[in_port][in_vc]._fifo
                if not fifo:
                    continue
                req = route(self, in_port, in_vc, fifo[0], cycle)
                if req is None:
                    continue
                any_request = True
                lst = proposals.get(in_port)
                entry = (in_vc, req[0], req[1], req[2])
                if lst is None:
                    proposals[in_port] = [entry]
                else:
                    lst.append(entry)
            if not any_request:
                break
            # Input stage: LRS among the requesting VCs of each port.
            winners: dict[int, list[tuple[int, int, int, int]]] = {}
            for in_port, reqs in proposals.items():
                if len(reqs) == 1:
                    pick = reqs[0]
                else:
                    arb = self._in_arbiters.get(in_port)
                    if arb is None:
                        arb = self._in_arbiters[in_port] = LRSArbiter()
                    vc_pick = arb.grant([r[0] for r in reqs])
                    pick = next(r for r in reqs if r[0] == vc_pick)
                entry = (in_port, pick[0], pick[2], pick[3])
                lst = winners.get(pick[1])
                if lst is None:
                    winners[pick[1]] = [entry]
                else:
                    lst.append(entry)
            # Stage 2 — output arbitration: LRS among proposing inputs.
            for out_port, cands in winners.items():
                if out_port in claimed_out:
                    continue
                if len(cands) == 1:
                    in_port, in_vc, out_vc, kind = cands[0]
                else:
                    arb = self._out_arbiters.get(out_port)
                    if arb is None:
                        arb = self._out_arbiters[out_port] = LRSArbiter()
                    key = arb.grant([c[0] for c in cands])
                    in_port, in_vc, out_vc, kind = next(c for c in cands if c[0] == key)
                claimed_out.add(out_port)
                matched_vc.add((in_port, in_vc))
                reads_left[in_port] -= 1
                grants += 1
                execute_grant(self, in_port, in_vc, out_port, out_vc, kind, cycle)
        claimed_out.clear()
        matched_vc.clear()
        return grants

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Router(rid={self.rid}, g={self.group}, r={self.index})"
