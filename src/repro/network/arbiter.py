"""Least-recently-served (LRS) arbiters.

The paper's router (§V) uses an iterative separable batch allocator in
the style of Gupta & McKeown, with an LRS policy in every arbiter.  An
LRS arbiter grants, among the current requesters, the one that was
granted longest ago; requesters that have never been granted win over
all that have, breaking ties by request key order (deterministic so that
simulations reproduce exactly for a given seed).
"""

from __future__ import annotations

from typing import Hashable, Iterable


class LRSArbiter:
    """Least-recently-served arbiter over hashable request keys."""

    __slots__ = ("_last_grant", "_clock")

    def __init__(self) -> None:
        self._last_grant: dict[Hashable, int] = {}
        self._clock = 0

    def grant(self, requests: Iterable[Hashable]) -> Hashable | None:
        """Pick the least recently served request and record the grant.

        Returns None when ``requests`` is empty.  Ties (same last-grant
        time, including "never granted") are broken by the natural order
        of the keys, so callers should pass comparable keys (tuples of
        ints throughout this code base).
        """
        last = self._last_grant
        best = None
        best_rank = None
        for req in requests:
            rank = (last.get(req, -1), req)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best = req
        if best is not None:
            self._clock += 1
            last[best] = self._clock
        return best

    def peek(self, requests: Iterable[Hashable]) -> Hashable | None:
        """Like :meth:`grant` but without recording the decision."""
        last = self._last_grant
        best = None
        best_rank = None
        for req in requests:
            rank = (last.get(req, -1), req)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best = req
        return best
