"""Input FIFO buffers with phit-granularity occupancy accounting.

Each (input port, virtual channel) pair owns one :class:`Buffer`.  The
buffer stores whole packets (virtual cut-through requires space for the
complete packet before a transfer starts) but accounts for occupancy in
phits so that the misrouting thresholds of §IV-B — which compare
*percentages* of buffer occupancy across differently sized local and
global FIFOs — are meaningful.

Space for an in-flight packet is reserved at the *sender* through
credits, so the invariant maintained network-wide is::

    credits(upstream) + occupancy(buffer) + in_flight_phits == capacity
"""

from __future__ import annotations

from collections import deque

from repro.network.packet import Packet


class Buffer:
    """A FIFO of whole packets with phit occupancy tracking."""

    __slots__ = ("capacity", "occupancy", "_fifo")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"buffer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.occupancy = 0
        self._fifo: deque[Packet] = deque()

    def push(self, packet: Packet) -> None:
        """Enqueue a fully received packet.

        Overflow is an assertion failure, not flow control: the sender's
        credit accounting must have reserved this space already.
        """
        occ = self.occupancy + packet.size
        if occ > self.capacity:
            raise AssertionError(
                f"buffer overflow: {occ}/{self.capacity} phits — credit accounting broke"
            )
        self.occupancy = occ
        self._fifo.append(packet)

    def pop(self) -> Packet:
        """Dequeue the head packet."""
        packet = self._fifo.popleft()
        self.occupancy -= packet.size
        return packet

    def head(self) -> Packet | None:
        """Head packet without dequeuing, or None when empty."""
        return self._fifo[0] if self._fifo else None

    def free_phits(self) -> int:
        """Free space in phits."""
        return self.capacity - self.occupancy

    def fill_fraction(self) -> float:
        """Occupancy as a fraction of capacity in [0, 1]."""
        return self.occupancy / self.capacity

    def __len__(self) -> int:
        """Number of queued packets."""
        return len(self._fifo)

    def __bool__(self) -> bool:
        return bool(self._fifo)

    def __iter__(self):
        return iter(self._fifo)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Buffer({self.occupancy}/{self.capacity} phits, {len(self._fifo)} pkts)"
