"""The event wheel: O(1) scheduling for the single-cycle simulator.

A *hashed* timing wheel with a lazy min-heap index, in the style of the
schedulers used by BookSim/SST-class network simulators.  Buckets are
keyed by absolute cycle in a hash table (one probe + one append per
event — no per-slot ring arithmetic in the interpreter), and a heap of
bucket cycles answers next-event queries in O(log buckets) instead of
sorting every distinct cycle.  The heap is lazy: a cycle is pushed once
when its bucket is created and discarded on query when its bucket is
gone, so ``schedule``/``pop_due`` stay amortized O(1) per event.

Behavioral contract (relied on for bit-for-bit reproducibility):

- :meth:`pop_due` returns exactly the events scheduled for the queried
  cycle, **in schedule order** (FIFO within a cycle);
- events for cycles that were never queried stay pending, exactly like
  the plain ``dict[int, list]`` wheel this structure replaced.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Iterator


class EventWheel:
    """Per-cycle event buckets with a lazy heap for next-event queries."""

    __slots__ = ("_buckets", "_heap", "_len")

    def __init__(self) -> None:
        self._buckets: dict[int, list] = {}
        # Min-heap of bucket cycles; may hold stale entries for buckets
        # already popped (dropped lazily by next_cycle()).
        self._heap: list[int] = []
        self._len = 0

    # ------------------------------------------------------------------
    def schedule(self, cycle: int, event) -> None:
        """Queue ``event`` for :meth:`pop_due` at ``cycle``."""
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = [event]
            heappush(self._heap, cycle)
        else:
            bucket.append(event)
        self._len += 1

    def pop_due(self, cycle: int) -> list | None:
        """Remove and return the events scheduled for exactly ``cycle``
        in schedule order, or None when there are none."""
        events = self._buckets.pop(cycle, None)
        if events is not None:
            self._len -= len(events)
        return events

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def next_cycle(self) -> int | None:
        """Earliest cycle holding an event, or None when empty.

        Amortized O(log buckets): stale heap heads (buckets popped by
        :meth:`pop_due`) are discarded as they surface.
        """
        heap = self._heap
        buckets = self._buckets
        while heap:
            cycle = heap[0]
            if cycle in buckets:
                return cycle
            heappop(heap)
        return None

    def pending_cycles(self) -> list[int]:
        """Sorted cycles that still hold events (diagnostics/tests)."""
        return sorted(self._buckets)

    def iter_events(self) -> Iterator:
        """All pending events, in no particular order (diagnostics)."""
        for bucket in self._buckets.values():
            yield from bucket
