"""Router and flow-control substrate.

This package implements the hardware model of §V of the paper:

- :mod:`repro.network.packet` — packets (8 phits by default) with the
  OFAR header flags (one global misroute per packet, one local misroute
  per group) and escape-ring state;
- :mod:`repro.network.buffers` — input FIFO buffers with per-VC
  phit-occupancy accounting;
- :mod:`repro.network.arbiter` — least-recently-served (LRS) arbiters;
- :mod:`repro.network.allocator` — the iterative separable batch
  allocator (3 iterations, no internal speedup);
- :mod:`repro.network.router` — the input-buffered virtual cut-through
  router with credit-based flow control;
- :mod:`repro.network.network` — assembly of routers, links, nodes and
  the (physical or embedded) escape ring into one simulable network.
"""

from repro.network.packet import Packet
from repro.network.buffers import Buffer
from repro.network.arbiter import LRSArbiter
from repro.network.router import Router, OutputChannel
from repro.network.network import Network

__all__ = ["Packet", "Buffer", "LRSArbiter", "Router", "OutputChannel", "Network"]
