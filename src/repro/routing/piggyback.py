"""PB: Piggybacking — UGAL-L plus group-broadcast saturation flags.

Jiang, Kim & Dally (ISCA 2009) extend UGAL-L with remote information:
each router continuously tells the other routers of its group whether
each of its global channels is saturated, piggybacking the flags on
regular packets.  The injection decision then combines the (possibly
stale) remote flags with the local queue comparison:

- minimal global channel flagged, Valiant's not  -> route nonminimally;
- Valiant's global channel flagged, minimal's not -> route minimally;
- otherwise                                        -> UGAL-L comparison.

Modelling note (documented divergence): instead of simulating the
piggyback encoding we refresh a per-group flag table every
``pb_update_period`` cycles (default: the local link latency).  Remote
routers therefore act on information that is up to one local-link
latency stale — the same information at the same staleness as the
original scheme, without simulating the carrier packets.

A global channel is flagged saturated when the estimated occupancy of
its downstream buffer exceeds ``pb_threshold`` (fraction of capacity).
The paper tuned PB's thresholds empirically, as we do (see
EXPERIMENTS.md).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.network.router import Router
from repro.routing.base import RoutingAlgorithm

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network


class PiggybackRouting(RoutingAlgorithm):
    """The PB mechanism of §V."""

    name = "pb"

    def __init__(self, network: "Network", rng: random.Random) -> None:
        super().__init__(network, rng)
        # One flag per (router, global slot); index rid * h + k.  This is
        # the *broadcast* (group-visible) state, refreshed in tick().
        self._flags = [False] * (self.topo.num_routers * self.topo.h)
        self._last_update = -1

    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        period = self.config.pb_period
        if self._last_update >= 0 and cycle - self._last_update < period:
            return
        self._last_update = cycle
        h = self.topo.h
        threshold = self.config.pb_threshold
        flags = self._flags
        node_ports = self.topo.node_ports
        local_ports = self.topo.local_ports
        for rt in self.network.routers:
            base = rt.rid * h
            for k in range(h):
                ch = rt.out[node_ports + local_ports + k]
                flags[base + k] = ch.occupancy_fraction() > threshold

    def channel_flag(self, group: int, dst_group: int) -> bool:
        """Broadcast saturation flag of the global channel
        ``group -> dst_group`` (as seen by every router of ``group``)."""
        owner_r, k = self.topo.group_route(group, dst_group)
        owner_rid = self.topo.router_id(group, owner_r)
        return self._flags[owner_rid * self.topo.h + k]

    # ------------------------------------------------------------------
    def on_inject(self, pkt) -> None:
        if pkt.dst_group == pkt.src_group:
            return  # intra-group traffic is minimal
        mg = self.pick_intermediate_group(pkt)
        src_group = pkt.src_group
        flag_min = self.channel_flag(src_group, pkt.dst_group)
        flag_val = self.channel_flag(src_group, mg)
        if flag_min and not flag_val:
            nonmin = True
        elif flag_val and not flag_min:
            nonmin = False
        else:
            rt = self.network.routers[self.topo.node_router(pkt.src)]
            q_min = self.output_occupancy_phits(
                rt, self.topo.min_output_port(rt.rid, pkt.dst)
            )
            q_val = self.output_occupancy_phits(
                rt, self.topo.min_output_port_to_group(rt.rid, mg)
            )
            nonmin = q_min > 2 * q_val + self.config.ugal_offset
        if nonmin:
            pkt.intermediate_group = mg

    def route(self, rt: Router, in_port: int, in_vc: int, pkt, cycle: int):
        return self.route_ordered_minimal(rt, pkt, cycle)
