"""Base class and shared helpers for routing algorithms.

A routing algorithm answers one question per allocation iteration: for
the head packet of a given input (port, VC), which single output request
``(out_port, out_vc, kind)`` should be placed this iteration — or none?
The allocator re-asks on every iteration of every cycle while the packet
waits, so adaptive algorithms (OFAR) can change their answer as ports
get claimed, credits drain, and occupancies move.

Shared machinery:

- the minimal-output oracle, Valiant-phase aware (packets with a live
  ``intermediate_group`` are routed toward that group first);
- the ascending-VC map used by every baseline for deadlock freedom
  (local hop -> VC = number of global hops taken so far; global hop ->
  VC = global-hop index), per §I of the paper.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.network.router import KIND_MIN, Router
from repro.topology.dragonfly import PortKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network
    from repro.network.packet import Packet


class RoutingAlgorithm(ABC):
    """Strategy object shared by all routers of one simulation."""

    #: Human-readable mechanism name (matches the config string).
    name: str = "?"

    def __init__(self, network: "Network", rng: random.Random) -> None:
        self.network = network
        self.topo = network.topo
        self.config = network.config
        self.rng = rng
        # Minimal-output memo tables: the topology oracle is a pure
        # closed form, so (router, destination) pairs can be tabulated
        # as they occur.  Keys are flattened ints (cheaper to hash than
        # tuples on the allocator's hot path).
        self._min_port_cache: dict[int, int] = {}
        self._group_port_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_inject(self, pkt: "Packet") -> None:
        """Injection-time decision (Valiant/UGAL/PB pick a path here)."""

    def tick(self, cycle: int) -> None:
        """Called once per cycle before allocation (PB broadcasts here)."""

    @abstractmethod
    def route(
        self, rt: Router, in_port: int, in_vc: int, pkt: "Packet", cycle: int
    ) -> tuple[int, int, int] | None:
        """Output request for the head packet, or None to stall."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def min_output(self, rt: Router, pkt: "Packet") -> int:
        """Preferred output port: minimal toward the packet's current
        target (its Valiant intermediate group if still pending,
        otherwise the destination node).

        Memoized on the packet: the answer only changes when the packet
        moves to another router or completes its Valiant phase, while
        the allocator re-asks on every iteration of every cycle.
        """
        ig = pkt.intermediate_group
        rid = rt.rid
        if pkt.cache_rid == rid and pkt.cache_ig == ig:
            return pkt.cache_port
        topo = self.topo
        if ig >= 0 and ig != rt.group:
            key = rid * topo.num_groups + ig
            port = self._group_port_cache.get(key)
            if port is None:
                port = topo.min_output_port_to_group(rid, ig)
                self._group_port_cache[key] = port
        else:
            key = rid * topo.num_nodes + pkt.dst
            port = self._min_port_cache.get(key)
            if port is None:
                port = topo.min_output_port(rid, pkt.dst)
                self._min_port_cache[key] = port
        pkt.cache_rid = rid
        pkt.cache_ig = ig
        pkt.cache_port = port
        return port

    def ordered_vc(self, pkt: "Packet", out_kind: PortKind) -> int:
        """Ascending-VC assignment (deadlock freedom for the baselines).

        Local links are used on odd hops of the canonical
        ``l1-g1-l2-g2-l3`` template and global links on even hops, so the
        number of global hops already taken indexes the next VC on
        either link class.  Shorter paths skip indices, preserving the
        ascending order (see §I).
        """
        if out_kind is PortKind.NODE:
            return 0
        return pkt.global_hops

    def route_ordered_minimal(
        self, rt: Router, pkt: "Packet", cycle: int
    ) -> tuple[int, int, int] | None:
        """Request the minimal output on the ordered VC, or stall.

        This is the whole per-hop behaviour of MIN, VAL, UGAL-L and PB:
        their only routing freedom is exercised at injection time.
        """
        port = self.min_output(rt, pkt)
        ch = rt.out[port]
        vc = self.ordered_vc(pkt, ch.kind)
        if rt.min_available(port, cycle, vc, pkt.size):
            return (port, vc, KIND_MIN)
        return None

    # ------------------------------------------------------------------
    # Injection-time occupancy probes (UGAL-L and PB)
    # ------------------------------------------------------------------
    def output_occupancy_phits(self, rt: Router, port: int) -> int:
        """Estimated downstream occupancy of a port's data VCs, in phits
        (derived from outstanding credits at the sender)."""
        ch = rt.out[port]
        free = sum(ch.credits[v] for v in ch.data_vcs)
        return ch.data_capacity - free

    def pick_intermediate_group(self, pkt: "Packet") -> int:
        """Random intermediate group different from source and
        destination groups (the general Valiant case of §III)."""
        num_groups = self.topo.num_groups
        if num_groups <= 2:
            raise ValueError("Valiant misrouting needs at least 3 groups")
        while True:
            g = self.rng.randrange(num_groups)
            if g != pkt.src_group and g != pkt.dst_group:
                return g
