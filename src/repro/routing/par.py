"""PAR: Progressive Adaptive Routing (Jiang, Kim & Dally, ISCA 2009).

PAR sits between UGAL-L and OFAR, and the paper's introduction singles
it out: it is the *only* prior mechanism that can revisit the
misrouting decision after injection — but just within the source group,
and it pays with an **additional local VC** (4 instead of 3) because
the diverted path takes two local hops in the source group
(``l-l-g-l-g-l``) while still relying on an ascending VC order.

Implementation: a packet starts minimal; at the first time it is routed
at each source-group router (while it has taken no global hop and not
yet diverted), the router compares the occupancy of the minimal output
against the occupancy toward a randomly drawn intermediate group, and
diverts iff ``q_min > 2*q_val + offset`` (the same UGAL comparison as at
injection).  Once diverted — or once the packet leaves the source group
— the decision is final.

The ascending VC map generalizes to *per-class hop indices*: local hop
``i`` uses local VC ``i`` (0..3), global hop ``j`` uses global VC ``j``
(0..1); indices strictly increase along any legal PAR path, so the
channel dependency graph stays acyclic.

PAR is an extension baseline (the paper's figures do not include it);
it is exercised by the ablation benchmarks to show where source-group
adaptivity alone runs out: it cannot avoid saturated local links in
*intermediate* groups, so it collapses at ADV+h just like VAL/PB.
"""

from __future__ import annotations

from repro.network.router import KIND_MIN, Router
from repro.routing.base import RoutingAlgorithm
from repro.topology.dragonfly import PortKind


class PARRouting(RoutingAlgorithm):
    """Progressive Adaptive Routing (needs 4 local / 2 global VCs)."""

    name = "par"

    def ordered_vc(self, pkt, out_kind: PortKind) -> int:
        """Per-class hop-index VC map (one more local VC than VAL)."""
        if out_kind is PortKind.NODE:
            return 0
        if out_kind is PortKind.LOCAL:
            return pkt.local_hops
        return pkt.global_hops

    def _maybe_divert(self, rt: Router, pkt) -> None:
        """Re-evaluate min-vs-Valiant once per source-group router."""
        if (
            pkt.global_hops > 0
            or pkt.intermediate_group >= 0
            or rt.group != pkt.src_group
            or pkt.dst_group == rt.group
        ):
            return
        if pkt.cache_rid == rt.rid:
            return  # already evaluated at this router
        mg = self.pick_intermediate_group(pkt)
        q_min = self.output_occupancy_phits(
            rt, self.topo.min_output_port(rt.rid, pkt.dst)
        )
        q_val = self.output_occupancy_phits(
            rt, self.topo.min_output_port_to_group(rt.rid, mg)
        )
        if q_min > 2 * q_val + self.config.ugal_offset:
            pkt.intermediate_group = mg

    def route(self, rt: Router, in_port: int, in_vc: int, pkt, cycle: int):
        self._maybe_divert(rt, pkt)
        port = self.min_output(rt, pkt)
        ch = rt.out[port]
        vc = self.ordered_vc(pkt, ch.kind)
        if rt.min_available(port, cycle, vc, pkt.size):
            return (port, vc, KIND_MIN)
        return None
