"""MIN: deterministic minimal routing.

Every packet follows the unique minimal inter-group path
(``l1 - g1 - l2``, at most 3 hops).  Deadlock freedom comes from the
ascending VC order.  MIN is the latency reference under uniform traffic
and the pathological case under adversarial traffic, where all traffic
from a group contends for a single global link (throughput bound
``1/(2h^2)``, §III).
"""

from __future__ import annotations

from repro.network.router import Router
from repro.routing.base import RoutingAlgorithm


class MinimalRouting(RoutingAlgorithm):
    """The MIN mechanism of §V."""

    name = "min"

    def route(self, rt: Router, in_port: int, in_vc: int, pkt, cycle: int):
        return self.route_ordered_minimal(rt, pkt, cycle)
