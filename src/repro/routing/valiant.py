"""VAL: Valiant randomized routing.

Every packet is first sent minimally to a uniformly random intermediate
group (different from both the source and the destination group, the
general case of §III), then minimally to its destination — the path
template ``l1 - g1 - l2 - g2 - l3``.  This balances global-link load
under adversarial patterns at the cost of doubling global utilization,
bounding throughput at 0.5 phit/(node·cycle); and, as §III shows, it
still collapses to ``1/h`` under ``ADV+h`` because the intermediate
local hop ``l2`` concentrates on single local links.
"""

from __future__ import annotations

from repro.network.router import Router
from repro.routing.base import RoutingAlgorithm


class ValiantRouting(RoutingAlgorithm):
    """The VAL mechanism of §V."""

    name = "val"

    def on_inject(self, pkt) -> None:
        # Traffic internal to the source group is routed minimally:
        # sending it across two global links would only waste bandwidth
        # and there is no single-bottleneck to spread (the paper applies
        # Valiant to inter-group traffic).
        if pkt.dst_group != pkt.src_group:
            pkt.intermediate_group = self.pick_intermediate_group(pkt)

    def route(self, rt: Router, in_port: int, in_vc: int, pkt, cycle: int):
        return self.route_ordered_minimal(rt, pkt, cycle)
