"""Routing mechanisms evaluated in the paper.

Baselines (deadlock-free through an ascending order of VCs):

- :class:`~repro.routing.minimal.MinimalRouting` (*MIN*),
- :class:`~repro.routing.valiant.ValiantRouting` (*VAL*),
- :class:`~repro.routing.ugal.UGALRouting` (*UGAL-L*, extension baseline),
- :class:`~repro.routing.piggyback.PiggybackRouting` (*PB*).

The paper's contribution, *OFAR* (and its *OFAR-L* ablation without
local misrouting), lives in :mod:`repro.core.ofar` and relies on the
escape subnetwork instead of VC ordering.

Use :func:`make_routing` to construct the algorithm named by a
:class:`~repro.engine.config.SimulationConfig`.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.routing.base import RoutingAlgorithm
from repro.routing.minimal import MinimalRouting
from repro.routing.valiant import ValiantRouting
from repro.routing.ugal import UGALRouting
from repro.routing.piggyback import PiggybackRouting
from repro.routing.par import PARRouting

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network

__all__ = [
    "RoutingAlgorithm",
    "MinimalRouting",
    "ValiantRouting",
    "UGALRouting",
    "PiggybackRouting",
    "PARRouting",
    "make_routing",
]


def make_routing(network: "Network", rng: random.Random) -> RoutingAlgorithm:
    """Instantiate the routing algorithm named in the network's config."""
    from repro.core.ofar import OFARRouting  # local import: core builds on routing

    name = network.config.routing
    if name == "min":
        return MinimalRouting(network, rng)
    if name == "val":
        return ValiantRouting(network, rng)
    if name == "ugal":
        return UGALRouting(network, rng)
    if name == "pb":
        return PiggybackRouting(network, rng)
    if name == "par":
        return PARRouting(network, rng)
    if name == "ofar":
        return OFARRouting(network, rng, allow_local_misroute=True)
    if name == "ofar-l":
        return OFARRouting(network, rng, allow_local_misroute=False)
    raise ValueError(f"unknown routing {name!r}")
