"""UGAL-L: source-adaptive routing on local (injection-router) state.

At injection, a random Valiant path is drawn and compared against the
minimal path using only the occupancy of the candidate output queues at
the injection router (Kim et al., ISCA 2008): route minimally iff

    q_min <= 2 * q_val + offset        [phits]

The factor 2 accounts for the Valiant path being roughly twice as long;
``offset`` (config ``ugal_offset``) biases toward minimal at low load.
The decision is final — no in-transit adaptation — and deadlock freedom
again comes from the ascending VC order.

UGAL-L is not plotted in the paper's figures but is the decision core of
PB (which extends it with remote saturation flags), so it is provided
both as a building block and as an extra baseline.
"""

from __future__ import annotations

from repro.network.router import Router
from repro.routing.base import RoutingAlgorithm


class UGALRouting(RoutingAlgorithm):
    """UGAL-L as described with the dragonfly (ISCA 2008)."""

    name = "ugal"

    def on_inject(self, pkt) -> None:
        if pkt.dst_group == pkt.src_group:
            return  # intra-group traffic is minimal
        mg = self.pick_intermediate_group(pkt)
        rt = self.network.routers[self.topo.node_router(pkt.src)]
        q_min = self.output_occupancy_phits(rt, self.topo.min_output_port(rt.rid, pkt.dst))
        q_val = self.output_occupancy_phits(
            rt, self.topo.min_output_port_to_group(rt.rid, mg)
        )
        if q_min > 2 * q_val + self.config.ugal_offset:
            pkt.intermediate_group = mg

    def route(self, rt: Router, in_port: int, in_vc: int, pkt, cycle: int):
        return self.route_ordered_minimal(rt, pkt, cycle)
