"""Cluster scenario descriptions: arrivals, job mixes, faults, a scheduler.

A *scenario* describes a production cluster's life over a horizon of
cycles: jobs arrive by a seeded stochastic (or trace-derived) process,
draw their size/duration/pattern/load from a weighted mix, wait in a
scheduler queue when the machine is full, and links fail and get
repaired on a schedule — all deterministically derived from the spec,
so the same fingerprint always means the same cluster history.

Like :class:`~repro.workloads.spec.WorkloadSpec`, everything here is
pure data with a lossless JSON round-trip and participates in the
:class:`~repro.engine.runspec.RunSpec` content fingerprint.  Nothing in
this module imports the engine — the scheduling/compilation logic lives
in :mod:`repro.cluster.schedule` and the execution in
:mod:`repro.cluster.runner`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.workloads.spec import PLACEMENTS

#: Arrival processes a scenario may use.
ARRIVALS = (
    "poisson",  # open arrivals: exponential interarrival gaps at `rate`
    "closed",  # closed population: `jobs` slots, re-arrival after think time
    "trace",  # explicit interarrival gaps (trace-derived)
)

#: Built-in scheduler names (see repro.cluster.schedule.SCHEDULERS for
#: the pluggable registry behind them).
SCHEDULER_KINDS = ("fcfs", "easy")

#: Fault event actions.
FAULT_ACTIONS = ("fail", "restore")


def _weighted(name: str, raw) -> tuple[tuple, ...]:
    """Normalize a weighted-choice table to a tuple of (value, weight)."""
    out = tuple((v, float(w)) for v, w in raw)
    if not out:
        raise ValueError(f"{name} must have at least one entry")
    for v, w in out:
        if w <= 0:
            raise ValueError(f"{name}: weight for {v!r} must be > 0")
    return out


@dataclass(frozen=True)
class JobMix:
    """Weighted distributions a scenario draws each job's shape from.

    Each table is ``((value, weight), ...)``; draws use the scenario's
    seeded RNG, so the mix realization is part of the fingerprint's
    meaning, not an execution detail.
    """

    sizes: tuple[tuple[int, float], ...] = ((4, 1.0),)
    durations: tuple[tuple[int, float], ...] = ((2_000, 1.0),)
    patterns: tuple[tuple[str, float], ...] = (("UN", 1.0),)
    loads: tuple[tuple[float, float], ...] = ((0.2, 1.0),)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "sizes",
            tuple((int(v), w) for v, w in _weighted("sizes", self.sizes)),
        )
        object.__setattr__(
            self, "durations",
            tuple((int(v), w) for v, w in _weighted("durations", self.durations)),
        )
        object.__setattr__(
            self, "patterns",
            tuple((str(v), w) for v, w in _weighted("patterns", self.patterns)),
        )
        object.__setattr__(
            self, "loads",
            tuple((float(v), w) for v, w in _weighted("loads", self.loads)),
        )
        for size, _ in self.sizes:
            if size < 1:
                raise ValueError(f"job size must be >= 1, got {size}")
        for dur, _ in self.durations:
            if dur < 1:
                raise ValueError(f"job duration must be >= 1, got {dur}")
        for load, _ in self.loads:
            if not 0.0 <= load <= 1.0:
                raise ValueError(f"job load must be in [0, 1], got {load}")

    def to_jsonable(self) -> dict:
        return {
            "sizes": [list(e) for e in self.sizes],
            "durations": [list(e) for e in self.durations],
            "patterns": [list(e) for e in self.patterns],
            "loads": [list(e) for e in self.loads],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "JobMix":
        if not isinstance(data, dict):
            raise ValueError("JobMix JSON must be an object")
        unknown = set(data) - {"sizes", "durations", "patterns", "loads"}
        if unknown:
            raise ValueError(f"unknown JobMix keys: {sorted(unknown)}")
        kwargs = {}
        for key in ("sizes", "durations", "patterns", "loads"):
            if key in data:
                kwargs[key] = tuple(tuple(e) for e in data[key])
        return cls(**kwargs)


@dataclass(frozen=True)
class ArrivalSpec:
    """How jobs enter the scenario.

    - ``poisson``: up to ``jobs`` arrivals with exponential interarrival
      gaps at ``rate`` jobs/cycle (an open system).
    - ``closed``: a fixed population of ``jobs`` slots; each slot thinks
      for an exponential time at ``rate`` then submits, resubmitting
      after its job finishes (a closed system: load self-regulates).
    - ``trace``: explicit ``interarrivals`` gaps in cycles, e.g. derived
      from a recorded submission log.
    """

    kind: str = "poisson"
    rate: float = 0.001
    jobs: int = 8
    interarrivals: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ARRIVALS:
            raise ValueError(
                f"arrival kind must be one of {ARRIVALS}, got {self.kind!r}"
            )
        if self.interarrivals is not None and not isinstance(self.interarrivals, tuple):
            object.__setattr__(self, "interarrivals", tuple(self.interarrivals))
        if (self.kind == "trace") != (self.interarrivals is not None):
            raise ValueError("interarrivals are required iff kind='trace'")
        if self.kind == "trace":
            if not self.interarrivals:
                raise ValueError("trace arrivals need at least one gap")
            for gap in self.interarrivals:
                if gap < 0:
                    raise ValueError(f"interarrival gap must be >= 0, got {gap}")
        else:
            if self.rate <= 0:
                raise ValueError(f"arrival rate must be > 0, got {self.rate}")
            if self.jobs < 1:
                raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    def to_jsonable(self) -> dict:
        out = {"kind": self.kind, "rate": self.rate, "jobs": self.jobs}
        if self.interarrivals is not None:
            out["interarrivals"] = list(self.interarrivals)
        return out

    @classmethod
    def from_jsonable(cls, data: dict) -> "ArrivalSpec":
        if not isinstance(data, dict):
            raise ValueError("ArrivalSpec JSON must be an object")
        unknown = set(data) - {"kind", "rate", "jobs", "interarrivals"}
        if unknown:
            raise ValueError(f"unknown ArrivalSpec keys: {sorted(unknown)}")
        inter = data.get("interarrivals")
        return cls(
            kind=data.get("kind", "poisson"),
            rate=data.get("rate", 0.001),
            jobs=data.get("jobs", 8),
            interarrivals=tuple(inter) if inter is not None else None,
        )


@dataclass(frozen=True)
class FaultEvent:
    """One timed link event: fail or restore ``(router, port)`` at ``cycle``."""

    cycle: int
    action: str
    router: int
    port: int

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError(f"fault cycle must be >= 0, got {self.cycle}")
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"fault action must be one of {FAULT_ACTIONS}, got {self.action!r}"
            )
        if self.router < 0 or self.port < 0:
            raise ValueError("fault router and port must be >= 0")

    def to_jsonable(self) -> dict:
        return {
            "cycle": self.cycle,
            "action": self.action,
            "router": self.router,
            "port": self.port,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "FaultEvent":
        if not isinstance(data, dict):
            raise ValueError("FaultEvent JSON must be an object")
        unknown = set(data) - {"cycle", "action", "router", "port"}
        if unknown:
            raise ValueError(f"unknown FaultEvent keys: {sorted(unknown)}")
        return cls(
            cycle=data["cycle"],
            action=data["action"],
            router=data["router"],
            port=data["port"],
        )


@dataclass(frozen=True)
class FaultScheduleSpec:
    """Timed fault events plus an optional seeded random failure process.

    The random process draws exponential gaps at ``rate`` failures/cycle
    from ``Random(seed)``, fails a uniformly chosen router link (never a
    terminal port), and — when ``repair`` is set — restores it after
    ``repair`` cycles.  At most ``count`` random failures are injected.
    """

    events: tuple[FaultEvent, ...] = ()
    rate: float = 0.0
    count: int = 0
    repair: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        if self.rate < 0:
            raise ValueError(f"fault rate must be >= 0, got {self.rate}")
        if self.count < 0:
            raise ValueError(f"fault count must be >= 0, got {self.count}")
        if self.count > 0 and self.rate <= 0:
            raise ValueError("random faults (count > 0) need rate > 0")
        if self.repair is not None and self.repair < 1:
            raise ValueError(f"repair time must be >= 1, got {self.repair}")

    def to_jsonable(self) -> dict:
        return {
            "events": [e.to_jsonable() for e in self.events],
            "rate": self.rate,
            "count": self.count,
            "repair": self.repair,
            "seed": self.seed,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "FaultScheduleSpec":
        if not isinstance(data, dict):
            raise ValueError("FaultScheduleSpec JSON must be an object")
        unknown = set(data) - {"events", "rate", "count", "repair", "seed"}
        if unknown:
            raise ValueError(f"unknown FaultScheduleSpec keys: {sorted(unknown)}")
        return cls(
            events=tuple(
                FaultEvent.from_jsonable(e) for e in data.get("events", [])
            ),
            rate=data.get("rate", 0.0),
            count=data.get("count", 0),
            repair=data.get("repair"),
            seed=data.get("seed", 0),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One cluster scenario: arrivals, mix, scheduler, faults, horizon.

    ``seed`` drives the arrival process and the mix draws; ``placement``
    and ``placement_seed`` feed the incremental placement the scheduler
    performs (the same policies as :mod:`repro.workloads.placement`).
    ``blast_window`` is the half-width, in cycles, of the before/after
    window the runner samples around each link failure to measure its
    blast radius on concurrently running jobs.
    """

    arrivals: ArrivalSpec = field(default_factory=ArrivalSpec)
    mix: JobMix = field(default_factory=JobMix)
    scheduler: str = "fcfs"
    placement: str = "contiguous"
    placement_seed: int = 0
    faults: FaultScheduleSpec = field(default_factory=FaultScheduleSpec)
    horizon: int = 20_000
    seed: int = 0
    blast_window: int = 500

    def __post_init__(self) -> None:
        # Registered schedulers may extend SCHEDULER_KINDS at runtime;
        # validate lazily against the registry to stay pluggable.
        from repro.cluster.schedule import SCHEDULERS

        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {sorted(SCHEDULERS)}, "
                f"got {self.scheduler!r}"
            )
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got {self.placement!r}"
            )
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        if self.blast_window < 1:
            raise ValueError(
                f"blast_window must be >= 1, got {self.blast_window}"
            )

    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        return {
            "arrivals": self.arrivals.to_jsonable(),
            "mix": self.mix.to_jsonable(),
            "scheduler": self.scheduler,
            "placement": self.placement,
            "placement_seed": self.placement_seed,
            "faults": self.faults.to_jsonable(),
            "horizon": self.horizon,
            "seed": self.seed,
            "blast_window": self.blast_window,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "ScenarioSpec":
        if not isinstance(data, dict):
            raise ValueError("ScenarioSpec JSON must be an object")
        known = {
            "arrivals", "mix", "scheduler", "placement", "placement_seed",
            "faults", "horizon", "seed", "blast_window",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ScenarioSpec keys: {sorted(unknown)}")
        return cls(
            arrivals=ArrivalSpec.from_jsonable(data.get("arrivals", {})),
            mix=JobMix.from_jsonable(data.get("mix", {})),
            scheduler=data.get("scheduler", "fcfs"),
            placement=data.get("placement", "contiguous"),
            placement_seed=data.get("placement_seed", 0),
            faults=FaultScheduleSpec.from_jsonable(data.get("faults", {})),
            horizon=data.get("horizon", 20_000),
            seed=data.get("seed", 0),
            blast_window=data.get("blast_window", 500),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_jsonable(json.loads(text))

    def fingerprint(self) -> str:
        """Stable content hash of the scenario alone (the RunSpec's
        fingerprint covers this via its own JSON form)."""
        blob = json.dumps(
            self.to_jsonable(), sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
