"""Executing cluster scenarios and attributing results per job and fault.

:func:`run_scenario` executes one scenario :class:`RunSpec` (a spec
whose ``scenario`` field is set): the scenario is compiled to a pinned
workload (:func:`~repro.cluster.schedule.compile_scenario`), the
network simulation advances through it with the stock
:class:`~repro.workloads.composite.CompositeTraffic` lifecycle, and the
runner stops at every *boundary cycle* — a fault event, or a
blast-radius sample point around one — to apply
``fail_link``/``restore_link`` and to snapshot per-job latency
counters.  The result is a :class:`ScenarioResult`: per-job rows (wait,
scheduling slowdown, measured LoadPoint), the utilization timeline,
fairness across jobs, and a fault blast-radius table (per failure, each
concurrent job's mean latency in the ``blast_window`` cycles before vs
after).

Execution is resumable: the boundary bookkeeping lives in a JSON-safe
*state* dict that rides inside mid-run checkpoints
(:func:`repro.snapshot.checkpoint.run_spec_checkpointed` ``extras``),
and the network's failed-link set is part of the snapshot codec — so a
SIGKILLed scenario resumes bit-identically, faults and all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.schedule import CompiledScenario, compile_scenario
from repro.cluster.spec import FaultScheduleSpec, ScenarioSpec
from repro.engine.metrics import LoadPoint
from repro.engine.runspec import RunSpec
from repro.workloads.composite import CompositeTraffic
from repro.workloads.runner import jain_across_jobs

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.store import ResultStore
    from repro.engine.simulator import Simulator
    from repro.telemetry.config import TelemetryConfig
    from repro.telemetry.sampler import TelemetrySeries
    from repro.topology.dragonfly import Dragonfly

#: Store sidecar kind for cached ScenarioResults (see run_scenario_cached).
SIDECAR_KIND = "scenarios"

SCENARIO_RESULT_FORMAT = 1


# ----------------------------------------------------------------------
# Result types
# ----------------------------------------------------------------------
@dataclass
class ScenarioJobRow:
    """One job's scenario outcome (``start=None`` = never scheduled)."""

    name: str
    size: int
    arrival: int
    start: int | None
    finish: int | None
    wait: int | None
    slowdown: float | None  # scheduling slowdown: (wait + run) / run
    completed: bool  # departed before the horizon
    point: LoadPoint | None  # measured network metrics (started jobs)

    def to_jsonable(self) -> dict:
        return {
            "name": self.name,
            "size": self.size,
            "arrival": self.arrival,
            "start": self.start,
            "finish": self.finish,
            "wait": self.wait,
            "slowdown": self.slowdown,
            "completed": self.completed,
            "point": self.point.to_jsonable() if self.point is not None else None,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "ScenarioJobRow":
        point = data.get("point")
        return cls(
            name=data["name"],
            size=data["size"],
            arrival=data["arrival"],
            start=data.get("start"),
            finish=data.get("finish"),
            wait=data.get("wait"),
            slowdown=data.get("slowdown"),
            completed=data["completed"],
            point=LoadPoint.from_jsonable(point) if point is not None else None,
        )


@dataclass
class BlastRow:
    """One (fault, concurrent job) cell of the blast-radius table.

    ``before``/``after`` are the job's mean packet latency over the
    ``blast_window`` cycles each side of the fault; ``ratio`` is
    after/before (NaN when a window ejected nothing).
    """

    cycle: int
    action: str
    router: int
    port: int
    job: str
    before: float
    after: float
    ratio: float

    def to_jsonable(self) -> dict:
        return {
            "cycle": self.cycle,
            "action": self.action,
            "router": self.router,
            "port": self.port,
            "job": self.job,
            "before": self.before,
            "after": self.after,
            "ratio": self.ratio,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "BlastRow":
        return cls(**data)


@dataclass
class ScenarioResult:
    """Everything one scenario run produces."""

    total: LoadPoint  # global network metrics over the whole horizon
    jobs: list[ScenarioJobRow]  # arrival order (censored jobs included)
    makespan: int
    utilization: list[tuple[int, int]]  # (cycle, busy nodes) steps
    mean_utilization: float
    fairness: float  # Jain index over started jobs' scheduling slowdowns
    blast: list[BlastRow]
    queued: int  # jobs that never started before the horizon

    def job(self, name: str) -> ScenarioJobRow:
        for row in self.jobs:
            if row.name == name:
                return row
        raise KeyError(f"no job named {name!r}")

    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        return {
            "format": SCENARIO_RESULT_FORMAT,
            "total": self.total.to_jsonable(),
            "jobs": [row.to_jsonable() for row in self.jobs],
            "makespan": self.makespan,
            "utilization": [list(step) for step in self.utilization],
            "mean_utilization": self.mean_utilization,
            "fairness": self.fairness,
            "blast": [row.to_jsonable() for row in self.blast],
            "queued": self.queued,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "ScenarioResult":
        if data.get("format") != SCENARIO_RESULT_FORMAT:
            raise ValueError(
                f"unknown ScenarioResult format {data.get('format')!r}"
            )
        return cls(
            total=LoadPoint.from_jsonable(data["total"]),
            jobs=[ScenarioJobRow.from_jsonable(row) for row in data["jobs"]],
            makespan=data["makespan"],
            utilization=[tuple(step) for step in data["utilization"]],
            mean_utilization=data["mean_utilization"],
            fairness=data["fairness"],
            blast=[BlastRow.from_jsonable(row) for row in data["blast"]],
            queued=data["queued"],
        )


# ----------------------------------------------------------------------
# Fault realization
# ----------------------------------------------------------------------
def realize_faults(
    faults: FaultScheduleSpec, topo: "Dragonfly", horizon: int
) -> list[tuple[int, str, int, int]]:
    """Expand the fault schedule to sorted (cycle, action, router, port).

    Timed events are validated against the topology; the random process
    draws exponential gaps from ``Random(faults.seed)``, picks a uniform
    router link (local or global, never a terminal port), and schedules
    the matching repair when ``faults.repair`` is set.  Events at or
    past the horizon are dropped — they could never act.
    """
    import random

    events: list[tuple[int, str, int, int]] = []
    for ev in faults.events:
        if not 0 <= ev.router < topo.num_routers:
            raise ValueError(f"fault router {ev.router} out of range")
        if not topo.node_ports <= ev.port <= topo.ports_per_router:
            raise ValueError(
                f"fault port {ev.port} is not a router link port "
                f"(range [{topo.node_ports}, {topo.ports_per_router}])"
            )
        if ev.cycle < horizon:
            events.append((ev.cycle, ev.action, ev.router, ev.port))
    if faults.count > 0 and faults.rate > 0:
        rng = random.Random(faults.seed)
        t = 0.0
        for _ in range(faults.count):
            t += rng.expovariate(faults.rate)
            cycle = int(t) + 1
            if cycle >= horizon:
                break
            router = rng.randrange(topo.num_routers)
            port = rng.randrange(topo.node_ports, topo.ports_per_router)
            events.append((cycle, "fail", router, port))
            if faults.repair is not None and cycle + faults.repair < horizon:
                events.append((cycle + faults.repair, "restore", router, port))
    events.sort()
    return events


# ----------------------------------------------------------------------
# The boundary-driven advance loop
# ----------------------------------------------------------------------
def scenario_plan(scenario: ScenarioSpec, topo: "Dragonfly") -> dict:
    """Boundary plan: fault events plus blast-radius sample cycles.

    Pure function of (spec, topology) — rebuilt identically on resume,
    so only the *progress* through it needs to ride in checkpoints.
    """
    horizon = scenario.horizon
    events = realize_faults(scenario.faults, topo, horizon)
    w = scenario.blast_window
    samples: set[int] = set()
    for cycle, action, _, _ in events:
        if action != "fail":
            continue
        samples.update((max(0, cycle - w), cycle, min(horizon, cycle + w)))
    return {"events": events, "samples": sorted(samples)}


def fresh_state() -> dict:
    """JSON-safe progress through a plan (rides in checkpoint extras)."""
    return {"event_idx": 0, "sample_idx": 0, "samples": {}}


def _job_sample(metrics) -> dict[str, list[int]]:
    return {
        str(job): [js.ejected, js.latency_sum]
        for job, js in metrics.job_stats.items()
    }


def advance_scenario(
    sim: "Simulator", plan: dict, state: dict, target: int
) -> None:
    """Advance to ``target`` cycles, stopping at every plan boundary.

    At a boundary the order is fixed: blast samples first (they observe
    the state *before* a same-cycle fault acts), then fault events.
    Idempotent at the current cycle, so checkpoint segment edges and
    plan boundaries may coincide freely.
    """
    events, samples = plan["events"], plan["samples"]
    while True:
        si = state["sample_idx"]
        while si < len(samples) and samples[si] <= sim.cycle:
            state["samples"][str(samples[si])] = _job_sample(sim.metrics)
            si += 1
            state["sample_idx"] = si
        ei = state["event_idx"]
        while ei < len(events) and events[ei][0] <= sim.cycle:
            _, action, router, port = events[ei]
            if action == "fail":
                sim.network.fail_link(router, port)
            else:
                sim.network.restore_link(router, port)
            ei += 1
            state["event_idx"] = ei
        if sim.cycle >= target:
            return
        nxt = target
        if ei < len(events):
            nxt = min(nxt, events[ei][0])
        if si < len(samples):
            nxt = min(nxt, samples[si])
        sim.run(nxt - sim.cycle)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def build_scenario_sim(spec: RunSpec) -> tuple["Simulator", CompiledScenario]:
    """Fresh simulator + compiled schedule for one scenario spec."""
    from repro.engine.backend import resolve_backend

    if spec.scenario is None:
        raise ValueError("spec.scenario must be set to run a scenario")
    config = spec.config
    sim = resolve_backend(spec).simulator(
        config, record_per_source=True, record_per_job=True
    )
    compiled = compile_scenario(spec.scenario, sim.network.topo)
    sim.generator = CompositeTraffic(
        sim.network.topo, compiled.workload, config.packet_size, config.seed
    )
    return sim, compiled


def scenario_offered_load(compiled: CompiledScenario, num_nodes: int) -> float:
    """Time-averaged network-wide offered load, phits/(node*cycle)."""
    horizon = compiled.spec.horizon
    phit_cycles = 0.0
    for j in compiled.started:
        span = min(j.finish, horizon) - j.start
        phit_cycles += j.load * j.size * span
    return phit_cycles / (num_nodes * horizon)


def run_scenario(spec: RunSpec) -> ScenarioResult:
    """Execute one scenario spec start to finish."""
    sim, compiled = build_scenario_sim(spec)
    plan = scenario_plan(compiled.spec, sim.network.topo)
    state = fresh_state()
    advance_scenario(sim, plan, state, compiled.spec.horizon)
    return summarize_scenario(sim, compiled, plan, state)


def run_scenario_with_telemetry(
    spec: RunSpec, telemetry: "TelemetryConfig | None" = None
) -> tuple[ScenarioResult, "TelemetrySeries | None"]:
    """:func:`run_scenario` with an in-run sampler over the whole
    horizon; the ScenarioResult is bit-identical either way."""
    cfg = telemetry if telemetry is not None else spec.telemetry
    if cfg is None:
        return run_scenario(spec), None
    from repro.telemetry.sampler import TelemetrySampler

    sim, compiled = build_scenario_sim(spec)
    plan = scenario_plan(compiled.spec, sim.network.topo)
    state = fresh_state()
    sampler = TelemetrySampler(sim, cfg)
    sampler.attach()
    advance_scenario(sim, plan, state, compiled.spec.horizon)
    return summarize_scenario(sim, compiled, plan, state), sampler.finish()


def summarize_scenario(
    sim: "Simulator", compiled: CompiledScenario, plan: dict, state: dict
) -> ScenarioResult:
    """Fold the finished simulation + schedule into a ScenarioResult."""
    generator = sim.generator
    assert isinstance(generator, CompositeTraffic)
    metrics = sim.metrics
    spec = compiled.spec
    horizon = spec.horizon
    num_nodes = sim.network.topo.num_nodes
    placed = {job.spec.name: job for job in generator.jobs}

    rows: list[ScenarioJobRow] = []
    for j in compiled.jobs:
        point = None
        if j.start is not None:
            pj = placed[j.name]
            point = metrics.job_load_point(
                pj.index, pj.offered_load, sim.cycle, len(pj.nodes)
            )
        rows.append(ScenarioJobRow(
            name=j.name,
            size=j.size,
            arrival=j.arrival,
            start=j.start,
            finish=j.finish,
            wait=j.wait,
            slowdown=j.slowdown,
            completed=j.finish is not None and j.finish <= horizon,
            point=point,
        ))

    blast = _blast_table(compiled, plan, state)
    slowdowns = [row.slowdown for row in rows if row.slowdown is not None]
    total = metrics.load_point(
        scenario_offered_load(compiled, num_nodes), sim.cycle
    )
    return ScenarioResult(
        total=total,
        jobs=rows,
        makespan=compiled.makespan,
        utilization=list(compiled.utilization),
        mean_utilization=compiled.mean_utilization,
        fairness=jain_across_jobs(slowdowns),
        blast=blast,
        queued=sum(1 for j in compiled.jobs if j.start is None),
    )


def _window_latency(
    lo: dict, hi: dict, job_index: int
) -> float:
    """Mean latency of one job's packets ejected between two samples."""
    key = str(job_index)
    ej_lo, lat_lo = lo.get(key, (0, 0))
    ej_hi, lat_hi = hi.get(key, (0, 0))
    ejected = ej_hi - ej_lo
    if ejected <= 0:
        return float("nan")
    return (lat_hi - lat_lo) / ejected


def _blast_table(
    compiled: CompiledScenario, plan: dict, state: dict
) -> list[BlastRow]:
    spec = compiled.spec
    w = spec.blast_window
    horizon = spec.horizon
    samples = state["samples"]
    out: list[BlastRow] = []
    index_of = {j.name: i for i, j in enumerate(compiled.workload.jobs)}
    for cycle, action, router, port in plan["events"]:
        if action != "fail":
            continue
        lo = samples.get(str(max(0, cycle - w)), {})
        mid = samples.get(str(cycle), {})
        hi = samples.get(str(min(horizon, cycle + w)), {})
        for j in compiled.started:
            if not (j.start <= cycle < min(j.finish, horizon)):
                continue
            before = _window_latency(lo, mid, index_of[j.name])
            after = _window_latency(mid, hi, index_of[j.name])
            ratio = (
                after / before
                if not (math.isnan(before) or math.isnan(after)) and before > 0
                else float("nan")
            )
            out.append(BlastRow(
                cycle=cycle, action=action, router=router, port=port,
                job=j.name, before=before, after=after, ratio=ratio,
            ))
    return out


# ----------------------------------------------------------------------
# Store integration
# ----------------------------------------------------------------------
def run_scenario_cached(
    spec: RunSpec, store: "ResultStore | None", use_cache: bool = True
) -> ScenarioResult:
    """:func:`run_scenario` through the result store.

    The full :class:`ScenarioResult` is cached as a store *sidecar*
    (kind ``"scenarios"``) keyed by the spec fingerprint; the global
    LoadPoint is additionally written to the main store so orchestrated
    or fabric-drained sweeps over the same spec hit cache.
    """
    if store is not None and use_cache:
        payload = store.get_sidecar(SIDECAR_KIND, spec)
        if payload is not None:
            try:
                return ScenarioResult.from_jsonable(payload)
            except (ValueError, KeyError, TypeError):
                pass  # corrupt sidecar: recompute and overwrite
    result = run_scenario(spec)
    if store is not None:
        store.put_sidecar(SIDECAR_KIND, spec, result.to_jsonable())
        store.put(spec, result.total)
    return result


__all__ = [
    "SCENARIO_RESULT_FORMAT",
    "SIDECAR_KIND",
    "BlastRow",
    "ScenarioJobRow",
    "ScenarioResult",
    "advance_scenario",
    "build_scenario_sim",
    "fresh_state",
    "realize_faults",
    "run_scenario",
    "run_scenario_cached",
    "run_scenario_with_telemetry",
    "scenario_offered_load",
    "scenario_plan",
    "summarize_scenario",
]
