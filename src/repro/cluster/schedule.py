"""Compile a scenario into a schedule: the cluster's discrete-event core.

Because every job's duration is fixed the moment it is drawn from the
mix, the entire scheduling history — arrivals, queueing, placement,
departures — is computable *without* simulating the network: a pure
discrete-event pass over arrival/finish events.  :func:`compile_scenario`
runs that pass and emits a pinned
:class:`~repro.workloads.spec.WorkloadSpec` (every started job carries
its exact ``node_list`` and ``start``/``stop`` cycles), so the network
simulation downstream is the stock
:class:`~repro.workloads.composite.CompositeTraffic` lifecycle — churn
literally rides on the workload layer, and two backends replaying the
same compiled schedule see bit-identical traffic.

Schedulers are pluggable: implement :class:`Scheduler` and register the
class in :data:`SCHEDULERS` (or via :func:`register_scheduler`).  The
built-ins are FCFS (strict queue order; head-of-line blocking is part
of what the scenario measures) and EASY backfill (head job gets a
count-based shadow reservation; later jobs may jump the queue when they
fit now and cannot delay the head).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cluster.spec import ArrivalSpec, JobMix, ScenarioSpec
from repro.topology.dragonfly import Dragonfly
from repro.workloads.placement import place_one
from repro.workloads.spec import JobSpec, WorkloadSpec

_INF = float("inf")


@dataclass
class ScheduledJob:
    """One job's life through the cluster, as the scheduler saw it."""

    name: str
    size: int
    duration: int
    pattern: str
    load: float
    arrival: int
    start: int | None = None
    finish: int | None = None  # start + duration (may exceed the horizon)
    nodes: tuple[int, ...] | None = None
    owned: frozenset[int] = field(default_factory=frozenset)

    @property
    def wait(self) -> int | None:
        return None if self.start is None else self.start - self.arrival

    @property
    def slowdown(self) -> float | None:
        """Scheduling slowdown vs an isolated machine: (wait+run)/run.

        The isolated baseline starts immediately and runs for exactly
        ``duration`` cycles, so only queueing inflates this ratio;
        network interference is measured separately, per job, by the
        scenario runner's metrics.
        """
        if self.start is None:
            return None
        return (self.start - self.arrival + self.duration) / self.duration


class Machine:
    """Incremental placement state: which nodes are busy right now."""

    def __init__(self, topo: Dragonfly, policy: str, seed: int) -> None:
        self.topo = topo
        self.policy = policy
        self.rng = random.Random(seed)
        self.used: set[int] = set()

    @property
    def free_count(self) -> int:
        return self.topo.num_nodes - len(self.used)

    def try_place(self, job: ScheduledJob) -> bool:
        """Place ``job`` now if it fits; side-effect free on failure."""
        try:
            nodes, owned = place_one(
                self.topo, self.policy, self.used, job.size, job.name, self.rng
            )
        except ValueError:
            return False
        job.nodes, job.owned = nodes, owned
        return True

    def release(self, job: ScheduledJob) -> None:
        self.used.difference_update(job.owned)


class Scheduler:
    """Decides which queued jobs start when the machine changes state.

    ``schedule`` is called at every event time with the FIFO ``queue``
    (arrival order), the :class:`Machine`, and the currently ``running``
    jobs; it starts jobs by placing them and setting ``start``/``finish``
    and returns the list it started (the caller moves them to
    ``running``).  Implementations must be deterministic functions of
    their arguments and the machine's seeded RNG.
    """

    name = "base"

    def schedule(
        self, now: int, queue: list[ScheduledJob], machine: Machine,
        running: list[ScheduledJob],
    ) -> list[ScheduledJob]:
        raise NotImplementedError


class FCFSScheduler(Scheduler):
    """Strict arrival order: the queue head either starts or blocks all."""

    name = "fcfs"

    def schedule(self, now, queue, machine, running):
        started = []
        while queue and machine.try_place(queue[0]):
            job = queue.pop(0)
            job.start = now
            job.finish = now + job.duration
            started.append(job)
        return started

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__}>"


class EasyScheduler(FCFSScheduler):
    """EASY backfill: reserve for the head, backfill behind the shadow.

    When the head does not fit, it gets a *count-based* reservation: the
    shadow time is the earliest finish by which enough owned nodes free
    up.  A later job may start now iff it fits the machine and either
    finishes by the shadow time or needs no more than the nodes left
    spare at it — the classic aggressive-backfill rule.  Count-based
    shadow + policy-based actual placement means a backfill candidate
    that fits by count but not by policy (e.g. no whole free group under
    ``group-exclusive``) simply stays queued.
    """

    name = "easy"

    def schedule(self, now, queue, machine, running):
        started = super().schedule(now, queue, machine, running)
        if not queue:
            return started
        head = queue[0]
        shadow, spare = self._shadow(head, machine.free_count, running)
        for job in list(queue[1:]):
            if job.size > machine.free_count:
                continue
            by_shadow = now + job.duration <= shadow
            if not by_shadow and job.size > spare:
                continue
            if not machine.try_place(job):
                continue
            queue.remove(job)
            job.start = now
            job.finish = now + job.duration
            started.append(job)
            if not by_shadow:
                spare -= job.size
        return started

    @staticmethod
    def _shadow(
        head: ScheduledJob, free: int, running: list[ScheduledJob]
    ) -> tuple[float, int]:
        """(shadow time, nodes spare at it) for the blocked head job."""
        avail = free
        for job in sorted(running, key=lambda j: (j.finish, j.name)):
            avail += len(job.owned)
            if avail >= head.size:
                return float(job.finish), avail - head.size
        return _INF, free  # head never fits by count; backfill freely


#: Pluggable scheduler registry: name -> zero-arg factory.
SCHEDULERS: dict[str, type[Scheduler]] = {
    "fcfs": FCFSScheduler,
    "easy": EasyScheduler,
}


def register_scheduler(name: str, factory: type[Scheduler]) -> None:
    """Register a custom scheduler class under ``name``."""
    SCHEDULERS[name] = factory


# ----------------------------------------------------------------------
# Arrival realization
# ----------------------------------------------------------------------
def _draw(rng: random.Random, table: tuple) -> object:
    """One weighted draw from a ((value, weight), ...) table."""
    total = sum(w for _, w in table)
    x = rng.random() * total
    for value, w in table:
        x -= w
        if x < 0:
            return value
    return table[-1][0]


def _new_job(name: str, arrival: int, mix: JobMix, rng: random.Random) -> ScheduledJob:
    return ScheduledJob(
        name=name,
        size=int(_draw(rng, mix.sizes)),
        duration=int(_draw(rng, mix.durations)),
        pattern=str(_draw(rng, mix.patterns)),
        load=float(_draw(rng, mix.loads)),
        arrival=arrival,
    )


def _open_arrivals(arrivals: ArrivalSpec, horizon: int, rng: random.Random) -> list[int]:
    """Arrival cycles for the open (poisson / trace) processes."""
    if arrivals.kind == "trace":
        out, t = [], 0
        for gap in arrivals.interarrivals:
            t += gap
            if t >= horizon:
                break
            out.append(t)
        return out
    out, t = [], 0.0
    for _ in range(arrivals.jobs):
        t += rng.expovariate(arrivals.rate)
        if t >= horizon:
            break
        out.append(int(t))
    return out


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
@dataclass
class CompiledScenario:
    """The deterministic schedule a scenario spec expands to."""

    spec: ScenarioSpec
    jobs: list[ScheduledJob]  # arrival order, started or not
    workload: WorkloadSpec  # started jobs only, fully pinned
    utilization: list[tuple[int, int]]  # (cycle, busy nodes) steps
    mean_utilization: float  # node-cycles busy / node-cycles available
    makespan: int  # last departure (clamped to the horizon)

    @property
    def started(self) -> list[ScheduledJob]:
        return [j for j in self.jobs if j.start is not None]


def compile_scenario(spec: ScenarioSpec, topo: Dragonfly) -> CompiledScenario:
    """Run the scheduling discrete-event pass; no network involved.

    Jobs that never start before the horizon stay in the returned
    ``jobs`` list with ``start=None`` (censored: they count as queued
    forever in the fairness/slowdown picture but emit no traffic).
    """
    max_size = max(s for s, _ in spec.mix.sizes)
    if max_size > topo.num_nodes:
        raise ValueError(
            f"job size {max_size} exceeds the machine ({topo.num_nodes} nodes)"
        )
    arrival_rng = random.Random(spec.seed)
    mix_rng = random.Random(spec.seed ^ 0x51C3)
    scheduler = SCHEDULERS[spec.scheduler]()
    machine = Machine(topo, spec.placement, spec.placement_seed)
    horizon = spec.horizon

    jobs: list[ScheduledJob] = []
    queue: list[ScheduledJob] = []
    running: list[ScheduledJob] = []
    pending: list[ScheduledJob] = []  # not yet arrived, by arrival cycle
    seq = 0

    def submit(arrival: int) -> None:
        nonlocal seq
        job = _new_job(f"j{seq:04d}", arrival, spec.mix, mix_rng)
        seq += 1
        jobs.append(job)
        pending.append(job)

    if spec.arrivals.kind == "closed":
        for _ in range(spec.arrivals.jobs):
            t = int(arrival_rng.expovariate(spec.arrivals.rate))
            if t < horizon:
                submit(t)
        pending.sort(key=lambda j: (j.arrival, j.name))
    else:
        for t in _open_arrivals(spec.arrivals, horizon, arrival_rng):
            submit(t)

    while True:
        next_arrival = pending[0].arrival if pending else _INF
        next_finish = (
            min(j.finish for j in running) if running else _INF
        )
        now = min(next_arrival, next_finish)
        if now == _INF or now >= horizon:
            break
        # Departures first: freed nodes are visible to same-cycle
        # arrivals, and a closed slot resubmits the moment it finishes.
        for job in sorted(
            [j for j in running if j.finish == now],
            key=lambda j: j.name,
        ):
            running.remove(job)
            machine.release(job)
            if spec.arrivals.kind == "closed":
                gap = 1 + int(arrival_rng.expovariate(spec.arrivals.rate))
                if now + gap < horizon:
                    submit(now + gap)
                    pending.sort(key=lambda j: (j.arrival, j.name))
        while pending and pending[0].arrival == now:
            queue.append(pending.pop(0))
        running.extend(scheduler.schedule(now, queue, machine, running))

    started = [j for j in jobs if j.start is not None]
    workload_jobs = tuple(
        JobSpec(
            name=j.name,
            node_list=j.nodes,
            traffic="bernoulli",
            pattern=j.pattern,
            load=j.load,
            start=j.start,
            stop=j.finish,
        )
        for j in started
    )
    if not workload_jobs:
        raise ValueError(
            "scenario compiled to zero started jobs — raise the horizon, "
            "the arrival rate, or shrink the job sizes"
        )
    workload = WorkloadSpec(
        jobs=workload_jobs,
        placement=spec.placement,
        placement_seed=spec.placement_seed,
    )

    utilization, mean_util = _utilization(started, topo.num_nodes, horizon)
    makespan = max(min(j.finish, horizon) for j in started)
    return CompiledScenario(
        spec=spec,
        jobs=jobs,
        workload=workload,
        utilization=utilization,
        mean_utilization=mean_util,
        makespan=makespan,
    )


def _utilization(
    started: list[ScheduledJob], num_nodes: int, horizon: int
) -> tuple[list[tuple[int, int]], float]:
    """Step timeline of busy nodes (owned counts) and its time average."""
    deltas: dict[int, int] = {}
    for j in started:
        n = len(j.owned) if j.owned else len(j.nodes or ())
        deltas[j.start] = deltas.get(j.start, 0) + n
        stop = min(j.finish, horizon)
        deltas[stop] = deltas.get(stop, 0) - n
    steps: list[tuple[int, int]] = []
    busy = 0
    busy_node_cycles = 0
    prev = 0
    for cycle in sorted(deltas):
        busy_node_cycles += busy * (min(cycle, horizon) - prev)
        prev = min(cycle, horizon)
        busy += deltas[cycle]
        if not steps or steps[-1][1] != busy:
            steps.append((cycle, busy))
    busy_node_cycles += busy * (horizon - prev)
    return steps, busy_node_cycles / (num_nodes * horizon)


__all__ = [
    "CompiledScenario",
    "EasyScheduler",
    "FCFSScheduler",
    "Machine",
    "SCHEDULERS",
    "ScheduledJob",
    "Scheduler",
    "compile_scenario",
    "register_scheduler",
]
