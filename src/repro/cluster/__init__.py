"""Cluster scenarios: job churn, pluggable scheduling, faults over live runs.

The subsystem in three layers, mirroring the workload package it builds
on:

- :mod:`repro.cluster.spec` — frozen, fingerprint-bearing descriptions
  (:class:`ScenarioSpec` and friends): arrival processes, job mixes,
  fault schedules, a scheduler choice.  Pure data, lossless JSON.
- :mod:`repro.cluster.schedule` — the discrete-event scheduling pass
  (:func:`compile_scenario`): FCFS / EASY-backfill place jobs through
  the stock placement policies and compile the scenario into a pinned
  :class:`~repro.workloads.spec.WorkloadSpec`, so churn rides on the
  :class:`~repro.workloads.composite.CompositeTraffic` lifecycle.
- :mod:`repro.cluster.runner` — execution (:func:`run_scenario`):
  advances the simulator between fault/sample boundaries, measures
  per-job outcomes and fault blast radii, emits a
  :class:`ScenarioResult` through the result-store sidecar API.
"""

from repro.cluster.schedule import (
    SCHEDULERS,
    CompiledScenario,
    Scheduler,
    compile_scenario,
    register_scheduler,
)
from repro.cluster.spec import (
    ArrivalSpec,
    FaultEvent,
    FaultScheduleSpec,
    JobMix,
    ScenarioSpec,
)

# The runner pulls in the engine run layer, which itself imports
# repro.cluster.spec (RunSpec embeds a ScenarioSpec) — resolve the cycle
# by loading the execution layer on first attribute access.
_RUNNER_EXPORTS = (
    "ScenarioResult",
    "run_scenario",
    "run_scenario_cached",
    "run_scenario_with_telemetry",
)


def __getattr__(name: str):
    if name in _RUNNER_EXPORTS:
        from repro.cluster import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ArrivalSpec",
    "CompiledScenario",
    "FaultEvent",
    "FaultScheduleSpec",
    "JobMix",
    "SCHEDULERS",
    "ScenarioResult",
    "ScenarioSpec",
    "Scheduler",
    "compile_scenario",
    "register_scheduler",
    "run_scenario",
    "run_scenario_cached",
    "run_scenario_with_telemetry",
]
