"""Telemetry series export: NaN-safe JSONL and CSV.

File conventions follow :mod:`repro.analysis.store`:

- **JSONL** is the canonical on-disk form.  Line 1 is a header object
  (``format`` version, the :class:`TelemetryConfig`, ``start_cycle``,
  ``dropped``); every following line is one
  :class:`~repro.telemetry.sampler.TelemetrySample` in time order.
  NaN round-trips as ``null`` (``allow_nan=False`` on encode, exactly
  like ``LoadPoint.to_json``), keys are sorted, one object per line so
  a truncated file is detectable and every prefix is valid.
- **CSV** is a flat convenience view for spreadsheets/pandas: scalar
  columns plus per-class ``<kind>_util_{mean,max,p99}`` and
  ``<kind>_fill_{mean,max}`` columns; NaN renders as an empty cell
  (the ``LoadPoint.as_row`` convention).  Per-link detail
  (``router_util``/``group_util``) is JSONL-only.
- Writers are **atomic**: temp file in the target directory +
  ``os.replace``, so a crashed export never leaves a half-written
  series where a reader expects a whole one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.sampler import TelemetrySample, TelemetrySeries

#: Bumped when the series schema changes incompatibly.
SERIES_FORMAT = 1


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, allow_nan=False)


def to_jsonl(series: TelemetrySeries) -> str:
    """Serialize a series: header line + one line per sample."""
    lines = [_dumps({
        "format": SERIES_FORMAT,
        "kind": "telemetry-series",
        "config": series.config.to_jsonable(),
        "start_cycle": series.start_cycle,
        "dropped": series.dropped,
        "samples": len(series.samples),
    })]
    lines.extend(_dumps(s.to_jsonable()) for s in series.samples)
    return "\n".join(lines) + "\n"


def from_jsonl(text: str) -> TelemetrySeries:
    """Parse :func:`to_jsonl` output back into a series."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ValueError("empty telemetry series file")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("kind") != "telemetry-series":
        raise ValueError("not a telemetry series file (bad header line)")
    if header.get("format") != SERIES_FORMAT:
        raise ValueError(
            f"unsupported telemetry series format {header.get('format')!r} "
            f"(expected {SERIES_FORMAT})"
        )
    samples = [TelemetrySample.from_jsonable(json.loads(ln)) for ln in lines[1:]]
    declared = header.get("samples")
    if declared is not None and declared != len(samples):
        raise ValueError(
            f"truncated telemetry series: header declares {declared} samples, "
            f"file holds {len(samples)}"
        )
    return TelemetrySeries(
        config=TelemetryConfig.from_jsonable(header["config"]),
        start_cycle=header["start_cycle"],
        samples=samples,
        dropped=header.get("dropped", 0),
    )


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
_SCALARS = (
    "cycle", "window",
    "injection_backlog", "injection_backlog_max",
    "created", "injected", "ejected",
    "ring_packets", "ring_entries", "ring_moves", "bubble_stalls",
    "misroutes_local", "misroutes_global",
    "misroute_rate_local", "misroute_rate_global",
    "latency_mean", "latency_p50", "latency_p99",
)


def _cell(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN -> empty cell, as LoadPoint.as_row does
            return ""
        return f"{value:.6g}"
    return str(value)


def to_csv(series: TelemetrySeries) -> str:
    """Flat CSV view (scalars + per-class summary columns)."""
    link_kinds = sorted({k for s in series.samples for k in s.link_util})
    fill_kinds = sorted({k for s in series.samples for k in s.buffer_fill})
    header = list(_SCALARS)
    for kind in link_kinds:
        header += [f"{kind}_util_mean", f"{kind}_util_max", f"{kind}_util_p99"]
    for kind in fill_kinds:
        header += [f"{kind}_fill_mean", f"{kind}_fill_max"]
    rows = [",".join(header)]
    for s in series.samples:
        cells = [_cell(getattr(s, name)) for name in _SCALARS]
        for kind in link_kinds:
            st = s.link_util.get(kind)
            cells += ["", "", ""] if st is None else [
                _cell(st.mean), _cell(st.maximum), _cell(st.p99)
            ]
        for kind in fill_kinds:
            st = s.buffer_fill.get(kind)
            cells += ["", ""] if st is None else [_cell(st.mean), _cell(st.maximum)]
        rows.append(",".join(cells))
    return "\n".join(rows) + "\n"


# ----------------------------------------------------------------------
# Atomic file writers
# ----------------------------------------------------------------------
def _write_atomic(text: str, path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_jsonl(series: TelemetrySeries, path) -> None:
    _write_atomic(to_jsonl(series), path)


def write_csv(series: TelemetrySeries, path) -> None:
    _write_atomic(to_csv(series), path)


def read_jsonl(path) -> TelemetrySeries:
    return from_jsonl(Path(path).read_text())
