"""In-run telemetry: windowed time-series observation of a simulation.

The third observability facility of the run layer (beside the
event-level :class:`~repro.engine.tracing.Tracer` and the sweep-level
:class:`~repro.engine.tracing.SweepProgress`): a
:class:`~repro.telemetry.sampler.TelemetrySampler` attached to a
:class:`~repro.engine.simulator.Simulator` snapshots windowed link
utilization, buffer occupancy, ring pressure, misroute rates and a
latency digest every ``interval`` cycles into a bounded
:class:`~repro.telemetry.sampler.TelemetrySeries`, exported as NaN-safe
JSONL/CSV (:mod:`repro.telemetry.export`) and rendered by
:mod:`repro.analysis.heatmap`.

Zero-cost when off, perturbation-free when on — see the module
docstrings of :mod:`repro.telemetry.sampler` and
:mod:`repro.telemetry.config` for the contracts.
"""

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.export import (
    SERIES_FORMAT,
    from_jsonl,
    read_jsonl,
    to_csv,
    to_jsonl,
    write_csv,
    write_jsonl,
)
from repro.telemetry.sampler import (
    BufferStats,
    ClassStats,
    TelemetrySample,
    TelemetrySampler,
    TelemetrySeries,
)

__all__ = [
    "TelemetryConfig",
    "TelemetrySampler",
    "TelemetrySample",
    "TelemetrySeries",
    "ClassStats",
    "BufferStats",
    "SERIES_FORMAT",
    "to_jsonl",
    "from_jsonl",
    "read_jsonl",
    "to_csv",
    "write_jsonl",
    "write_csv",
]
