"""Telemetry sampling configuration.

:class:`TelemetryConfig` is deliberately dependency-free (no imports
from the engine or network layers) so that low-level modules —
:mod:`repro.engine.runspec` in particular — can reference it without
creating an import cycle.

A crucial design decision lives here, documented once: **telemetry is
an observation sidecar, not part of a simulation's identity.**  A
:class:`~repro.engine.runspec.RunSpec` carrying a ``TelemetryConfig``
describes the *same* simulation point as one without — the sampler
reads counters, it never perturbs the run — so telemetry is excluded
from ``RunSpec.to_jsonable()`` and ``RunSpec.fingerprint()``.  Cached
results stay valid whether or not telemetry was on when they were
produced.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TelemetryConfig:
    """How a :class:`~repro.telemetry.sampler.TelemetrySampler` samples.

    Parameters
    ----------
    interval:
        Cycles per sampling window.  Every ``interval`` cycles the
        sampler snapshots windowed counter deltas and instantaneous
        occupancies into one :class:`~repro.telemetry.sampler.TelemetrySample`.
    capacity:
        Ring-buffer bound on retained samples.  When a run produces
        more windows than ``capacity``, the *oldest* samples are
        dropped (and counted in ``TelemetrySeries.dropped``) — memory
        stays bounded no matter how long the run is.
    per_link:
        Record per-router / group×group utilization detail in every
        sample (what the heatmap renderers in
        :mod:`repro.analysis.heatmap` consume).  Off by default: the
        detail costs O(routers) memory per sample.
    """

    interval: int = 100
    capacity: int = 4096
    per_link: bool = False

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"telemetry interval must be >= 1, got {self.interval}")
        if self.capacity < 1:
            raise ValueError(f"telemetry capacity must be >= 1, got {self.capacity}")

    # ------------------------------------------------------------------
    # Serialization (series-file provenance headers)
    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        return {
            "interval": self.interval,
            "capacity": self.capacity,
            "per_link": self.per_link,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "TelemetryConfig":
        if not isinstance(data, dict):
            raise ValueError("TelemetryConfig JSON must be an object")
        known = {"interval", "capacity", "per_link"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown TelemetryConfig keys: {sorted(unknown)}")
        return cls(**data)
