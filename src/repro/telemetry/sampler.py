"""In-run telemetry: windowed time-series sampling of a live simulation.

The paper's central claims are *dynamic* — ADV+h funnels phits through
a handful of intermediate-group local links (§III), OFAR adapts within
cycles of a traffic switch while PB shows a visible adaptation period
(Fig. 6), the escape ring absorbs transient congestion (§IV-C) — but
end-of-run aggregates (:class:`~repro.engine.metrics.LoadPoint`,
:class:`~repro.analysis.linkstats.LinkMonitor` window diffs) can only
show their time-average.  The :class:`TelemetrySampler` watches them
happen: hooked into :meth:`Simulator.step
<repro.engine.simulator.Simulator.step>`, every ``interval`` cycles it
snapshots one :class:`TelemetrySample` of

- **windowed deltas** of per-class link utilization (diffing
  ``OutputChannel.sent_phits`` exactly the way ``LinkMonitor`` does),
  injection/ejection/misroute/ring counters, and a streaming latency
  digest (mean/p50/p99 of the packets ejected *in the window*);
- **instantaneous occupancies**: VC/buffer fill histograms per input
  class, per-node injection-queue backlog, packets currently riding an
  escape ring.

Samples live in a bounded ring buffer (oldest dropped, drop count
recorded), so memory stays constant regardless of run length.

Two contracts, both enforced by tests:

- **zero cost when off** — an unattached simulator pays exactly one
  attribute check per cycle (``if self.telemetry is not None``), no
  allocation, no call;
- **observation never perturbs** — the sampler only *reads* engine
  state (and chains the ejection hook, calling the original first); it
  touches no RNG and mutates nothing the engine reads, so a telemetered
  run is bit-for-bit identical to a plain one
  (``scripts/determinism_fingerprint.py --telemetry`` asserts this).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.engine.metrics import percentile_from_histogram
from repro.telemetry.config import TelemetryConfig
from repro.topology.dragonfly import PortKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator
    from repro.network.packet import Packet

#: Cycles per bucket of the windowed latency digest (matches
#: ``Metrics.histogram_bucket`` so percentiles are comparable).
LATENCY_BUCKET = 4

#: Bins of the buffer fill-fraction histogram ([0, 1] in equal bins).
FILL_BINS = 10


def _nan_safe(value: float) -> float | None:
    """NaN -> None (the JSON encoding convention of the result store)."""
    return None if value != value else value


def _from_nullable(value) -> float:
    return float("nan") if value is None else value


@dataclass(frozen=True)
class ClassStats:
    """Distribution summary of one link class over one window."""

    count: int
    mean: float
    maximum: float
    p99: float

    @staticmethod
    def of(values: list[float]) -> "ClassStats":
        if not values:
            return ClassStats(count=0, mean=0.0, maximum=0.0, p99=0.0)
        ordered = sorted(values)
        p99_idx = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return ClassStats(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            maximum=ordered[-1],
            p99=ordered[p99_idx],
        )

    def to_jsonable(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "max": self.maximum,
            "p99": self.p99,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "ClassStats":
        return cls(
            count=data["count"], mean=data["mean"],
            maximum=data["max"], p99=data["p99"],
        )


@dataclass(frozen=True)
class BufferStats:
    """Instantaneous fill of one input-buffer class at a sample instant."""

    count: int  # (port, VC) buffers in the class
    mean: float  # mean fill fraction
    maximum: float
    hist: tuple[int, ...]  # FILL_BINS equal fill-fraction bins over [0, 1]

    @staticmethod
    def of(fills: list[float]) -> "BufferStats":
        hist = [0] * FILL_BINS
        if not fills:
            return BufferStats(count=0, mean=0.0, maximum=0.0, hist=tuple(hist))
        for f in fills:
            hist[min(FILL_BINS - 1, int(f * FILL_BINS))] += 1
        return BufferStats(
            count=len(fills),
            mean=sum(fills) / len(fills),
            maximum=max(fills),
            hist=tuple(hist),
        )

    def to_jsonable(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "max": self.maximum,
            "hist": list(self.hist),
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "BufferStats":
        return cls(
            count=data["count"], mean=data["mean"],
            maximum=data["max"], hist=tuple(data["hist"]),
        )


@dataclass
class TelemetrySample:
    """One telemetry window: deltas over ``window`` cycles ending at
    ``cycle`` (inclusive) plus instantaneous occupancies at that instant.
    """

    cycle: int
    window: int
    # -- windowed link utilization per class ("local"/"global"/"ring") --
    link_util: dict[str, ClassStats]
    # -- instantaneous buffer fill per input class
    #    ("injection"/"local"/"global"/"ring") --
    buffer_fill: dict[str, BufferStats]
    # -- instantaneous injection-queue backlog (source-queue packets) --
    injection_backlog: int
    injection_backlog_max: int
    # -- windowed packet-flow deltas --
    created: int
    injected: int
    ejected: int
    # -- escape ring --
    ring_packets: int  # instantaneous: packets riding a ring right now
    ring_entries: int  # windowed deltas
    ring_moves: int
    bubble_stalls: int  # refused ring-entry requests (no bubble anywhere)
    # -- misrouting --
    misroutes_local: int
    misroutes_global: int
    misroute_rate_local: float  # per packet ejected in the window (NaN if none)
    misroute_rate_global: float
    # -- streaming latency digest of the window's ejections --
    latency_mean: float  # NaN when nothing was ejected in the window
    latency_p50: float
    latency_p99: float
    # -- per-link detail (``TelemetryConfig.per_link`` only) --
    router_util: dict[str, list[float]] | None = None  # kind -> util by router id
    group_util: list[list[float]] | None = None  # [src group][dst group] global util
    # -- per-job flow (multi-job workloads only; None for single-tenant
    #    runs): job index (string, JSON object keys) -> windowed ejected
    #    count and mean latency of that job's ejections --
    job_flow: dict[str, dict] | None = None

    def to_jsonable(self) -> dict:
        """Exact nested dict form; NaN encoded as ``null`` (store rules)."""
        return {
            "cycle": self.cycle,
            "window": self.window,
            "link_util": {k: v.to_jsonable() for k, v in self.link_util.items()},
            "buffer_fill": {k: v.to_jsonable() for k, v in self.buffer_fill.items()},
            "injection_backlog": self.injection_backlog,
            "injection_backlog_max": self.injection_backlog_max,
            "created": self.created,
            "injected": self.injected,
            "ejected": self.ejected,
            "ring_packets": self.ring_packets,
            "ring_entries": self.ring_entries,
            "ring_moves": self.ring_moves,
            "bubble_stalls": self.bubble_stalls,
            "misroutes_local": self.misroutes_local,
            "misroutes_global": self.misroutes_global,
            "misroute_rate_local": _nan_safe(self.misroute_rate_local),
            "misroute_rate_global": _nan_safe(self.misroute_rate_global),
            "latency_mean": _nan_safe(self.latency_mean),
            "latency_p50": _nan_safe(self.latency_p50),
            "latency_p99": _nan_safe(self.latency_p99),
            "router_util": self.router_util,
            "group_util": self.group_util,
            "job_flow": self.job_flow,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "TelemetrySample":
        if not isinstance(data, dict):
            raise ValueError("TelemetrySample JSON must be an object")
        return cls(
            cycle=data["cycle"],
            window=data["window"],
            link_util={
                k: ClassStats.from_jsonable(v) for k, v in data["link_util"].items()
            },
            buffer_fill={
                k: BufferStats.from_jsonable(v) for k, v in data["buffer_fill"].items()
            },
            injection_backlog=data["injection_backlog"],
            injection_backlog_max=data["injection_backlog_max"],
            created=data["created"],
            injected=data["injected"],
            ejected=data["ejected"],
            ring_packets=data["ring_packets"],
            ring_entries=data["ring_entries"],
            ring_moves=data["ring_moves"],
            bubble_stalls=data["bubble_stalls"],
            misroutes_local=data["misroutes_local"],
            misroutes_global=data["misroutes_global"],
            misroute_rate_local=_from_nullable(data["misroute_rate_local"]),
            misroute_rate_global=_from_nullable(data["misroute_rate_global"]),
            latency_mean=_from_nullable(data["latency_mean"]),
            latency_p50=_from_nullable(data["latency_p50"]),
            latency_p99=_from_nullable(data["latency_p99"]),
            router_util=data.get("router_util"),
            group_util=data.get("group_util"),
            job_flow=data.get("job_flow"),
        )


@dataclass
class TelemetrySeries:
    """The bounded sample series of one run, plus provenance."""

    config: TelemetryConfig
    start_cycle: int  # first cycle the first retained window covers
    samples: list[TelemetrySample] = field(default_factory=list)
    dropped: int = 0  # oldest samples evicted by the ring-buffer bound

    def series(self, value: Callable[[TelemetrySample], float]) -> list[tuple[int, float]]:
        """(cycle, value(sample)) pairs in time order."""
        return [(s.cycle, value(s)) for s in self.samples]

    def link_p99(self, kind: str = "local") -> list[tuple[int, float]]:
        """Per-window p99 utilization of one link class over time."""
        return self.series(lambda s: s.link_util[kind].p99)

    # Export (JSONL / CSV) lives in repro.telemetry.export; these are
    # convenience delegates so consumers need only the series object.
    def to_jsonl(self) -> str:
        from repro.telemetry.export import to_jsonl

        return to_jsonl(self)

    def write_jsonl(self, path) -> None:
        from repro.telemetry.export import write_jsonl

        write_jsonl(self, path)

    def to_csv(self) -> str:
        from repro.telemetry.export import to_csv

        return to_csv(self)

    def write_csv(self, path) -> None:
        from repro.telemetry.export import write_csv

        write_csv(self, path)

    @classmethod
    def from_jsonl(cls, text: str) -> "TelemetrySeries":
        from repro.telemetry.export import from_jsonl

        return from_jsonl(text)


class TelemetrySampler:
    """Windowed sampler attached to one :class:`Simulator`.

    Usage::

        sim = Simulator(config)
        sampler = TelemetrySampler(sim, TelemetryConfig(interval=100))
        sampler.attach()
        sim.run(10_000)
        series = sampler.finish()   # detaches and returns the series

    Lifecycle: :meth:`attach` registers the sampler on the simulator
    (``sim.telemetry``) and chains the network ejection hook;
    :meth:`finish` takes a final partial-window sample (if any cycles
    elapsed since the last full window), detaches, and returns the
    :class:`TelemetrySeries`.  A sampler attaches exactly once.
    """

    def __init__(self, sim: "Simulator", config: TelemetryConfig | None = None) -> None:
        self.sim = sim
        self.config = config if config is not None else TelemetryConfig()
        self.network = sim.network
        self._samples: deque[TelemetrySample] = deque(maxlen=self.config.capacity)
        self.dropped = 0
        self.start_cycle = 0
        self._attached = False
        self._finished = False
        self._orig_on_eject = None
        # Per-channel sent-phits baselines, grouped by link class; the
        # parallel ``_rids`` list drives the per-router reduction.
        self._channels: dict[str, list] = {}
        self._rids: dict[str, list[int]] = {}
        self._base: dict[str, list[int]] = {}
        self._global_groups: list[tuple[int, int]] = []
        # Windowed counter baselines and the latency digest.
        self._c0: dict[str, int] = {}
        self._w0 = 0
        self._next = 0
        self._lat_hist: dict[int, int] = {}
        self._lat_sum = 0
        self._lat_count = 0
        # Per-job windowed flow (multi-job workloads only): job index ->
        # [ejected count, latency sum].  Stays empty in single-tenant
        # runs (pkt.job < 0), so those series are byte-identical to
        # pre-workload ones.
        self._job_flow: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self) -> "TelemetrySampler":
        if self._attached or self._finished:
            raise RuntimeError("sampler already attached (one lifecycle per sampler)")
        if self.sim.telemetry is not None:
            raise RuntimeError("simulator already has a telemetry sampler attached")
        net = self.network
        for rt in net.routers:
            for ch in rt.out:
                if ch is None or ch.kind is PortKind.NODE:
                    continue
                kind = ch.kind.value
                self._channels.setdefault(kind, []).append(ch)
                self._rids.setdefault(kind, []).append(rt.rid)
                self._base.setdefault(kind, []).append(ch.sent_phits)
                if ch.kind is PortKind.GLOBAL:
                    self._global_groups.append(
                        (rt.group, net.topo.router_group(ch.dest_router))
                    )
        cycle = self.sim.cycle
        self.start_cycle = cycle
        self._w0 = cycle
        self._next = cycle + self.config.interval - 1
        self._c0 = self._counters()
        # Chain the ejection hook: the original (metrics) hook runs
        # first, untouched; the sampler only records the latency.
        self._orig_on_eject = net.on_eject
        net.on_eject = self._on_eject
        self.sim.telemetry = self
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        self.network.on_eject = self._orig_on_eject
        self._orig_on_eject = None
        self.sim.telemetry = None
        self._attached = False

    def finish(self, cycle: int | None = None) -> TelemetrySeries:
        """Final partial-window sample, detach, and build the series."""
        if not self._finished:
            if cycle is None:
                cycle = self.sim.cycle - 1  # last executed cycle
            if self._attached and cycle >= self._w0:
                self._take(cycle)
            self.detach()
            self._finished = True
        return TelemetrySeries(
            config=self.config,
            start_cycle=self.start_cycle,
            samples=list(self._samples),
            dropped=self.dropped,
        )

    def __enter__(self) -> "TelemetrySampler":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _on_eject(self, pkt: "Packet", cycle: int) -> None:
        orig = self._orig_on_eject
        if orig is not None:
            orig(pkt, cycle)
        lat = cycle - pkt.created_cycle
        bucket = lat // LATENCY_BUCKET
        self._lat_hist[bucket] = self._lat_hist.get(bucket, 0) + 1
        self._lat_sum += lat
        self._lat_count += 1
        job = pkt.job
        if job >= 0:
            acc = self._job_flow.get(job)
            if acc is None:
                self._job_flow[job] = [1, lat]
            else:
                acc[0] += 1
                acc[1] += lat

    def on_cycle(self, cycle: int) -> None:
        """Per-cycle entry point, called by ``Simulator.step`` while
        attached; takes a sample when the window closes."""
        if cycle >= self._next:
            self._take(cycle)
            self._next = cycle + self.config.interval

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _counters(self) -> dict[str, int]:
        net = self.network
        return {
            "created": self.sim.created_packets,
            "injected": net.injected_packets,
            "ejected": net.ejected_packets,
            "ring_entries": net.ring_entries,
            "ring_moves": net.ring_moves,
            "bubble_stalls": net.ring_entry_stalls,
            "misroutes_local": net.local_misroutes,
            "misroutes_global": net.global_misroutes,
        }

    def _take(self, cycle: int) -> None:
        net = self.network
        window = cycle - self._w0 + 1
        per_link = self.config.per_link
        num_routers = net.topo.num_routers

        # Windowed per-channel utilization deltas, per class.
        link_util: dict[str, ClassStats] = {}
        router_util: dict[str, list[float]] | None = {} if per_link else None
        group_util: list[list[float]] | None = None
        for kind, channels in self._channels.items():
            base = self._base[kind]
            vals = []
            for i, ch in enumerate(channels):
                sent = ch.sent_phits
                vals.append((sent - base[i]) / window)
                base[i] = sent
            link_util[kind] = ClassStats.of(vals)
            if per_link:
                sums = [0.0] * num_routers
                counts = [0] * num_routers
                for rid, v in zip(self._rids[kind], vals):
                    sums[rid] += v
                    counts[rid] += 1
                router_util[kind] = [
                    s / c if c else 0.0 for s, c in zip(sums, counts)
                ]
                if kind == PortKind.GLOBAL.value:
                    n = net.topo.num_groups
                    gsum = [[0.0] * n for _ in range(n)]
                    gcnt = [[0] * n for _ in range(n)]
                    for (sg, dg), v in zip(self._global_groups, vals):
                        gsum[sg][dg] += v
                        gcnt[sg][dg] += 1
                    group_util = [
                        [s / c if c else 0.0 for s, c in zip(srow, crow)]
                        for srow, crow in zip(gsum, gcnt)
                    ]

        # Instantaneous buffer fill per input class.
        fills: dict[str, list[float]] = {}
        node_kind = PortKind.NODE
        for rt in net.routers:
            in_kind = rt.in_kind
            for port, bufs in enumerate(rt.in_bufs):
                kind = in_kind[port]
                name = "injection" if kind is node_kind else kind.value
                acc = fills.setdefault(name, [])
                for buf in bufs:
                    acc.append(buf.occupancy / buf.capacity)
        buffer_fill = {name: BufferStats.of(vals) for name, vals in fills.items()}

        # Instantaneous injection-queue backlog.
        backlog = 0
        backlog_max = 0
        for queue in self.sim._source_queues:
            n = len(queue)
            backlog += n
            if n > backlog_max:
                backlog_max = n

        # Windowed counter deltas.
        counters = self._counters()
        delta = {k: counters[k] - self._c0[k] for k in counters}
        self._c0 = counters
        ejected = delta["ejected"]
        n = ejected if ejected > 0 else float("nan")

        # Latency digest of the window's ejections.
        if self._lat_count:
            lat_mean = self._lat_sum / self._lat_count
            lat_p50 = percentile_from_histogram(self._lat_hist, LATENCY_BUCKET, 0.5)
            lat_p99 = percentile_from_histogram(self._lat_hist, LATENCY_BUCKET, 0.99)
        else:
            lat_mean = lat_p50 = lat_p99 = float("nan")
        self._lat_hist = {}
        self._lat_sum = 0
        self._lat_count = 0

        # Per-job flow of the window's ejections (None unless a
        # multi-job generator tagged packets this window).
        job_flow = None
        if self._job_flow:
            job_flow = {
                str(j): {"ejected": c, "latency_mean": s / c}
                for j, (c, s) in sorted(self._job_flow.items())
            }
            self._job_flow = {}

        if len(self._samples) == self._samples.maxlen:
            self.dropped += 1  # deque evicts the oldest on append
        self._samples.append(TelemetrySample(
            cycle=cycle,
            window=window,
            link_util=link_util,
            buffer_fill=buffer_fill,
            injection_backlog=backlog,
            injection_backlog_max=backlog_max,
            created=delta["created"],
            injected=delta["injected"],
            ejected=ejected,
            ring_packets=net.ring_packets,
            ring_entries=delta["ring_entries"],
            ring_moves=delta["ring_moves"],
            bubble_stalls=delta["bubble_stalls"],
            misroutes_local=delta["misroutes_local"],
            misroutes_global=delta["misroutes_global"],
            misroute_rate_local=delta["misroutes_local"] / n,
            misroute_rate_global=delta["misroutes_global"] / n,
            latency_mean=lat_mean,
            latency_p50=lat_p50,
            latency_p99=lat_p99,
            router_util=router_util,
            group_util=group_util,
            job_flow=job_flow,
        ))
        self._w0 = cycle + 1
