"""Campaign execution and the ``post:`` emitter registry.

:func:`run_campaign` resolves every expanded point through the run
layer: steady grids go through an (optional)
:class:`~repro.engine.orchestrator.Orchestrator` — workers, result-store
caching, resume, retry, telemetry and mid-run checkpoints all work on
campaign points exactly as on hand-built RunSpec grids, because a
campaign point *is* a RunSpec — and transient points run the Fig. 6
pattern-switch protocol (not store-cached: a transient is a time
series, not a LoadPoint).

``post:`` hooks name figure/table emitters from :data:`EMITTERS`; each
builds one :class:`~repro.analysis.results.Table` from the finished
run, which the CLI prints and (with ``--out``) saves as CSV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.results import Series, Table, series_table
from repro.campaign.aggregate import mean_ci
from repro.campaign.spec import CampaignError, CampaignPoint, CampaignSpec
from repro.engine.orchestrator import Orchestrator, summarize
from repro.engine.runner import run_spec, run_transient


@dataclass
class CampaignRun:
    """A finished campaign: the grid, its outcomes, and run statistics.

    ``outcomes`` aligns with ``points``: a
    :class:`~repro.engine.metrics.LoadPoint` per steady point, a
    :class:`~repro.engine.runner.TransientResult` per transient point.
    ``counts`` is the orchestrator summary (done/cached/failed) — the
    resume contract surfaces here: a second run of the same campaign
    against the same store reports 100% ``cached``.
    """

    campaign: CampaignSpec
    points: list[CampaignPoint]
    outcomes: list
    counts: dict


def run_campaign(
    campaign: CampaignSpec, orchestrator: Orchestrator | None = None
) -> CampaignRun:
    """Expand and execute every point; a failed point raises.

    With no orchestrator the grid runs in-process sequentially —
    bit-identical to the legacy driver path.  With one, steady points
    get its workers/caching/retry; transient points always run
    in-process (they have no store representation).
    """
    points = campaign.expand()
    if campaign.kind == "transient":
        outcomes = [
            run_transient(
                t.config, t.before, t.after, t.load,
                warmup=t.warmup, post=t.post, bucket=t.bucket,
            )
            for t in (p.transient for p in points)
        ]
        counts = {"total": len(points), "done": len(points), "cached": 0,
                  "failed": 0, "wall_time": 0.0}
        return CampaignRun(campaign, points, outcomes, counts)

    specs = [p.spec for p in points]
    if orchestrator is None:
        outcomes = [run_spec(s) for s in specs]
        counts = {"total": len(points), "done": len(points), "cached": 0,
                  "failed": 0, "wall_time": 0.0}
        return CampaignRun(campaign, points, outcomes, counts)
    results = orchestrator.run(specs)
    counts = summarize(results)
    outcomes = [r.require() for r in results]
    return CampaignRun(campaign, points, outcomes, counts)


def run_campaign_fabric(campaign: CampaignSpec, store, **drain_options) -> CampaignRun:
    """Drain a campaign as one fabric worker; a failed point raises.

    The ``--fabric`` path: this process joins whatever fleet is draining
    ``campaign`` through the shared ``store`` (:mod:`repro.fabric`) and
    returns once *every* point is resolved — its own claims counted as
    ``done``, peers' and pre-existing results as ``cached``.  Because a
    campaign point is an ordinary RunSpec and fingerprints are executor-
    independent, the resulting store is interchangeable with a
    single-host ``campaign run`` against the same directory, and the
    emitted tables are bit-identical.

    Transient campaigns have no store representation (a transient is a
    time series, not a LoadPoint), so they cannot be fabric-drained.
    """
    if campaign.kind != "steady":
        raise CampaignError(
            "--fabric drains steady campaigns; transient campaigns have "
            "no store representation to coordinate through"
        )
    from repro.fabric import drain

    points = campaign.expand()
    results, summary = drain([p.spec for p in points], store, **drain_options)
    counts = summarize(results)
    counts["fabric"] = summary.render()
    outcomes = [r.require() for r in results]
    return CampaignRun(campaign, points, outcomes, counts)


# ----------------------------------------------------------------------
# Emitters
# ----------------------------------------------------------------------

def _grid_keys(run: CampaignRun) -> list[tuple]:
    """Coordinate tuples without the seed, in first-appearance order."""
    seen: list[tuple] = []
    for point in run.points:
        key = tuple(c for c in point.coords if c[0] != "seed")
        if key not in seen:
            seen.append(key)
    return seen


def _series_axes(campaign: CampaignSpec) -> list[str]:
    """The axes that name a curve: every multi-valued non-load axis."""
    return [
        axis for axis, values in campaign.combination.items()
        if axis != "load" and len(values) > 1
    ]


def _first_seed_series(run: CampaignRun) -> list[Series]:
    """One driver-style Series per curve, from the first seed only.

    The first seed is the campaign's base seed, so these series are the
    exact points the corresponding figure driver produces — the
    byte-identity seam the regression tests pin.
    """
    name_axes = _series_axes(run.campaign)
    base_seed = run.campaign.seeds[0]
    by_name: dict[str, Series] = {}
    for point, outcome in zip(run.points, run.outcomes):
        coords = dict(point.coords)
        if coords["seed"] != base_seed:
            continue
        name = "/".join(str(coords[a]) for a in name_axes) if name_axes \
            else str(coords["routing"])
        by_name.setdefault(name, Series(name=name)).add(outcome)
    return list(by_name.values())


def emit_table(run: CampaignRun) -> Table:
    """Every resolved point, one row each (coords + full LoadPoint row,
    or coords + transient summary for transient campaigns)."""
    table = Table(f"{run.campaign.name} — points")
    if run.campaign.kind == "transient":
        return _emit_transient(run, table)
    multi_seed = len(run.campaign.seeds) > 1
    for point, outcome in zip(run.points, run.outcomes):
        row = {k: v for k, v in point.coords if multi_seed or k != "seed"}
        row.update(outcome.as_row())
        table.add_row(row)
    return table


def _emit_transient(run: CampaignRun, table: Table) -> Table:
    """Fig. 6-shaped rows: transition, load, routing, settle summary."""
    from repro.experiments.fig6_transient import summarize as summarize_transient

    multi_seed = len(run.campaign.seeds) > 1
    for point, result in zip(run.points, run.outcomes):
        t = point.transient
        row = {
            "transition": f"{t.before}->{t.after}",
            "load": t.load,
            "routing": dict(point.coords)["routing"],
        }
        if multi_seed:
            row["seed"] = dict(point.coords)["seed"]
        row.update(summarize_transient(result))
        table.add_row(row)
    return table


def emit_aggregate(run: CampaignRun) -> Table:
    """Replication aggregation: mean ± 95% CI half-width per grid point."""
    if run.campaign.kind != "steady":
        raise CampaignError("'aggregate' is a steady-campaign emitter")
    outcome_by_coords = {p.coords: o for p, o in zip(run.points, run.outcomes)}
    table = Table(
        f"{run.campaign.name} — mean ± 95% CI over {len(run.campaign.seeds)} seed(s)"
    )
    for key in _grid_keys(run):
        sample = [
            outcome_by_coords[key + (("seed", seed),)]
            for seed in run.campaign.seeds
        ]
        thr_mean, thr_hw = mean_ci([p.throughput for p in sample])
        lat_mean, lat_hw = mean_ci([p.avg_latency for p in sample])
        p99_mean, p99_hw = mean_ci([p.p99_latency for p in sample])

        def cell(value: float, digits: int):
            return None if value != value else round(value, digits)  # NaN-safe

        row = dict(key)
        row.update({
            "n": len(sample),
            "thr_mean": cell(thr_mean, 4), "thr_ci": cell(thr_hw, 4),
            "lat_mean": cell(lat_mean, 1), "lat_ci": cell(lat_hw, 2),
            "p99_mean": cell(p99_mean, 1), "p99_ci": cell(p99_hw, 2),
        })
        table.add_row(row)
    return table


def emit_series_table(run: CampaignRun) -> Table:
    """The drivers' side-by-side curve table (first seed), e.g. Fig. 3a/3b."""
    if run.campaign.kind != "steady":
        raise CampaignError("'series_table' is a steady-campaign emitter")
    return series_table(
        f"{run.campaign.name} (h={run.campaign.scale.h}, seed {run.campaign.seeds[0]})",
        _first_seed_series(run),
    )


def emit_summary(run: CampaignRun) -> Table:
    """Per-curve saturation summary (first seed), e.g. Fig. 3's inset."""
    if run.campaign.kind != "steady":
        raise CampaignError("'summary' is a steady-campaign emitter")
    table = Table(f"{run.campaign.name} — summary")
    for series in _first_seed_series(run):
        table.add(
            series=series.name,
            saturation_thr=round(series.saturation_throughput(), 3),
            low_load_latency=round(series.points[0].avg_latency, 1),
        )
    return table


EMITTERS = {
    "table": emit_table,
    "aggregate": emit_aggregate,
    "series_table": emit_series_table,
    "summary": emit_summary,
}


def validate_post(campaign: CampaignSpec) -> None:
    """Reject unknown ``post:`` hook names (part of ``campaign validate``)."""
    unknown = [name for name in campaign.post if name not in EMITTERS]
    if unknown:
        raise CampaignError(
            f"unknown post emitters {unknown}; available: {sorted(EMITTERS)}"
        )


def emit(run: CampaignRun) -> list[tuple[str, Table]]:
    """Evaluate the campaign's ``post:`` hooks in declared order."""
    validate_post(run.campaign)
    return [(name, EMITTERS[name](run)) for name in run.campaign.post]
