"""Campaign execution and the ``post:`` emitter registry.

:func:`run_campaign` resolves every expanded point through the run
layer: steady grids go through an (optional)
:class:`~repro.engine.orchestrator.Orchestrator` — workers, result-store
caching, resume, retry, telemetry and mid-run checkpoints all work on
campaign points exactly as on hand-built RunSpec grids, because a
campaign point *is* a RunSpec — and transient points run the Fig. 6
pattern-switch protocol (not store-cached: a transient is a time
series, not a LoadPoint).

``post:`` hooks name figure/table emitters from :data:`EMITTERS`; each
builds one :class:`~repro.analysis.results.Table` from the finished
run, which the CLI prints and (with ``--out``) saves as CSV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.results import Series, Table, series_table
from repro.campaign.aggregate import mean_ci
from repro.campaign.spec import CampaignError, CampaignPoint, CampaignSpec
from repro.engine.orchestrator import Orchestrator, summarize
from repro.engine.runner import run_spec, run_transient


@dataclass
class CampaignRun:
    """A finished campaign: the grid, its outcomes, and run statistics.

    ``outcomes`` aligns with ``points``: a
    :class:`~repro.engine.metrics.LoadPoint` per steady or scenario
    point, a :class:`~repro.engine.runner.TransientResult` per transient
    point.  Scenario campaigns additionally carry the full per-point
    :class:`~repro.cluster.runner.ScenarioResult` list (job rows, blast
    radii) in ``scenario_results``, which the scenario emitters consume.
    ``counts`` is the orchestrator summary (done/cached/failed) — the
    resume contract surfaces here: a second run of the same campaign
    against the same store reports 100% ``cached``.
    """

    campaign: CampaignSpec
    points: list[CampaignPoint]
    outcomes: list
    counts: dict
    scenario_results: list | None = None


def run_campaign(
    campaign: CampaignSpec, orchestrator: Orchestrator | None = None
) -> CampaignRun:
    """Expand and execute every point; a failed point raises.

    With no orchestrator the grid runs in-process sequentially —
    bit-identical to the legacy driver path.  With one, steady points
    get its workers/caching/retry; transient points always run
    in-process (they have no store representation).
    """
    points = campaign.expand()
    if campaign.kind == "transient":
        outcomes = [
            run_transient(
                t.config, t.before, t.after, t.load,
                warmup=t.warmup, post=t.post, bucket=t.bucket,
            )
            for t in (p.transient for p in points)
        ]
        counts = {"total": len(points), "done": len(points), "cached": 0,
                  "failed": 0, "wall_time": 0.0}
        return CampaignRun(campaign, points, outcomes, counts)

    specs = [p.spec for p in points]
    if campaign.kind == "scenario":
        if orchestrator is None:
            from repro.cluster.runner import run_scenario

            scenario_results = [run_scenario(s) for s in specs]
            counts = {"total": len(points), "done": len(points), "cached": 0,
                      "failed": 0, "wall_time": 0.0}
        else:
            results = orchestrator.run(specs)
            counts = summarize(results)
            for r in results:
                r.require()
            scenario_results = _scenario_sidecars(specs, orchestrator.store)
        outcomes = [r.total for r in scenario_results]
        return CampaignRun(campaign, points, outcomes, counts, scenario_results)
    if orchestrator is None:
        outcomes = [run_spec(s) for s in specs]
        counts = {"total": len(points), "done": len(points), "cached": 0,
                  "failed": 0, "wall_time": 0.0}
        return CampaignRun(campaign, points, outcomes, counts)
    results = orchestrator.run(specs)
    counts = summarize(results)
    outcomes = [r.require() for r in results]
    return CampaignRun(campaign, points, outcomes, counts)


def _scenario_sidecars(specs, store) -> list:
    """The full ScenarioResult per spec, via the store's sidecars.

    Orchestrated and fabric-drained scenario points persist their
    ScenarioResult as a ``scenarios`` sidecar the moment they finish;
    this reads those back (recomputing in-process only if a sidecar is
    missing — e.g. a main-store cache hit that predates the sidecar).
    """
    from repro.cluster.runner import run_scenario, run_scenario_cached

    if store is None:
        return [run_scenario(s) for s in specs]
    return [run_scenario_cached(s, store) for s in specs]


def run_campaign_fabric(campaign: CampaignSpec, store, **drain_options) -> CampaignRun:
    """Drain a campaign as one fabric worker; a failed point raises.

    The ``--fabric`` path: this process joins whatever fleet is draining
    ``campaign`` through the shared ``store`` (:mod:`repro.fabric`) and
    returns once *every* point is resolved — its own claims counted as
    ``done``, peers' and pre-existing results as ``cached``.  Because a
    campaign point is an ordinary RunSpec and fingerprints are executor-
    independent, the resulting store is interchangeable with a
    single-host ``campaign run`` against the same directory, and the
    emitted tables are bit-identical.

    Transient campaigns have no store representation (a transient is a
    time series, not a LoadPoint), so they cannot be fabric-drained.
    Scenario campaigns drain like steady ones — each worker persists the
    point's full ScenarioResult as a store sidecar, which the emitters
    read back after the drain.
    """
    if campaign.kind == "transient":
        raise CampaignError(
            "--fabric drains steady and scenario campaigns; transient "
            "campaigns have no store representation to coordinate through"
        )
    from repro.fabric import drain

    points = campaign.expand()
    specs = [p.spec for p in points]
    results, summary = drain(specs, store, **drain_options)
    counts = summarize(results)
    counts["fabric"] = summary.render()
    for r in results:
        r.require()
    scenario_results = None
    if campaign.kind == "scenario":
        scenario_results = _scenario_sidecars(specs, store)
        outcomes = [r.total for r in scenario_results]
    else:
        outcomes = [r.require() for r in results]
    return CampaignRun(campaign, points, outcomes, counts, scenario_results)


# ----------------------------------------------------------------------
# Emitters
# ----------------------------------------------------------------------

def _grid_keys(run: CampaignRun) -> list[tuple]:
    """Coordinate tuples without the seed, in first-appearance order."""
    seen: list[tuple] = []
    for point in run.points:
        key = tuple(c for c in point.coords if c[0] != "seed")
        if key not in seen:
            seen.append(key)
    return seen


def _series_axes(campaign: CampaignSpec) -> list[str]:
    """The axes that name a curve: every multi-valued non-load axis."""
    return [
        axis for axis, values in campaign.combination.items()
        if axis != "load" and len(values) > 1
    ]


def _first_seed_series(run: CampaignRun) -> list[Series]:
    """One driver-style Series per curve, from the first seed only.

    The first seed is the campaign's base seed, so these series are the
    exact points the corresponding figure driver produces — the
    byte-identity seam the regression tests pin.
    """
    name_axes = _series_axes(run.campaign)
    base_seed = run.campaign.seeds[0]
    by_name: dict[str, Series] = {}
    for point, outcome in zip(run.points, run.outcomes):
        coords = dict(point.coords)
        if coords["seed"] != base_seed:
            continue
        name = "/".join(str(coords[a]) for a in name_axes) if name_axes \
            else str(coords["routing"])
        by_name.setdefault(name, Series(name=name)).add(outcome)
    return list(by_name.values())


def emit_table(run: CampaignRun) -> Table:
    """Every resolved point, one row each (coords + full LoadPoint row,
    or coords + transient summary for transient campaigns)."""
    table = Table(f"{run.campaign.name} — points")
    if run.campaign.kind == "transient":
        return _emit_transient(run, table)
    multi_seed = len(run.campaign.seeds) > 1
    for point, outcome in zip(run.points, run.outcomes):
        row = {k: v for k, v in point.coords if multi_seed or k != "seed"}
        row.update(outcome.as_row())
        table.add_row(row)
    return table


def _emit_transient(run: CampaignRun, table: Table) -> Table:
    """Fig. 6-shaped rows: transition, load, routing, settle summary."""
    from repro.experiments.fig6_transient import summarize as summarize_transient

    multi_seed = len(run.campaign.seeds) > 1
    for point, result in zip(run.points, run.outcomes):
        t = point.transient
        row = {
            "transition": f"{t.before}->{t.after}",
            "load": t.load,
            "routing": dict(point.coords)["routing"],
        }
        if multi_seed:
            row["seed"] = dict(point.coords)["seed"]
        row.update(summarize_transient(result))
        table.add_row(row)
    return table


def emit_aggregate(run: CampaignRun) -> Table:
    """Replication aggregation: mean ± 95% CI half-width per grid point."""
    if run.campaign.kind != "steady":
        raise CampaignError("'aggregate' is a steady-campaign emitter")
    outcome_by_coords = {p.coords: o for p, o in zip(run.points, run.outcomes)}
    table = Table(
        f"{run.campaign.name} — mean ± 95% CI over {len(run.campaign.seeds)} seed(s)"
    )
    for key in _grid_keys(run):
        sample = [
            outcome_by_coords[key + (("seed", seed),)]
            for seed in run.campaign.seeds
        ]
        thr_mean, thr_hw = mean_ci([p.throughput for p in sample])
        lat_mean, lat_hw = mean_ci([p.avg_latency for p in sample])
        p99_mean, p99_hw = mean_ci([p.p99_latency for p in sample])

        def cell(value: float, digits: int):
            return None if value != value else round(value, digits)  # NaN-safe

        row = dict(key)
        row.update({
            "n": len(sample),
            "thr_mean": cell(thr_mean, 4), "thr_ci": cell(thr_hw, 4),
            "lat_mean": cell(lat_mean, 1), "lat_ci": cell(lat_hw, 2),
            "p99_mean": cell(p99_mean, 1), "p99_ci": cell(p99_hw, 2),
        })
        table.add_row(row)
    return table


def emit_series_table(run: CampaignRun) -> Table:
    """The drivers' side-by-side curve table (first seed), e.g. Fig. 3a/3b."""
    if run.campaign.kind != "steady":
        raise CampaignError("'series_table' is a steady-campaign emitter")
    return series_table(
        f"{run.campaign.name} (h={run.campaign.scale.h}, seed {run.campaign.seeds[0]})",
        _first_seed_series(run),
    )


def emit_summary(run: CampaignRun) -> Table:
    """Per-curve saturation summary (first seed), e.g. Fig. 3's inset."""
    if run.campaign.kind != "steady":
        raise CampaignError("'summary' is a steady-campaign emitter")
    table = Table(f"{run.campaign.name} — summary")
    for series in _first_seed_series(run):
        table.add(
            series=series.name,
            saturation_thr=round(series.saturation_throughput(), 3),
            low_load_latency=round(series.points[0].avg_latency, 1),
        )
    return table


def _require_scenario(run: CampaignRun, emitter: str) -> list:
    if run.campaign.kind != "scenario" or run.scenario_results is None:
        raise CampaignError(f"{emitter!r} is a scenario-campaign emitter")
    return run.scenario_results


def _point_prefix(run: CampaignRun, point: CampaignPoint) -> dict:
    multi_seed = len(run.campaign.seeds) > 1
    return {k: v for k, v in point.coords if multi_seed or k != "seed"}


def emit_scenario_table(run: CampaignRun) -> Table:
    """Per-point scheduling outcomes: churn, waits, slowdowns, fairness."""
    results = _require_scenario(run, "scenario_table")
    table = Table(f"{run.campaign.name} — scenario outcomes")
    for point, res in zip(run.points, results):
        slowdowns = [j.slowdown for j in res.jobs if j.slowdown is not None]
        waits = [j.wait for j in res.jobs if j.wait is not None]
        row = _point_prefix(run, point)
        row.update({
            "jobs": len(res.jobs),
            "started": len(res.jobs) - res.queued,
            "completed": sum(1 for j in res.jobs if j.completed),
            "queued": res.queued,
            "makespan": res.makespan,
            "util": round(res.mean_utilization, 3),
            "mean_wait": round(sum(waits) / len(waits), 1) if waits else None,
            "mean_slowdown": (round(sum(slowdowns) / len(slowdowns), 3)
                              if slowdowns else None),
            "max_slowdown": round(max(slowdowns), 3) if slowdowns else None,
            "fairness": round(res.fairness, 3),
            "thr": round(res.total.throughput, 4),
            "avg_lat": round(res.total.avg_latency, 1),
        })
        table.add_row(row)
    return table


def emit_blast_radius(run: CampaignRun) -> Table:
    """One row per (point, fault): latency blast ratio across the jobs
    live at the failure — the MIN-vs-OFAR fault-resilience comparison."""
    results = _require_scenario(run, "blast_radius")
    table = Table(f"{run.campaign.name} — fault blast radius")

    def mean_of(values: list[float]):
        finite = [v for v in values if v == v]  # NaN-safe
        return round(sum(finite) / len(finite), 3) if finite else None

    for point, res in zip(run.points, results):
        by_fault: dict[tuple, list] = {}
        for b in res.blast:
            by_fault.setdefault((b.cycle, b.router, b.port), []).append(b)
        for (cycle, router, port), rows in sorted(by_fault.items()):
            row = _point_prefix(run, point)
            row.update({
                "fault_cycle": cycle,
                "router": router,
                "port": port,
                "jobs_hit": len(rows),
                "before": mean_of([b.before for b in rows]),
                "after": mean_of([b.after for b in rows]),
                "blast_ratio": mean_of([b.ratio for b in rows]),
            })
            table.add_row(row)
    return table


EMITTERS = {
    "table": emit_table,
    "aggregate": emit_aggregate,
    "series_table": emit_series_table,
    "summary": emit_summary,
    "scenario_table": emit_scenario_table,
    "blast_radius": emit_blast_radius,
}


def validate_post(campaign: CampaignSpec) -> None:
    """Reject unknown ``post:`` hook names (part of ``campaign validate``)."""
    unknown = [name for name in campaign.post if name not in EMITTERS]
    if unknown:
        raise CampaignError(
            f"unknown post emitters {unknown}; available: {sorted(EMITTERS)}"
        )


def emit(run: CampaignRun) -> list[tuple[str, Table]]:
    """Evaluate the campaign's ``post:`` hooks in declared order."""
    validate_post(run.campaign)
    return [(name, EMITTERS[name](run)) for name in run.campaign.post]
