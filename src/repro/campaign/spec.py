"""Declarative campaign specifications.

A *campaign* names a whole study — a figure grid, an ablation, a
variant sweep — in one YAML/JSON file instead of one driver
``__main__`` per figure.  The file format converges on the shape both
related simulators settled on (savannah's ``inherits:`` deep-merge,
the 6tisch simulator's ``combination``/``numRuns``/``post``):

.. code-block:: yaml

    inherits: base          # recursive deep-merge from a sibling file
    name: fig3
    scale: medium           # Scale preset: h + warm-up/measure windows
    config:                 # SimulationConfig overrides (deep-merged)
      seed: 1
    combination:            # cartesian grid, declared order preserved
      routing: [min, pb, ofar, ofar-l]
      pattern: [UN]
      load: {saturating: 0.56, points: 7}   # = Scale.loads(...)
    replications: 3         # seeds base, base+1, base+2 (or seeds: [..])
    backend: array          # engine backend (bit-identical; default object)
    max_windows: 12         # windowed convergence instead of one window
    post: [series_table, summary, aggregate]  # figure/table emitters

The load shorthand also accepts ``max_windows`` inline —
``load: {saturating: 0.56, points: 7, max_windows: 12}`` — enabling
the windowed-convergence protocol for exactly the points it generates.

:func:`load_campaign` resolves inheritance (missing bases and cycles
are hard errors) and returns a frozen :class:`CampaignSpec`;
:meth:`CampaignSpec.expand` compiles it to a deterministic list of
:class:`CampaignPoint` — declared axis order outermost-first, seeds
innermost — whose steady points are ordinary
:class:`~repro.engine.runspec.RunSpec` values.  Everything downstream
(orchestrator workers, result-store caching, resume, telemetry,
``--snapshot-every``) therefore works on campaign points unchanged,
and a campaign point is *byte-identical* to the same point run through
a figure driver: same builder, same salts, same fingerprint.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.cluster.spec import ScenarioSpec
from repro.engine.backend import default_backend
from repro.engine.config import SimulationConfig, ThresholdConfig
from repro.engine.runspec import RunSpec
from repro.experiments.common import Scale, get_scale

KINDS = ("steady", "transient", "scenario")

#: Axes with run-level (not SimulationConfig) meaning.
RUN_AXES = ("routing", "pattern", "load", "transition")

_KNOWN_KEYS = {
    "name", "description", "kind", "scale", "config", "combination",
    "seeds", "replications", "windows", "backend", "max_windows", "post",
    "scenario",
}
_WINDOW_KEYS = {"warmup", "measure", "transient_warmup", "transient_post"}

_CONFIG_FIELDS = {f.name for f in SimulationConfig.__dataclass_fields__.values()}


class CampaignError(ValueError):
    """A campaign file is malformed, unresolvable, or inconsistent."""


# ----------------------------------------------------------------------
# Loading: YAML/JSON + recursive ``inherits:`` deep-merge
# ----------------------------------------------------------------------

def deep_merge(base: dict, override: dict) -> dict:
    """Recursive dict merge: ``override`` wins, nested dicts merge.

    Non-dict values (scalars *and* lists) replace wholesale — an
    experiment file that overrides ``combination.routing`` supplies the
    complete new list, it never splices into the base's.
    """
    out = dict(base)
    for key, value in override.items():
        if isinstance(out.get(key), dict) and isinstance(value, dict):
            out[key] = deep_merge(out[key], value)
        else:
            out[key] = value
    return out


def _parse_file(path: Path) -> dict:
    text = path.read_text()
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:  # pragma: no cover - PyYAML present in dev envs
            raise CampaignError(
                f"{path}: reading YAML campaigns requires PyYAML; "
                "install it or use the JSON form"
            ) from None
        data = yaml.safe_load(text)
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"{path}: invalid JSON ({exc})") from None
    if not isinstance(data, dict):
        raise CampaignError(f"{path}: a campaign file must be a mapping")
    return data


def _resolve_inherits(parent: Path, name: str) -> Path:
    """Resolve an ``inherits:`` value relative to the inheriting file.

    A bare name (no suffix) tries ``<name>.yaml`` / ``.yml`` / ``.json``
    in the same directory, so campaigns can say ``inherits: base``.
    """
    candidate = parent / name
    if candidate.suffix:
        return candidate
    for suffix in (".yaml", ".yml", ".json"):
        trial = candidate.with_suffix(suffix)
        if trial.exists():
            return trial
    return candidate.with_suffix(".yaml")  # for the error message


def load_mapping(path: str | Path, _visiting: tuple = ()) -> dict:
    """The fully-merged raw mapping for a campaign file.

    Follows ``inherits:`` recursively (deepest base first), deep-merging
    each level's overrides on top.  A missing base file and an
    inheritance cycle are both :class:`CampaignError`.
    """
    path = Path(path).resolve()
    if path in _visiting:
        chain = " -> ".join(p.name for p in (*_visiting, path))
        raise CampaignError(f"campaign inheritance cycle: {chain}")
    if not path.is_file():
        if _visiting:
            raise CampaignError(
                f"{_visiting[-1].name}: inherited base campaign not found: {path}"
            )
        raise CampaignError(f"campaign file not found: {path}")
    data = _parse_file(path)
    inherits = data.pop("inherits", None)
    if inherits is None:
        return data
    if not isinstance(inherits, str):
        raise CampaignError(f"{path.name}: 'inherits' must be a file name")
    base_path = _resolve_inherits(path.parent, inherits)
    base = load_mapping(base_path, (*_visiting, path))
    return deep_merge(base, data)


def load_campaign(path: str | Path, scale: str | None = None) -> "CampaignSpec":
    """Load + inherit + validate a campaign file.

    ``scale`` overrides the file's scale preset (the ``--scale`` CLI
    flag), so one checked-in campaign serves every network size.
    """
    return CampaignSpec.from_mapping(load_mapping(path), scale=scale)


# ----------------------------------------------------------------------
# The compiled grid
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TransientPoint:
    """One pattern-switch measurement (Fig. 6 protocol) of a campaign."""

    config: SimulationConfig
    before: str
    after: str
    load: float
    warmup: int
    post: int
    bucket: int


@dataclass(frozen=True)
class CampaignPoint:
    """One expanded grid point: its coordinates and its executable form.

    ``coords`` lists the combination axes in declared order (pattern
    strings resolved, e.g. ``ADV+h`` -> ``ADV+3``) with the replication
    seed appended last, so expansion order and point identity are both
    readable straight off it.
    """

    coords: tuple[tuple[str, object], ...]
    replication: int
    spec: RunSpec | None = None  # steady campaigns
    transient: TransientPoint | None = None  # transient campaigns

    def label(self) -> str:
        return " ".join(f"{k}={v}" for k, v in self.coords)


def _resolve_pattern(spec: str, h: int) -> str:
    """``ADV+h`` -> ``ADV+<h>`` (the campaign-file form of Fig. 5/6's
    worst-case offset, which depends on the point's own network size)."""
    if isinstance(spec, str) and spec.endswith("+h"):
        return f"{spec[:-1]}{h}"
    return spec


@dataclass(frozen=True)
class CampaignSpec:
    """A validated, frozen campaign: grid axes, seeds, windows, hooks."""

    name: str
    scale: Scale
    kind: str = "steady"
    description: str = ""
    config: dict = field(default_factory=dict)
    combination: dict = field(default_factory=dict)
    seeds: tuple[int, ...] = (1,)
    warmup: int = 2_000
    measure: int = 2_000
    transient_warmup: int = 2_000
    transient_post: int = 2_500
    backend: str | None = None  # None = the process default backend
    max_windows: int | None = None  # windowed convergence (steady only)
    scenario: ScenarioSpec | None = None  # cluster scenario (scenario kind)
    post: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    @classmethod
    def from_mapping(cls, data: dict, scale: str | None = None) -> "CampaignSpec":
        unknown = set(data) - _KNOWN_KEYS
        if unknown:
            raise CampaignError(f"unknown campaign keys: {sorted(unknown)}")
        name = data.get("name")
        if not name or not isinstance(name, str):
            raise CampaignError("a campaign needs a 'name'")
        kind = data.get("kind", "steady")
        if kind not in KINDS:
            raise CampaignError(f"unknown campaign kind {kind!r}; choose from {KINDS}")
        try:
            scale_obj = get_scale(scale or data.get("scale", "medium"))
        except ValueError as exc:
            raise CampaignError(str(exc)) from None

        config = data.get("config", {})
        if not isinstance(config, dict):
            raise CampaignError("'config' must be a mapping of SimulationConfig overrides")
        bad = set(config) - _CONFIG_FIELDS
        if bad:
            raise CampaignError(f"unknown config overrides: {sorted(bad)}")

        combination = data.get("combination")
        if not isinstance(combination, dict) or not combination:
            raise CampaignError("a campaign needs a non-empty 'combination' grid")
        combination = {
            key: value if isinstance(value, list) else [value]
            for key, value in combination.items()
        }
        if "seed" in combination:
            raise CampaignError(
                "'seed' cannot be a combination axis; use 'seeds:' or 'replications:'"
            )
        required = {
            "transient": ("routing", "transition"),
            # A scenario campaign's traffic comes from its ScenarioSpec;
            # the grid varies routing (and config fields), never the
            # workload itself — identical churn under every routing.
            "scenario": ("routing",),
            "steady": ("routing", "pattern", "load"),
        }[kind]
        for axis in required:
            if axis not in combination:
                raise CampaignError(f"{kind} campaigns need a {axis!r} axis in 'combination'")
        for axis in combination:
            if axis in RUN_AXES:
                continue
            if axis not in _CONFIG_FIELDS:
                raise CampaignError(
                    f"unknown combination axis {axis!r}: not one of {RUN_AXES} "
                    "and not a SimulationConfig field"
                )
        if kind != "transient" and "transition" in combination:
            raise CampaignError("'transition' is a transient-campaign axis")
        if kind == "scenario":
            for axis in ("pattern", "load"):
                if axis in combination:
                    raise CampaignError(
                        f"{axis!r} is not a scenario-campaign axis: the "
                        "traffic comes from the 'scenario' job mix"
                    )
        if kind == "transient":
            for t in combination["transition"]:
                if not isinstance(t, dict) or set(t) != {"before", "after", "load"}:
                    raise CampaignError(
                        "each 'transition' must be {before, after, load}, got "
                        f"{t!r}"
                    )
        max_windows = data.get("max_windows")
        if kind == "steady" and "load" in combination:
            loads = combination["load"]
            # The dict form mirrors Scale.loads(saturating, points): the
            # drivers' default sweep reaching past saturation.  An
            # inline max_windows turns on windowed convergence for the
            # points this shorthand generates.
            if len(loads) == 1 and isinstance(loads[0], dict):
                kw = dict(loads[0])
                if not set(kw) <= {"saturating", "points", "max_windows"}:
                    raise CampaignError(
                        "load grid spec must be {saturating, points"
                        f"[, max_windows]}}, got {kw!r}"
                    )
                inline = kw.pop("max_windows", None)
                if inline is not None:
                    max_windows = inline
                combination["load"] = scale_obj.loads(**kw)
        if kind == "steady":
            for load in combination["load"]:
                if not isinstance(load, (int, float)) or isinstance(load, bool):
                    raise CampaignError(f"loads must be numbers, got {load!r}")

        seeds = data.get("seeds")
        replications = data.get("replications")
        if seeds is not None and replications is not None:
            raise CampaignError("'seeds' and 'replications' are mutually exclusive")
        base_seed = config.get("seed", 1)
        if seeds is None:
            n = 1 if replications is None else replications
            if not isinstance(n, int) or n < 1:
                raise CampaignError(f"'replications' must be a positive int, got {n!r}")
            seeds = [base_seed + i for i in range(n)]
        if (not isinstance(seeds, list) or not seeds
                or not all(isinstance(s, int) and not isinstance(s, bool) for s in seeds)):
            raise CampaignError(f"'seeds' must be a non-empty list of ints, got {seeds!r}")
        if len(set(seeds)) != len(seeds):
            raise CampaignError(f"duplicate seeds: {seeds}")

        windows = data.get("windows", {})
        if not isinstance(windows, dict) or not set(windows) <= _WINDOW_KEYS:
            raise CampaignError(f"'windows' keys must be among {sorted(_WINDOW_KEYS)}")

        scenario_data = data.get("scenario")
        scenario = None
        if kind == "scenario":
            if not isinstance(scenario_data, dict):
                raise CampaignError(
                    "scenario campaigns need a 'scenario' mapping "
                    "(ScenarioSpec JSON form)"
                )
            if windows:
                raise CampaignError(
                    "scenario campaigns run the scenario horizon; "
                    "'windows' does not apply"
                )
            try:
                scenario = ScenarioSpec.from_jsonable(scenario_data)
            except (ValueError, TypeError, KeyError) as exc:
                raise CampaignError(f"bad 'scenario' section: {exc}") from None
        elif scenario_data is not None:
            raise CampaignError("'scenario' applies to scenario campaigns only")

        if max_windows is not None:
            if kind != "steady":
                raise CampaignError(
                    "'max_windows' (windowed convergence) applies to steady "
                    "campaigns only"
                )
            if not isinstance(max_windows, int) or isinstance(max_windows, bool) \
                    or max_windows < 1:
                raise CampaignError(
                    f"'max_windows' must be a positive int, got {max_windows!r}"
                )

        backend = data.get("backend")
        if backend is not None:
            from repro.engine.backend import get_backend

            if not isinstance(backend, str):
                raise CampaignError(f"'backend' must be a backend name, got {backend!r}")
            try:
                get_backend(backend)
            except ValueError as exc:
                raise CampaignError(str(exc)) from None

        post = data.get("post", [])
        if not isinstance(post, list) or not all(isinstance(p, str) for p in post):
            raise CampaignError("'post' must be a list of emitter names")

        return cls(
            name=name,
            scale=scale_obj,
            kind=kind,
            description=data.get("description", ""),
            config=config,
            combination=combination,
            seeds=tuple(seeds),
            warmup=windows.get("warmup", scale_obj.warmup),
            measure=windows.get("measure", scale_obj.measure),
            transient_warmup=windows.get("transient_warmup", scale_obj.transient_warmup),
            transient_post=windows.get("transient_post", scale_obj.transient_post),
            backend=backend,
            max_windows=max_windows,
            scenario=scenario,
            post=tuple(post),
        )

    # ------------------------------------------------------------------
    def _config_for(self, axis_overrides: dict, seed: int) -> SimulationConfig:
        """The point config: campaign overrides < axis values < seed."""
        overrides = {**self.config, **axis_overrides}
        overrides.pop("seed", None)
        routing = overrides.pop("routing")
        thresholds = overrides.get("thresholds")
        if isinstance(thresholds, dict):
            overrides["thresholds"] = ThresholdConfig(**thresholds)
        h = overrides.pop("h", None)
        try:
            if h is not None and not self.scale.paper_params:
                return SimulationConfig.small(h=h, routing=routing, seed=seed, **overrides)
            if h is not None:
                overrides["h"] = h
            return self.scale.config(routing, seed=seed, **overrides)
        except (TypeError, ValueError) as exc:
            raise CampaignError(f"campaign {self.name!r}: bad point config: {exc}") from None

    def expand(self) -> list[CampaignPoint]:
        """The deterministic point grid.

        Ordering contract (pinned by tests, relied on by resume logs):
        axes iterate in their declared ``combination:`` order, first
        axis outermost, with the replication seeds innermost — so all
        replications of one grid coordinate are adjacent.
        """
        axes = list(self.combination.items())
        names = [name for name, _ in axes]
        points: list[CampaignPoint] = []
        for combo in itertools.product(*(values for _, values in axes)):
            named = dict(zip(names, combo))
            config_axes = {
                key: value for key, value in named.items() if key not in RUN_AXES
            }
            config_axes["routing"] = named["routing"]
            for replication, seed in enumerate(self.seeds):
                config = self._config_for(config_axes, seed)
                if self.kind == "transient":
                    t = named["transition"]
                    before = _resolve_pattern(t["before"], config.h)
                    after = _resolve_pattern(t["after"], config.h)
                    coords = tuple(
                        (k, f"{before}->{after}@{t['load']:g}" if k == "transition"
                         else named[k])
                        for k in names
                    ) + (("seed", seed),)
                    points.append(CampaignPoint(
                        coords=coords,
                        replication=replication,
                        transient=TransientPoint(
                            config=config,
                            before=before,
                            after=after,
                            load=t["load"],
                            warmup=self.transient_warmup,
                            post=self.transient_post,
                            bucket=max(10, self.transient_post // 100),
                        ),
                    ))
                elif self.kind == "scenario":
                    # The ScenarioSpec is shared by every point — same
                    # arrivals, same schedule, same faults — while the
                    # config (routing, seed, ...) varies, so the grid
                    # compares routings under *identical* churn.
                    coords = tuple(
                        (k, named[k]) for k in names
                    ) + (("seed", seed),)
                    points.append(CampaignPoint(
                        coords=coords,
                        replication=replication,
                        spec=RunSpec.for_scenario(
                            config, self.scenario,
                            backend=self.backend or default_backend(),
                        ),
                    ))
                else:
                    pattern = _resolve_pattern(named["pattern"], config.h)
                    coords = tuple(
                        (k, pattern if k == "pattern" else named[k]) for k in names
                    ) + (("seed", seed),)
                    points.append(CampaignPoint(
                        coords=coords,
                        replication=replication,
                        spec=RunSpec(
                            config, pattern, named["load"], self.warmup, self.measure,
                            max_windows=self.max_windows,
                            backend=self.backend or default_backend(),
                        ),
                    ))
        return points
