"""Replication aggregation: mean ± confidence half-width per grid point.

A campaign with N seeds produces N LoadPoints per grid coordinate;
reporting them as ``mean ± half-width`` (two-sided 95% Student-t, the
convention of the 6tisch simulator's KPI post-processing) makes the
figure grids honest about run-to-run noise without any external stats
dependency.

NaN propagates: the per-packet averages of an empty measurement window
are NaN by engine convention, and an aggregate over a window nobody
measured must not pretend otherwise.
"""

from __future__ import annotations

import math

# Two-sided 95% Student-t critical values by degrees of freedom.  Above
# 30 degrees of freedom the normal approximation (1.96) is within 1.4%
# and campaigns rarely replicate that deep.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_critical(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` >= 1."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    return _T_95.get(df, 1.960)


def mean_ci(values: list[float]) -> tuple[float, float]:
    """``(mean, 95% CI half-width)`` of a replication sample.

    A single replication has a mean but no spread estimate — its
    half-width is NaN, which the table layer renders as an empty cell
    (same NaN-honesty rule as empty-window latencies).
    """
    if not values:
        raise ValueError("cannot aggregate an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, float("nan")
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, t_critical(n - 1) * math.sqrt(variance / n)
