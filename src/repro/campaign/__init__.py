"""Declarative experiment campaigns.

One YAML/JSON file names a whole study: a base config inherited via
recursive ``inherits:`` deep-merge, a cartesian ``combination:`` grid
over routing/pattern/load/config axes, ``seeds:``/``replications:``
N-seed replication (reported as mean ± 95% CI half-width), and
``post:`` hooks naming figure/table emitters.  The file compiles to a
deterministic :class:`~repro.engine.runspec.RunSpec` grid executed by
the existing orchestrator + result store, so caching, resume,
telemetry and checkpointing work on campaigns unchanged.

See ``campaigns/`` for the checked-in paper-reproduction campaigns and
``docs/experiments-guide.md`` ("Campaigns") for the format reference.
"""

from repro.campaign.aggregate import mean_ci, t_critical
from repro.campaign.runner import (
    EMITTERS,
    CampaignRun,
    emit,
    run_campaign,
    run_campaign_fabric,
    validate_post,
)
from repro.campaign.spec import (
    CampaignError,
    CampaignPoint,
    CampaignSpec,
    TransientPoint,
    deep_merge,
    load_campaign,
    load_mapping,
)

__all__ = [
    "EMITTERS",
    "CampaignError",
    "CampaignPoint",
    "CampaignRun",
    "CampaignSpec",
    "TransientPoint",
    "deep_merge",
    "emit",
    "load_campaign",
    "load_mapping",
    "mean_ci",
    "run_campaign",
    "run_campaign_fabric",
    "t_critical",
    "validate_post",
]
