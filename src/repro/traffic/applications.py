"""Application-style traffic: stencils, shifts and permutations.

The paper's §III motivation leans on Bhatele et al. (SC 2011): real HPC
applications with near-neighbour exchanges, mapped sequentially onto a
dragonfly, load a few local links far above the rest, and randomizing
the task mapping removes the hotspot at the cost of destroying
locality.  These patterns make that scenario reproducible:

- :class:`StencilPattern` — a k-dimensional Cartesian halo exchange
  over MPI-style ranks with a pluggable task mapping (``sequential``
  keeps neighbours co-located; ``random`` is Bhatele's mitigation);
- :class:`ShiftPattern` — every node sends to ``node + k`` (a global
  cyclic shift, the classic neighbour data exchange in a 1-D
  decomposition);
- :class:`PermutationPattern` — a fixed random permutation, the
  standard "worst realistic" synthetic.

The mapping study experiment (:mod:`repro.experiments.mapping_study`)
uses these to reproduce the paper's argument that a *network-level*
solution (OFAR) beats mapping randomization because it keeps locality.
"""

from __future__ import annotations

import random

from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import TrafficPattern


def near_square_dims(n: int, k: int = 2) -> tuple[int, ...]:
    """Factor ``n`` into ``k`` near-equal dimensions (largest first).

    Raises ValueError when ``n`` has no such factorization (e.g. a
    prime for k=2 would give a degenerate 1 x n grid, which is allowed —
    only n < 1 or k < 1 are rejected).
    """
    if n < 1 or k < 1:
        raise ValueError("n and k must be >= 1")
    if k == 1:
        return (n,)
    target = n ** (1 / k)
    best = min(
        (d for d in range(1, n + 1) if n % d == 0),
        key=lambda d: abs(d - target),
    )
    rest = near_square_dims(n // best, k - 1)
    return tuple(sorted((best, *rest), reverse=True))


class StencilPattern(TrafficPattern):
    """k-D Cartesian stencil halo exchange with a task mapping.

    Rank ``r`` lives at grid coordinates given by row-major order over
    ``dims``; each packet goes to one of its ``2k`` face neighbours
    (periodic boundaries), chosen uniformly.  ``mapping`` places ranks
    on nodes:

    - ``"sequential"`` — rank ``r`` on node ``r`` (locality-preserving;
      this is the DEF mapping whose hotspots §III discusses);
    - ``"random"`` — a seeded random permutation (Bhatele's RDN-style
      mitigation: hotspots vanish, locality too).
    """

    def __init__(
        self,
        topo: Dragonfly,
        rng: random.Random,
        dims: tuple[int, ...] | None = None,
        mapping: str = "sequential",
    ) -> None:
        super().__init__(topo, rng)
        n = topo.num_nodes
        if dims is None:
            dims = near_square_dims(n, 2)
        prod = 1
        for d in dims:
            prod *= d
        if prod != n:
            raise ValueError(
                f"dims {dims} must multiply to the node count {n}, got {prod}"
            )
        self.dims = tuple(dims)
        if mapping == "sequential":
            self._rank_to_node = list(range(n))
        elif mapping == "random":
            perm = list(range(n))
            random.Random(rng.randrange(2**31)).shuffle(perm)
            self._rank_to_node = perm
        else:
            raise ValueError(f"unknown mapping {mapping!r}")
        self._node_to_rank = [0] * n
        for rank, node in enumerate(self._rank_to_node):
            self._node_to_rank[node] = rank
        self.mapping = mapping
        self.name = f"STENCIL{'x'.join(map(str, dims))}-{mapping[:3]}"
        # Row-major strides.
        strides = []
        acc = 1
        for d in reversed(self.dims):
            strides.append(acc)
            acc *= d
        self._strides = list(reversed(strides))  # strides[i] for dims[i]

    def rank_coords(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates of a rank (row-major)."""
        coords = []
        for dim, stride in zip(self.dims, self._strides):
            coords.append((rank // stride) % dim)
        return tuple(coords)

    def neighbor_rank(self, rank: int, axis: int, direction: int) -> int:
        """Rank of the +-1 neighbour along ``axis`` (periodic)."""
        dim, stride = self.dims[axis], self._strides[axis]
        coord = (rank // stride) % dim
        delta = ((coord + direction) % dim - coord) * stride
        return rank + delta

    def dest(self, src: int) -> int:
        rank = self._node_to_rank[src]
        axis = self.rng.randrange(len(self.dims))
        direction = 1 if self.rng.random() < 0.5 else -1
        nbr = self.neighbor_rank(rank, axis, direction)
        if nbr == rank:  # degenerate 1-wide dimension
            nbr = self.neighbor_rank(rank, axis, 1)
        dst = self._rank_to_node[nbr]
        if dst == src:  # 2-wide dimension wrapping onto itself
            other = self.neighbor_rank(rank, (axis + 1) % len(self.dims), 1)
            dst = self._rank_to_node[other]
        return dst if dst != src else (src + 1) % self.topo.num_nodes


class ShiftPattern(TrafficPattern):
    """Global cyclic shift: node ``i`` sends to ``i + shift`` (mod N).

    A shift equal to the nodes-per-group count reproduces ADV+1-like
    group pressure; a shift of ``p`` (nodes per router) reproduces the
    §III local-neighbour hotspot without any randomness.
    """

    def __init__(self, topo: Dragonfly, rng: random.Random, shift: int) -> None:
        super().__init__(topo, rng)
        if not 1 <= shift < topo.num_nodes:
            raise ValueError(f"shift must be in [1, {topo.num_nodes - 1}]")
        self.shift = shift
        self.name = f"SHIFT+{shift}"

    def dest(self, src: int) -> int:
        return (src + self.shift) % self.topo.num_nodes


class PermutationPattern(TrafficPattern):
    """A fixed random permutation without fixed points (derangement-ish:
    any fixed point is rotated onto its successor)."""

    def __init__(self, topo: Dragonfly, rng: random.Random, seed: int | None = None) -> None:
        super().__init__(topo, rng)
        n = topo.num_nodes
        perm_rng = random.Random(seed if seed is not None else rng.randrange(2**31))
        perm = list(range(n))
        perm_rng.shuffle(perm)
        for i in range(n):
            if perm[i] == i:
                j = (i + 1) % n
                perm[i], perm[j] = perm[j], perm[i]
        self._perm = perm
        self.name = "PERM"

    def dest(self, src: int) -> int:
        return self._perm[src]
