"""Destination patterns (§V of the paper).

A pattern maps a source node to a destination node, drawing from the
supplied RNG.  Patterns are cheap closed forms over the dragonfly's
node numbering; they never return the source itself.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.topology.dragonfly import Dragonfly


class TrafficPattern(ABC):
    """Maps source nodes to destination nodes."""

    #: Short name used in experiment tables ("UN", "ADV+2", ...).
    name: str = "?"

    def __init__(self, topo: Dragonfly, rng: random.Random) -> None:
        self.topo = topo
        self.rng = rng

    @abstractmethod
    def dest(self, src: int) -> int:
        """Destination node for a packet generated at ``src``."""


class UniformPattern(TrafficPattern):
    """UN: uniform over all nodes except the source itself.

    The paper's definition explicitly *includes* the source group (and
    the source router), only the source node is excluded.
    """

    name = "UN"

    def dest(self, src: int) -> int:
        n = self.topo.num_nodes
        # Draw from [0, n-1) and skip over src: uniform over n-1 nodes.
        d = self.rng.randrange(n - 1)
        return d + 1 if d >= src else d


class AdversarialPattern(TrafficPattern):
    """ADV+N: every node of group ``i`` targets a random node of group
    ``i + N``.

    ``ADV+1`` causes the least local-link congestion; ``ADV+n*h``
    concentrates all misrouted traffic of an intermediate group onto
    single local links (§III), which is the worst case.
    """

    def __init__(self, topo: Dragonfly, rng: random.Random, offset: int) -> None:
        super().__init__(topo, rng)
        if not 1 <= offset < topo.num_groups:
            raise ValueError(
                f"ADV offset must be in [1, {topo.num_groups - 1}], got {offset}"
            )
        self.offset = offset
        self.name = f"ADV+{offset}"
        self._nodes_per_group = topo.p * topo.a

    def dest(self, src: int) -> int:
        npg = self._nodes_per_group
        dst_group = (src // npg + self.offset) % self.topo.num_groups
        return dst_group * npg + self.rng.randrange(npg)


class AdversarialLocalPattern(TrafficPattern):
    """ADV-LOCAL: every node targets a random node of the *next router
    of its own group*.

    This is the §III motivation case for local-link saturation under
    minimal routing: all ``h`` nodes of a router compete for the single
    1-phit/cycle local link to the neighbour router, limiting minimal
    throughput to ``1/h``.
    """

    name = "ADV-LOCAL"

    def dest(self, src: int) -> int:
        topo = self.topo
        router = topo.node_router(src)
        g, r = topo.router_group(router), topo.router_index(router)
        nxt = topo.router_id(g, (r + 1) % topo.a)
        return nxt * topo.p + self.rng.randrange(topo.p)


class MixPattern(TrafficPattern):
    """Weighted mixture of patterns, chosen independently per packet.

    Used by the burst study (Fig. 7): MIX1 = 80% UN / 10% ADV+1 /
    10% ADV+h, MIX2 = 60/20/20, MIX3 = 20/40/40.
    """

    def __init__(
        self,
        topo: Dragonfly,
        rng: random.Random,
        parts: list[tuple[TrafficPattern, float]],
        name: str = "MIX",
    ) -> None:
        super().__init__(topo, rng)
        if not parts:
            raise ValueError("MixPattern needs at least one component")
        total = sum(w for _, w in parts)
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        self._patterns = [p for p, _ in parts]
        self._cum = []
        acc = 0.0
        for _, w in parts:
            acc += w / total
            self._cum.append(acc)
        self._cum[-1] = 1.0  # guard against float drift
        self.name = name

    def dest(self, src: int) -> int:
        x = self.rng.random()
        for pattern, edge in zip(self._patterns, self._cum):
            if x <= edge:
                return pattern.dest(src)
        return self._patterns[-1].dest(src)  # pragma: no cover - drift guard


def make_pattern(topo: Dragonfly, rng: random.Random, spec: str) -> TrafficPattern:
    """Build a pattern from a short spec string.

    Accepted specs: ``"UN"``, ``"ADV+<n>"``, ``"ADV-LOCAL"``,
    ``"MIX1"``, ``"MIX2"``, ``"MIX3"`` (the Fig. 7 mixes, with
    ``ADV+h`` as the adversarial component, as in the paper).
    """
    spec = spec.upper()
    if spec == "UN":
        return UniformPattern(topo, rng)
    if spec == "ADV-LOCAL":
        return AdversarialLocalPattern(topo, rng)
    if spec.startswith("ADV+"):
        return AdversarialPattern(topo, rng, int(spec[4:]))
    mixes = {"MIX1": (0.8, 0.1, 0.1), "MIX2": (0.6, 0.2, 0.2), "MIX3": (0.2, 0.4, 0.4)}
    if spec in mixes:
        w_un, w_adv1, w_advh = mixes[spec]
        return MixPattern(
            topo,
            rng,
            [
                (UniformPattern(topo, rng), w_un),
                (AdversarialPattern(topo, rng, 1), w_adv1),
                (AdversarialPattern(topo, rng, topo.h), w_advh),
            ],
            name=spec,
        )
    raise ValueError(f"unknown traffic pattern spec {spec!r}")
