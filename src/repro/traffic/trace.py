"""Trace-driven workloads: record, save, load and replay packet traces.

The paper's motivation leans on trace-driven studies (Bhatele et al.
replay application traces on a simulated dragonfly).  We cannot ship
proprietary application traces, but we provide the full machinery so a
user can bring their own — or synthesize one:

- :class:`TraceRecorder` wraps any generator and records every
  (cycle, src, dst) it emits;
- :func:`save_trace` / :func:`load_trace` use a trivial CSV format
  (``cycle,src,dst`` with a one-line header) that external tools can
  produce;
- :class:`TraceTraffic` replays a trace, optionally time-scaled or
  looped — replaying the same trace under different routings is the
  trace-driven analogue of the paper's steady-state comparisons;
- :func:`synthesize_phases` builds an application-like trace from
  (pattern, load, duration) phases (e.g. compute/exchange cycles of a
  BSP code).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable

from repro.traffic.generators import BernoulliTraffic, TrafficGenerator
from repro.traffic.patterns import TrafficPattern


@dataclass(frozen=True)
class TraceEvent:
    """One packet creation event."""

    cycle: int
    src: int
    dst: int


def save_trace(events: Iterable[TraceEvent], path: str) -> None:
    """Write a trace as ``cycle,src,dst`` CSV."""
    with open(path, "w") as f:
        f.write("cycle,src,dst\n")
        for ev in events:
            f.write(f"{ev.cycle},{ev.src},{ev.dst}\n")


def load_trace(path: str) -> list[TraceEvent]:
    """Read a trace written by :func:`save_trace` (or external tools)."""
    with open(path) as f:
        return parse_trace(f)


def parse_trace(lines: Iterable[str]) -> list[TraceEvent]:
    """Parse trace CSV lines (header optional); validates monotonicity."""
    events: list[TraceEvent] = []
    last_cycle = -1
    for i, line in enumerate(lines):
        line = line.strip()
        if not line or (i == 0 and line.lower().startswith("cycle")):
            continue
        parts = line.split(",")
        if len(parts) != 3:
            raise ValueError(f"bad trace line {i + 1}: {line!r}")
        cycle, src, dst = (int(x) for x in parts)
        if cycle < last_cycle:
            raise ValueError(f"trace not sorted by cycle at line {i + 1}")
        if src == dst:
            raise ValueError(f"self-addressed packet at line {i + 1}")
        last_cycle = cycle
        events.append(TraceEvent(cycle, src, dst))
    return events


class TraceRecorder(TrafficGenerator):
    """Pass-through wrapper that records everything a generator emits."""

    def __init__(self, inner: TrafficGenerator) -> None:
        self.inner = inner
        self.events: list[TraceEvent] = []

    def packets_for_cycle(self, cycle: int):
        out = list(self.inner.packets_for_cycle(cycle))
        for src, dst in out:
            self.events.append(TraceEvent(cycle, src, dst))
        return out

    def finished(self, cycle: int) -> bool:
        return self.inner.finished(cycle)

    def to_csv(self) -> str:
        buf = io.StringIO()
        buf.write("cycle,src,dst\n")
        for ev in self.events:
            buf.write(f"{ev.cycle},{ev.src},{ev.dst}\n")
        return buf.getvalue()


class TraceTraffic(TrafficGenerator):
    """Replay a recorded trace.

    ``time_scale`` stretches (>1) or compresses (<1) inter-event time;
    ``loop`` repeats the trace, shifting cycles by its span each pass
    (useful to turn a short trace into a steady workload).
    """

    def __init__(
        self,
        events: list[TraceEvent],
        time_scale: float = 1.0,
        loop: int = 1,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if loop < 1:
            raise ValueError("loop must be >= 1")
        base = sorted(events, key=lambda e: e.cycle)
        span = (base[-1].cycle + 1) if base else 0
        self._schedule: dict[int, list[tuple[int, int]]] = {}
        self._last_cycle = -1
        for pass_idx in range(loop):
            offset = pass_idx * span
            for ev in base:
                cyc = int(round((ev.cycle + offset) * time_scale))
                self._schedule.setdefault(cyc, []).append((ev.src, ev.dst))
                if cyc > self._last_cycle:
                    self._last_cycle = cyc
        self.total_events = len(base) * loop

    def packets_for_cycle(self, cycle: int):
        return self._schedule.get(cycle, ())

    def finished(self, cycle: int) -> bool:
        return cycle > self._last_cycle


def synthesize_phases(
    phases: list[tuple[TrafficPattern, float, int]],
    packet_size: int,
    num_nodes: int,
    seed: int,
) -> list[TraceEvent]:
    """Build a trace from (pattern, load, duration-cycles) phases.

    Models the alternating compute/communicate structure of BSP
    applications: e.g. ``[(stencil, 0.4, 2000), (none, 0.0, 1000), ...]``.
    """
    events: list[TraceEvent] = []
    start = 0
    for i, (pattern, load, duration) in enumerate(phases):
        if duration <= 0:
            raise ValueError("phase duration must be positive")
        gen = BernoulliTraffic(pattern, load, packet_size, num_nodes, seed + i)
        for cycle in range(duration):
            for src, dst in gen.packets_for_cycle(cycle):
                events.append(TraceEvent(start + cycle, src, dst))
        start += duration
    return events
