"""Synthetic traffic: destination patterns and injection processes.

Patterns (§V): uniform random (*UN*), adversarial (*ADV+N*: every node
of group ``i`` targets a random node of group ``i+N``), the local
adversarial pattern of §III (every node targets the next router of its
own group), and weighted mixes (*MIX1/2/3* of the burst study).

Injection processes: Bernoulli steady traffic at a controlled load,
transient pattern switches, and fixed-size bursts.
"""

from repro.traffic.patterns import (
    TrafficPattern,
    UniformPattern,
    AdversarialPattern,
    AdversarialLocalPattern,
    MixPattern,
    make_pattern,
)
from repro.traffic.generators import (
    TrafficGenerator,
    BernoulliTraffic,
    TransientTraffic,
    BurstTraffic,
)
from repro.traffic.applications import (
    StencilPattern,
    ShiftPattern,
    PermutationPattern,
    near_square_dims,
)
from repro.traffic.trace import (
    TraceEvent,
    TraceRecorder,
    TraceTraffic,
    load_trace,
    save_trace,
    synthesize_phases,
)

__all__ = [
    "StencilPattern",
    "ShiftPattern",
    "PermutationPattern",
    "near_square_dims",
    "TraceEvent",
    "TraceRecorder",
    "TraceTraffic",
    "load_trace",
    "save_trace",
    "synthesize_phases",
    "TrafficPattern",
    "UniformPattern",
    "AdversarialPattern",
    "AdversarialLocalPattern",
    "MixPattern",
    "make_pattern",
    "TrafficGenerator",
    "BernoulliTraffic",
    "TransientTraffic",
    "BurstTraffic",
]
