"""Injection processes.

A generator answers, per cycle, which (source, destination) pairs are
*created*; the simulator turns them into packets queued at the source
node.  Nodes inject from their source queue into the router as fast as
the injection link (1 phit/cycle) and buffer space allow, so offered
load beyond saturation accumulates in the source queues, producing the
classic latency hockey-stick while throughput keeps reporting the
*accepted* rate.

- :class:`BernoulliTraffic` — each node generates a packet per cycle
  with probability ``load / packet_size`` (load in phits/(node·cycle)),
  exactly the paper's Bernoulli process (§V);
- :class:`TransientTraffic` — Bernoulli with a destination pattern that
  switches at given cycles (Fig. 6);
- :class:`BurstTraffic` — every node starts with a fixed backlog and
  injects it as fast as possible (Fig. 7).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np

from repro.traffic.patterns import TrafficPattern


class TrafficGenerator(ABC):
    """Per-cycle packet creation process."""

    #: Multi-job protocol flag: when True, :meth:`packets_for_cycle`
    #: yields (source, destination, job index) triples instead of pairs
    #: and the simulator tags each packet with its job id.  Only
    #: :class:`~repro.workloads.composite.CompositeTraffic` sets this.
    emits_jobs: bool = False

    @abstractmethod
    def packets_for_cycle(self, cycle: int) -> Iterable[tuple[int, int]]:
        """(source node, destination node) pairs created this cycle."""

    def finished(self, cycle: int) -> bool:
        """True when the generator will never create packets again.

        The contract drain loops rely on (``Simulator.run_until_drained``
        and composite-workload lifecycles): once this returns True for
        some cycle it must stay True for every later cycle, and a
        finished generator must never emit another packet.  Generators
        with a finite backlog (:class:`BurstTraffic`) must flip to True
        as soon as the backlog has been handed to the simulator.
        """
        return False


class BernoulliTraffic(TrafficGenerator):
    """Independent Bernoulli injection at a fixed offered load."""

    def __init__(
        self,
        pattern: TrafficPattern,
        load: float,
        packet_size: int,
        num_nodes: int,
        seed: int,
    ) -> None:
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1] phits/(node*cycle), got {load}")
        self.pattern = pattern
        self.load = load
        self.prob = load / packet_size
        self.num_nodes = num_nodes
        self._np_rng = np.random.default_rng(seed)

    def packets_for_cycle(self, cycle: int) -> Iterable[tuple[int, int]]:
        if self.prob <= 0.0:
            return ()
        hits = np.flatnonzero(self._np_rng.random(self.num_nodes) < self.prob)
        dest = self.pattern.dest
        return [(int(src), dest(int(src))) for src in hits]


class TransientTraffic(TrafficGenerator):
    """Bernoulli traffic whose pattern switches at fixed cycles.

    ``phases`` is a list of ``(start_cycle, pattern)`` with strictly
    increasing start cycles; the first phase must start at 0.
    """

    def __init__(
        self,
        phases: list[tuple[int, TrafficPattern]],
        load: float,
        packet_size: int,
        num_nodes: int,
        seed: int,
    ) -> None:
        if not phases or phases[0][0] != 0:
            raise ValueError("phases must start at cycle 0")
        starts = [s for s, _ in phases]
        if starts != sorted(set(starts)):
            raise ValueError("phase start cycles must be strictly increasing")
        self.phases = phases
        self._bernoulli = BernoulliTraffic(
            phases[0][1], load, packet_size, num_nodes, seed
        )

    def pattern_at(self, cycle: int) -> TrafficPattern:
        """Active pattern at ``cycle``."""
        current = self.phases[0][1]
        for start, pattern in self.phases:
            if cycle >= start:
                current = pattern
            else:
                break
        return current

    def packets_for_cycle(self, cycle: int) -> Iterable[tuple[int, int]]:
        self._bernoulli.pattern = self.pattern_at(cycle)
        return self._bernoulli.packets_for_cycle(cycle)


class BurstTraffic(TrafficGenerator):
    """Every node creates ``packets_per_node`` packets at cycle 0.

    Models the post-barrier traffic bursts of Fig. 7: all nodes push a
    fixed backlog as fast as the network accepts it; the figure of
    merit is the cycle at which the last packet is consumed.
    """

    def __init__(self, pattern: TrafficPattern, packets_per_node: int, num_nodes: int) -> None:
        if packets_per_node < 1:
            raise ValueError("packets_per_node must be >= 1")
        self.pattern = pattern
        self.packets_per_node = packets_per_node
        self.num_nodes = num_nodes
        self._emitted = False

    @property
    def total_packets(self) -> int:
        """Total packets of the burst."""
        return self.packets_per_node * self.num_nodes

    def packets_for_cycle(self, cycle: int) -> Iterable[tuple[int, int]]:
        if self._emitted:
            return ()
        self._emitted = True
        dest = self.pattern.dest
        return [
            (src, dest(src))
            for src in range(self.num_nodes)
            for _ in range(self.packets_per_node)
        ]

    def finished(self, cycle: int) -> bool:
        return self._emitted
