"""Fault-tolerant, cache-aware execution of simulation-point grids.

Every figure in the evaluation is a grid of independent steady-state
points (:class:`~repro.engine.runspec.RunSpec`).  The orchestrator runs
an arbitrary grid with the properties a long sweep needs:

- **caching / resume** — with a :class:`~repro.analysis.store.ResultStore`
  attached, every completed point is persisted atomically under the
  spec's content fingerprint the moment it finishes.  Re-running the
  same (or an overlapping) grid serves those points from disk,
  bit-identical to a fresh run, so a killed sweep resumes at the first
  missing point with no separate checkpoint machinery.
- **fault isolation** — each point runs in its own worker process; a
  worker that raises, is OOM-killed, or exceeds the per-point timeout
  costs one attempt.  After ``retries`` extra attempts the point is
  *recorded* as failed and the rest of the grid completes; a poisoned
  point is never fatal to the sweep.
- **observability** — after every resolved point the orchestrator emits
  a :class:`~repro.engine.tracing.SweepProgress` snapshot
  (done/cached/failed, rate, ETA, per-point wall time) to the installed
  observer.  With a ``telemetry`` config, points additionally record an
  in-run time series (:mod:`repro.telemetry`) persisted next to the
  store under the same fingerprint.

``workers=0`` runs points in-process (no subprocess, no crash
protection) — exactly the legacy sequential runner, and the mode the
thin :func:`~repro.engine.runner.run_load_sweep` wrapper uses.
Results are deterministic in the specs alone: execution order, worker
count, retries and cache hits cannot change a LoadPoint.
"""

from __future__ import annotations

import functools
import multiprocessing as mp
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from pathlib import Path
from typing import Callable

from repro.analysis.store import ResultStore
from repro.engine.metrics import LoadPoint
from repro.engine.parallel import default_workers
from repro.engine.runner import run_spec
from repro.engine.runspec import RunSpec
from repro.engine.tracing import ProgressObserver, SweepProgress

STATUS_DONE = "done"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"

# How often the pool loop wakes to check per-point deadlines.
_POLL_SECONDS = 0.05


class OrchestratorError(RuntimeError):
    """A grid point failed and the caller asked for strict results."""


@dataclass
class PointResult:
    """Outcome of one grid point."""

    spec: RunSpec
    status: str  # done | cached | failed
    point: LoadPoint | None = None
    error: str | None = None  # traceback / reason when failed
    attempts: int = 1  # execution attempts (0 for cache hits)
    wall_time: float = 0.0  # seconds spent on the resolving attempt
    # Original exception object, only available from in-process (workers=0)
    # execution; lets strict callers re-raise the real error type.
    exception: BaseException | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.status != STATUS_FAILED

    def require(self) -> LoadPoint:
        """The point, or the original failure re-raised."""
        if self.point is not None:
            return self.point
        if self.exception is not None:
            raise self.exception
        raise OrchestratorError(
            f"point {self.spec.label()} failed after {self.attempts} attempt(s):\n"
            f"{self.error}"
        )


def _execute_spec(spec: RunSpec) -> LoadPoint:
    """Default worker: the canonical steady-state runner."""
    return run_spec(spec)


def _execute_spec_telemetry(
    telemetry_dir: str | None, telemetry, store_root: str | None, spec: RunSpec
) -> LoadPoint:
    """Default worker with telemetry: run the point, persist its series.

    Module-level + bound via ``functools.partial`` so it pickles into
    worker processes.  The effective sampling config is the spec's own
    ``telemetry`` field, else the orchestrator-wide one; with neither
    this is exactly :func:`_execute_spec`.  The series lands at
    ``<telemetry_dir>/<fp[:2]>/<fp>.jsonl`` — the result store's layout
    and atomicity conventions, keyed by the same fingerprint as the
    point's store entry.  The returned LoadPoint is bit-identical to an
    untelemetered run (observation never perturbs), which is why the
    series file can ride alongside the cache without forking its keys.

    Multi-job specs (``spec.workload``) run through the workload runner
    so the per-job breakdown is not lost: with a store attached
    (``store_root``), the full WorkloadResult is persisted as a
    ``workloads`` sidecar under the same fingerprint, and the returned
    LoadPoint is the run's global summary (which the parent writes to
    the main store as usual).
    """
    cfg = spec.telemetry if spec.telemetry is not None else telemetry
    if spec.scenario is not None:
        from repro.cluster.runner import (
            run_scenario,
            run_scenario_with_telemetry,
        )

        if cfg is None:
            result, series = run_scenario(spec), None
        else:
            result, series = run_scenario_with_telemetry(spec, cfg)
        if store_root is not None:
            from repro.analysis.store import ResultStore
            from repro.cluster.runner import SIDECAR_KIND

            ResultStore(store_root).put_sidecar(
                SIDECAR_KIND, spec, result.to_jsonable()
            )
        if telemetry_dir is not None and series is not None:
            from repro.telemetry.export import write_jsonl

            fp = spec.fingerprint()
            write_jsonl(series, Path(telemetry_dir) / fp[:2] / f"{fp}.jsonl")
        return result.total
    if spec.workload is not None:
        from repro.workloads.runner import run_workload, run_workload_with_telemetry

        if cfg is None:
            result, series = run_workload(spec), None
        else:
            result, series = run_workload_with_telemetry(spec, cfg)
        if store_root is not None:
            from repro.analysis.store import ResultStore
            from repro.workloads.runner import SIDECAR_KIND

            ResultStore(store_root).put_sidecar(
                SIDECAR_KIND, spec, result.to_jsonable()
            )
        if telemetry_dir is not None and series is not None:
            from repro.telemetry.export import write_jsonl

            fp = spec.fingerprint()
            write_jsonl(series, Path(telemetry_dir) / fp[:2] / f"{fp}.jsonl")
        return result.total
    if cfg is None:
        return run_spec(spec)
    from repro.engine.runner import run_spec_with_telemetry
    from repro.telemetry.export import write_jsonl

    point, series = run_spec_with_telemetry(spec, cfg)
    if telemetry_dir is not None and series is not None:
        fp = spec.fingerprint()
        write_jsonl(series, Path(telemetry_dir) / fp[:2] / f"{fp}.jsonl")
    return point


def _execute_spec_checkpointed(
    store_root: str, snapshot_every: int, telemetry_dir: str | None,
    telemetry, spec: RunSpec, should_stop=None,
) -> LoadPoint:
    """Default worker with mid-run checkpointing (``snapshot_every``).

    Runs the point through :func:`repro.snapshot.checkpoint.
    run_spec_checkpointed`: the full simulator state is saved into the
    store every N cycles, and a worker that re-attempts the point (after
    a crash, a SIGKILL, or an orchestrator retry) resumes from the last
    checkpoint instead of cycle 0 — with a bit-identical final result
    either way.  Same telemetry and workload/scenario-sidecar behavior
    as :func:`_execute_spec_telemetry`.  ``should_stop`` is the graceful
    preemption hook (see the fabric worker's SIGTERM handling): polled
    at segment boundaries, it checkpoints and raises
    :class:`~repro.snapshot.checkpoint.Preempted` instead of finishing.
    """
    from repro.snapshot.checkpoint import run_spec_checkpointed

    return run_spec_checkpointed(
        spec, store_root, snapshot_every,
        telemetry=telemetry, telemetry_dir=telemetry_dir,
        should_stop=should_stop,
    )


def _child_main(conn, worker, spec) -> None:
    """Subprocess body: run one point, ship the result or the traceback."""
    try:
        point = worker(spec)
        conn.send(("ok", point))
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


@dataclass
class _Job:
    """One in-flight worker process."""

    index: int
    spec: RunSpec
    attempt: int
    proc: mp.Process
    conn: object  # parent end of the result pipe
    started: float


class Orchestrator:
    """Run grids of :class:`RunSpec` points; see the module docstring.

    Parameters
    ----------
    workers:
        Worker processes.  ``0`` = in-process sequential (legacy exact
        mode, no fault isolation); ``None`` = half the available CPUs.
    store:
        Optional :class:`ResultStore` for caching/resume.  Completed
        points are written through immediately; with ``use_cache`` they
        are also read back as cache hits.
    use_cache:
        Read existing store entries (True) or recompute everything and
        overwrite (False, the ``--no-cache`` path).
    retries:
        Extra attempts after a failed/crashed/timed-out attempt.
    timeout:
        Per-point wall-clock limit in seconds (process mode only; a
        stuck worker is killed and the attempt counted as failed).
    observer:
        Progress callback; see :class:`~repro.engine.tracing.SweepProgress`.
    worker:
        The per-point callable ``(RunSpec) -> LoadPoint``.  Must be a
        module-level (picklable) function; the default is the real
        runner.  Overriding it is the fault-injection hook the failure
        tests use.
    telemetry:
        Optional :class:`~repro.telemetry.config.TelemetryConfig`
        applied to every point that does not carry its own
        ``spec.telemetry``.  Points with an effective config run through
        :func:`~repro.engine.runner.run_spec_with_telemetry` and their
        series are persisted under ``telemetry_dir`` (same
        ``<fp[:2]>/<fp>`` layout and atomic writes as the result store,
        ``.jsonl`` suffix).  LoadPoints — and therefore store entries
        and fingerprints — are unchanged.  Cache *hits* skip execution,
        so they never (re)generate series files; use ``use_cache=False``
        to re-observe already-stored points.  Ignored when a custom
        ``worker`` is installed.
    telemetry_dir:
        Where series files go; defaults to ``<store>/telemetry`` when a
        store is attached.  With neither, series are computed and
        dropped (the LoadPoint still comes back).
    """

    def __init__(
        self,
        workers: int | None = None,
        store: ResultStore | None = None,
        use_cache: bool = True,
        retries: int = 1,
        timeout: float | None = None,
        observer: ProgressObserver | None = None,
        worker: Callable[[RunSpec], LoadPoint] = _execute_spec,
        telemetry=None,
        telemetry_dir: str | Path | None = None,
        snapshot_every: int | None = None,
    ) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        if snapshot_every is not None:
            if snapshot_every < 1:
                raise ValueError("snapshot_every must be >= 1")
            if store is None:
                raise ValueError("snapshot_every needs a store to hold "
                                 "the checkpoints")
        self.workers = workers
        self.store = store
        self.use_cache = use_cache
        self.retries = retries
        self.timeout = timeout
        self.observer = observer
        if telemetry_dir is None and store is not None:
            telemetry_dir = store.root / "telemetry"
        self.telemetry = telemetry
        self.telemetry_dir = Path(telemetry_dir) if telemetry_dir is not None else None
        self.snapshot_every = snapshot_every
        if worker is _execute_spec:
            # The default worker honors telemetry (orchestrator-wide or
            # per-spec) and workload sidecars; the partial binds plain
            # strings so it pickles into worker processes.  With
            # ``snapshot_every`` it additionally checkpoints mid-run into
            # the store and resumes from the last checkpoint on retry.
            tdir = str(self.telemetry_dir) if self.telemetry_dir is not None else None
            if snapshot_every is not None:
                worker = functools.partial(
                    _execute_spec_checkpointed,
                    str(store.root), snapshot_every, tdir, telemetry,
                )
            else:
                worker = functools.partial(
                    _execute_spec_telemetry,
                    tdir,
                    telemetry,
                    str(store.root) if store is not None else None,
                )
        self.worker = worker

    # ------------------------------------------------------------------
    def run(self, specs: list[RunSpec]) -> list[PointResult]:
        """Resolve every point; results come back in spec order."""
        started = time.monotonic()
        results: list[PointResult | None] = [None] * len(specs)
        pending: deque[tuple[int, int]] = deque()  # (spec index, attempt no.)

        for i, spec in enumerate(specs):
            cached = self._try_cache(spec)
            if cached is not None:
                results[i] = cached
                self._emit(results, len(specs), started, cached)
            else:
                pending.append((i, 1))

        if pending:
            if self.workers == 0:
                self._run_inline(specs, pending, results, started)
            else:
                self._run_pool(specs, pending, results, started)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def run_points(self, specs: list[RunSpec]) -> list[LoadPoint]:
        """Strict variant: the LoadPoints, or the first failure raised."""
        return [r.require() for r in self.run(specs)]

    # ------------------------------------------------------------------
    def _try_cache(self, spec: RunSpec) -> PointResult | None:
        if self.store is None or not self.use_cache:
            return None
        t0 = time.monotonic()
        point = self.store.get(spec)
        if point is None:
            return None
        return PointResult(
            spec, STATUS_CACHED, point, attempts=0,
            wall_time=time.monotonic() - t0,
        )

    def _emit(self, results, total: int, started: float, last: PointResult) -> None:
        if self.observer is None:
            return
        done = sum(1 for r in results if r is not None and r.status == STATUS_DONE)
        cached = sum(1 for r in results if r is not None and r.status == STATUS_CACHED)
        failed = sum(1 for r in results if r is not None and r.status == STATUS_FAILED)
        self.observer(SweepProgress(
            total=total,
            done=done,
            cached=cached,
            failed=failed,
            elapsed=time.monotonic() - started,
            last_label=last.spec.label(),
            last_status=last.status,
            last_wall_time=last.wall_time,
        ))

    def _record(self, results, index: int, result: PointResult,
                total: int, started: float) -> None:
        if result.status == STATUS_DONE and self.store is not None:
            self.store.put(result.spec, result.point, wall_time=result.wall_time)
        elif result.status == STATUS_FAILED and self.snapshot_every is not None:
            # A point that exhausted its retry budget will never resume:
            # its mid-run checkpoint is dead weight, not a resume seam.
            # (run_spec_checkpointed only clears on success.)
            from repro.snapshot.checkpoint import clear_checkpoint

            clear_checkpoint(self.store.root, result.spec)
        results[index] = result
        self._emit(results, total, started, result)

    # ------------------------------------------------------------------
    # In-process mode (workers=0): sequential, no fault isolation
    # ------------------------------------------------------------------
    def _run_inline(self, specs, pending, results, started) -> None:
        total = len(specs)
        while pending:
            index, attempt = pending.popleft()
            spec = specs[index]
            t0 = time.monotonic()
            try:
                point = self.worker(spec)
            except Exception as exc:
                if attempt <= self.retries:
                    pending.append((index, attempt + 1))
                    continue
                self._record(results, index, PointResult(
                    spec, STATUS_FAILED, error=traceback.format_exc(),
                    exception=exc, attempts=attempt,
                    wall_time=time.monotonic() - t0,
                ), total, started)
                continue
            self._record(results, index, PointResult(
                spec, STATUS_DONE, point, attempts=attempt,
                wall_time=time.monotonic() - t0,
            ), total, started)

    # ------------------------------------------------------------------
    # Process-pool mode: one process per point attempt
    # ------------------------------------------------------------------
    def _run_pool(self, specs, pending, results, started) -> None:
        total = len(specs)
        inflight: dict[object, _Job] = {}  # conn -> job
        try:
            while pending or inflight:
                while pending and len(inflight) < self.workers:
                    index, attempt = pending.popleft()
                    job = self._spawn(index, specs[index], attempt)
                    inflight[job.conn] = job

                poll = _POLL_SECONDS if self.timeout is not None else 1.0
                ready = _wait_connections(list(inflight), timeout=poll)
                for conn in ready:
                    job = inflight.pop(conn)
                    self._resolve(job, pending, results, total, started)

                if self.timeout is not None:
                    now = time.monotonic()
                    for conn, job in list(inflight.items()):
                        if now - job.started > self.timeout:
                            inflight.pop(conn)
                            self._kill(job)
                            self._attempt_failed(
                                job,
                                f"timed out after {self.timeout:g}s (worker killed)",
                                pending, results, total, started,
                            )
        finally:
            for job in inflight.values():  # interrupted: leave no orphans
                self._kill(job)

    def _spawn(self, index: int, spec: RunSpec, attempt: int) -> _Job:
        recv_conn, send_conn = mp.Pipe(duplex=False)
        proc = mp.Process(
            target=_child_main, args=(send_conn, self.worker, spec), daemon=True
        )
        proc.start()
        # Drop the parent's copy of the send end: a worker that dies
        # without sending then reads as EOF instead of hanging forever.
        send_conn.close()
        return _Job(index, spec, attempt, proc, recv_conn, time.monotonic())

    def _resolve(self, job: _Job, pending, results, total, started) -> None:
        try:
            kind, payload = job.conn.recv()
        except (EOFError, OSError):
            # The worker died without producing a result: crashed,
            # OOM-killed, or SIGKILLed mid-point.
            job.proc.join()
            self._close(job)
            self._attempt_failed(
                job,
                f"worker died without a result (exit code {job.proc.exitcode})",
                pending, results, total, started,
            )
            return
        job.proc.join()
        self._close(job)
        if kind == "ok":
            self._record(results, job.index, PointResult(
                job.spec, STATUS_DONE, payload, attempts=job.attempt,
                wall_time=time.monotonic() - job.started,
            ), total, started)
        else:
            self._attempt_failed(job, payload, pending, results, total, started)

    def _attempt_failed(self, job: _Job, error: str,
                        pending, results, total, started) -> None:
        if job.attempt <= self.retries:
            pending.append((job.index, job.attempt + 1))
            return
        self._record(results, job.index, PointResult(
            job.spec, STATUS_FAILED, error=error, attempts=job.attempt,
            wall_time=time.monotonic() - job.started,
        ), total, started)

    def _kill(self, job: _Job) -> None:
        if job.proc.is_alive():
            job.proc.terminate()
            job.proc.join(1.0)
            if job.proc.is_alive():  # pragma: no cover - stubborn worker
                job.proc.kill()
                job.proc.join()
        self._close(job)

    @staticmethod
    def _close(job: _Job) -> None:
        try:
            job.conn.close()
        except OSError:  # pragma: no cover
            pass


def summarize(results: list[PointResult]) -> dict:
    """Aggregate counts + timing for logs and CLI summaries."""
    return {
        "total": len(results),
        "done": sum(1 for r in results if r.status == STATUS_DONE),
        "cached": sum(1 for r in results if r.status == STATUS_CACHED),
        "failed": sum(1 for r in results if r.status == STATUS_FAILED),
        "wall_time": sum(r.wall_time for r in results),
    }
