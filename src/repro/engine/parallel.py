"""Parallel execution of independent simulation points.

Every steady-state point is an independent single-threaded simulation,
so load sweeps and figure grids parallelize embarrassingly across
processes.  The heavy lifting lives in
:mod:`repro.engine.orchestrator`; this module keeps the historical
sweep signatures as thin wrappers over it (strict mode: a failure
raises, like the sequential runner) plus the worker-count heuristics
the orchestrator itself uses.  Determinism comes from the per-point
seed, not from execution order: parallel results are bit-identical to
sequential ones.
"""

from __future__ import annotations

import os

from repro.engine.config import SimulationConfig
from repro.engine.metrics import LoadPoint
from repro.engine.runner import run_spec
from repro.engine.runspec import RunSpec


def _point(spec: RunSpec) -> LoadPoint:
    """Worker shim kept for back-compat; consumes a :class:`RunSpec`."""
    return run_spec(spec)


def available_cpus() -> int:
    """CPUs actually available to this process.

    ``os.cpu_count()`` reports the machine's CPUs even when a cgroup /
    container / taskset limit grants far fewer, which oversubscribes CI
    runners; prefer the scheduling affinity mask where the platform has
    one (Linux), falling back to ``cpu_count`` elsewhere (macOS).
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 2


def default_workers() -> int:
    """Half the available CPUs, at least 1 — simulations are memory-light
    but the harness usually runs other things too."""
    return max(1, available_cpus() // 2)


def _run_specs(specs: list[RunSpec], workers: int | None) -> list[LoadPoint]:
    from repro.engine.orchestrator import Orchestrator

    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(specs) <= 1:
        workers = 0  # in-process: no subprocess overhead for trivial grids
    return Orchestrator(workers=workers, retries=0).run_points(specs)


def run_load_sweep_parallel(
    config: SimulationConfig,
    pattern_spec: str,
    loads: list[float],
    warmup: int = 2_000,
    measure: int = 2_000,
    workers: int | None = None,
) -> list[LoadPoint]:
    """Parallel equivalent of :func:`repro.engine.runner.run_load_sweep`.

    Results are returned in ``loads`` order and are identical to the
    sequential runner's (same seeds, same simulations).
    """
    specs = [
        RunSpec(config, pattern_spec, load, warmup, measure) for load in loads
    ]
    return _run_specs(specs, workers)


def run_grid_parallel(
    tasks: list[tuple[SimulationConfig, str, float]],
    warmup: int = 2_000,
    measure: int = 2_000,
    workers: int | None = None,
) -> list[LoadPoint]:
    """Run an arbitrary (config, pattern, load) grid in parallel.

    Useful for figure drivers that sweep routings x loads; results come
    back in task order.
    """
    specs = [
        RunSpec(cfg, pattern, load, warmup, measure) for cfg, pattern, load in tasks
    ]
    return _run_specs(specs, workers)
