"""Parallel execution of independent simulation points.

Every steady-state point is an independent single-threaded simulation,
so load sweeps and figure grids parallelize embarrassingly across
processes.  This module wraps :func:`concurrent.futures` with the
pickle-friendly plumbing (configs are frozen dataclasses; the worker is
a module-level function), preserving the exact same results as the
sequential runner — determinism comes from the per-point seed, not from
execution order.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.engine.config import SimulationConfig
from repro.engine.metrics import LoadPoint
from repro.engine.runner import run_steady_state


def _point(task: tuple[SimulationConfig, str, float, int, int]) -> LoadPoint:
    config, pattern, load, warmup, measure = task
    return run_steady_state(config, pattern, load, warmup, measure)


def available_cpus() -> int:
    """CPUs actually available to this process.

    ``os.cpu_count()`` reports the machine's CPUs even when a cgroup /
    container / taskset limit grants far fewer, which oversubscribes CI
    runners; prefer the scheduling affinity mask where the platform has
    one (Linux), falling back to ``cpu_count`` elsewhere (macOS).
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 2


def default_workers() -> int:
    """Half the available CPUs, at least 1 — simulations are memory-light
    but the harness usually runs other things too."""
    return max(1, available_cpus() // 2)


def run_load_sweep_parallel(
    config: SimulationConfig,
    pattern_spec: str,
    loads: list[float],
    warmup: int = 2_000,
    measure: int = 2_000,
    workers: int | None = None,
) -> list[LoadPoint]:
    """Parallel equivalent of :func:`repro.engine.runner.run_load_sweep`.

    Results are returned in ``loads`` order and are identical to the
    sequential runner's (same seeds, same simulations).
    """
    tasks = [(config, pattern_spec, load, warmup, measure) for load in loads]
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(tasks) <= 1:
        return [_point(t) for t in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(_point, tasks))


def run_grid_parallel(
    tasks: list[tuple[SimulationConfig, str, float]],
    warmup: int = 2_000,
    measure: int = 2_000,
    workers: int | None = None,
) -> list[LoadPoint]:
    """Run an arbitrary (config, pattern, load) grid in parallel.

    Useful for figure drivers that sweep routings x loads; results come
    back in task order.
    """
    full = [(cfg, pattern, load, warmup, measure) for cfg, pattern, load in tasks]
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(full) <= 1:
        return [_point(t) for t in full]
    with ProcessPoolExecutor(max_workers=min(workers, len(full))) as pool:
        return list(pool.map(_point, full))
