"""Per-packet hop tracing.

Wraps a network's grant executor to record every hop of selected (or
all) packets: (cycle, router, output port, port kind, VC, request
kind).  Used by examples and tests to *show* a path — e.g. that an OFAR
packet detoured around a hot link, or that a ring packet circled to its
destination — instead of inferring it from counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.network.network import Network
from repro.network.router import KIND_NAMES
from repro.topology.dragonfly import PortKind


@dataclass(frozen=True)
class Hop:
    """One recorded hop of one packet."""

    cycle: int
    router: int
    out_port: int
    port_kind: str
    out_vc: int
    kind: str  # min / misroute-local / misroute-global / ring-*

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"@{self.cycle:>6} r{self.router:<4} {self.port_kind}:{self.out_port}"
            f" vc{self.out_vc} [{self.kind}]"
        )


@dataclass
class PacketTrace:
    """All recorded hops of one packet, in order."""

    pid: int
    hops: list[Hop] = field(default_factory=list)

    def path(self) -> list[int]:
        """Routers visited (in grant order)."""
        return [h.router for h in self.hops]

    def kinds(self) -> list[str]:
        return [h.kind for h in self.hops]

    def misroutes(self) -> int:
        return sum(1 for h in self.hops if h.kind.startswith("misroute"))

    def used_ring(self) -> bool:
        return any(h.kind.startswith("ring") for h in self.hops)


class Tracer:
    """Records hop traces by intercepting ``Network.execute_grant``.

    Use as a context manager or call :meth:`detach` explicitly::

        with Tracer(sim.network, pids={pkt.pid}) as tracer:
            sim.run_until_drained(10_000)
        print(tracer.trace(pkt.pid).path())
    """

    def __init__(self, network: Network, pids: set[int] | None = None) -> None:
        self.network = network
        self.pids = pids  # None = trace everything
        self.traces: dict[int, PacketTrace] = {}
        self._original: Callable | None = None

    def __enter__(self) -> "Tracer":
        self.attach()
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    def attach(self) -> None:
        if self._original is not None:
            raise RuntimeError("tracer already attached")
        self._original = self.network.execute_grant
        original = self._original
        pids = self.pids
        traces = self.traces

        def traced(rt, in_port, in_vc, out_port, out_vc, kind, cycle):
            pkt = rt.in_bufs[in_port][in_vc].head()
            if pkt is not None and (pids is None or pkt.pid in pids):
                trace = traces.get(pkt.pid)
                if trace is None:
                    trace = traces[pkt.pid] = PacketTrace(pkt.pid)
                ch = rt.out[out_port]
                trace.hops.append(
                    Hop(
                        cycle=cycle,
                        router=rt.rid,
                        out_port=out_port,
                        port_kind=ch.kind.value,
                        out_vc=out_vc,
                        kind=KIND_NAMES[kind],
                    )
                )
            return original(rt, in_port, in_vc, out_port, out_vc, kind, cycle)

        self.network.execute_grant = traced  # type: ignore[method-assign]

    def detach(self) -> None:
        if self._original is not None:
            # Remove the instance-level override; the class method resumes.
            del self.network.__dict__["execute_grant"]
            self._original = None

    def trace(self, pid: int) -> PacketTrace:
        """Trace of one packet (empty if it never moved)."""
        return self.traces.get(pid, PacketTrace(pid))


def describe_route(network: Network, trace: PacketTrace) -> str:
    """Human-readable one-liner: groups visited and hop kinds."""
    topo = network.topo
    parts = []
    for hop in trace.hops:
        g = topo.router_group(hop.router)
        tag = {
            PortKind.LOCAL.value: "l",
            PortKind.GLOBAL.value: "g",
            PortKind.NODE.value: "eject",
            PortKind.RING.value: "ring",
        }[hop.port_kind]
        mark = "" if hop.kind == "min" else f"*{hop.kind}"
        parts.append(f"g{g}:{tag}{mark}")
    return " -> ".join(parts)
