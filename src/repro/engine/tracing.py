"""Observability: per-packet hop tracing and sweep progress reporting.

Two of the run layer's three observability facilities live here; the
third is the in-run telemetry subsystem (:mod:`repro.telemetry`).  Each
watches a different timescale:

- :class:`Tracer` (per *event*) wraps a network's grant executor to
  record every hop of selected (or all) packets: (cycle, router, output
  port, port kind, VC, request kind).  Used by examples and tests to
  *show* a path — e.g. that an OFAR packet detoured around a hot link —
  instead of inferring it from counters.
- :class:`~repro.telemetry.sampler.TelemetrySampler` (per *window*,
  in :mod:`repro.telemetry`) snapshots windowed link utilization,
  buffer occupancy, ring pressure and latency digests every ``interval``
  cycles of a single run — the time-resolved middle ground between a
  hop trace and an end-of-run LoadPoint.
- :class:`SweepProgress` / :class:`ConsoleProgress` (per *grid point*)
  are the orchestrator's observability hook: after every resolved grid
  point the orchestrator emits a progress snapshot (done/cached/failed
  counts, rate, ETA, per-point wall time) to whatever observer the
  caller installed.  ``ConsoleProgress`` renders it as one stderr line
  per point; tests install plain lists.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, TextIO

from repro.network.network import Network
from repro.network.router import KIND_NAMES
from repro.topology.dragonfly import PortKind


@dataclass(frozen=True)
class Hop:
    """One recorded hop of one packet."""

    cycle: int
    router: int
    out_port: int
    port_kind: str
    out_vc: int
    kind: str  # min / misroute-local / misroute-global / ring-*

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"@{self.cycle:>6} r{self.router:<4} {self.port_kind}:{self.out_port}"
            f" vc{self.out_vc} [{self.kind}]"
        )


@dataclass
class PacketTrace:
    """All recorded hops of one packet, in order."""

    pid: int
    hops: list[Hop] = field(default_factory=list)

    def path(self) -> list[int]:
        """Routers visited (in grant order)."""
        return [h.router for h in self.hops]

    def kinds(self) -> list[str]:
        return [h.kind for h in self.hops]

    def misroutes(self) -> int:
        return sum(1 for h in self.hops if h.kind.startswith("misroute"))

    def used_ring(self) -> bool:
        return any(h.kind.startswith("ring") for h in self.hops)


class Tracer:
    """Records hop traces by intercepting ``Network.execute_grant``.

    Use as a context manager or call :meth:`detach` explicitly::

        with Tracer(sim.network, pids={pkt.pid}) as tracer:
            sim.run_until_drained(10_000)
        print(tracer.trace(pkt.pid).path())
    """

    def __init__(self, network: Network, pids: set[int] | None = None) -> None:
        self.network = network
        self.pids = pids  # None = trace everything
        self.traces: dict[int, PacketTrace] = {}
        self._original: Callable | None = None

    def __enter__(self) -> "Tracer":
        self.attach()
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    def attach(self) -> None:
        if self._original is not None:
            raise RuntimeError("tracer already attached")
        self._original = self.network.execute_grant
        original = self._original
        pids = self.pids
        traces = self.traces

        def traced(rt, in_port, in_vc, out_port, out_vc, kind, cycle):
            pkt = rt.in_bufs[in_port][in_vc].head()
            if pkt is not None and (pids is None or pkt.pid in pids):
                trace = traces.get(pkt.pid)
                if trace is None:
                    trace = traces[pkt.pid] = PacketTrace(pkt.pid)
                ch = rt.out[out_port]
                trace.hops.append(
                    Hop(
                        cycle=cycle,
                        router=rt.rid,
                        out_port=out_port,
                        port_kind=ch.kind.value,
                        out_vc=out_vc,
                        kind=KIND_NAMES[kind],
                    )
                )
            return original(rt, in_port, in_vc, out_port, out_vc, kind, cycle)

        self.network.execute_grant = traced  # type: ignore[method-assign]

    def detach(self) -> None:
        if self._original is not None:
            # Remove the instance-level override; the class method resumes.
            del self.network.__dict__["execute_grant"]
            self._original = None

    def trace(self, pid: int) -> PacketTrace:
        """Trace of one packet (empty if it never moved)."""
        return self.traces.get(pid, PacketTrace(pid))


# ----------------------------------------------------------------------
# Sweep progress (the orchestrator's observability hook)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SweepProgress:
    """One snapshot of an orchestrated sweep, emitted per resolved point.

    ``done + cached + failed`` counts resolved points; ``total`` is the
    grid size.  ``rate`` is resolved points per second of wall time and
    ``eta_seconds`` the remaining-work extrapolation (0.0 once done,
    NaN before the first point resolves).

    Fleet-drained sweeps (:mod:`repro.fabric`) fill in the fleet
    fields: ``worker`` names the emitting worker, ``fleet_workers``
    counts the live workers draining the same store, and ``fleet_rate``
    is their combined points per second — which then drives the ETA,
    because the remaining work is shared.  Single-host runs keep the
    defaults (one anonymous worker, NaN fleet rate) and behave exactly
    as before.
    """

    total: int
    done: int  # freshly simulated
    cached: int  # served from the result store
    failed: int  # exhausted retries (recorded, not fatal)
    elapsed: float  # seconds since the grid started
    last_label: str  # RunSpec.label() of the point just resolved
    last_status: str  # "done" | "cached" | "failed"
    last_wall_time: float  # seconds spent on that point
    worker: str = ""  # emitting fabric worker id ("" = single-host)
    fleet_workers: int = 1  # live workers draining the same store
    fleet_rate: float = float("nan")  # fleet-wide points/sec (NaN = unknown)

    @property
    def resolved(self) -> int:
        return self.done + self.cached + self.failed

    @property
    def rate(self) -> float:
        return self.resolved / self.elapsed if self.elapsed > 0 else float("nan")

    @property
    def eta_seconds(self) -> float:
        rate = self.fleet_rate if self.fleet_rate == self.fleet_rate else self.rate
        if rate != rate or rate == 0:
            return float("nan")
        return (self.total - self.resolved) / rate

    def render(self) -> str:
        eta = self.eta_seconds
        eta_text = f"{eta:.0f}s" if eta == eta else "?"
        line = (
            f"[sweep {self.resolved}/{self.total}] "
            f"done={self.done} cached={self.cached} failed={self.failed} "
            f"{self.rate:.2f} pt/s eta {eta_text} | "
            f"{self.last_label}: {self.last_status} in {self.last_wall_time:.2f}s"
        )
        if self.fleet_workers > 1 or self.worker:
            fleet = (
                f"{self.fleet_rate:.2f} pt/s fleet"
                if self.fleet_rate == self.fleet_rate else "rate ?"
            )
            line += f" | {self.fleet_workers} worker(s), {fleet}"
        return line


# An observer is any callable taking one SweepProgress.
ProgressObserver = Callable[[SweepProgress], None]


class ConsoleProgress:
    """Progress observer that prints one line per resolved point."""

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def __call__(self, progress: SweepProgress) -> None:
        print(progress.render(), file=self.stream, flush=True)


def describe_route(network: Network, trace: PacketTrace) -> str:
    """Human-readable one-liner: groups visited and hop kinds."""
    topo = network.topo
    parts = []
    for hop in trace.hops:
        g = topo.router_group(hop.router)
        tag = {
            PortKind.LOCAL.value: "l",
            PortKind.GLOBAL.value: "g",
            PortKind.NODE.value: "eject",
            PortKind.RING.value: "ring",
        }[hop.port_kind]
        mark = "" if hop.kind == "min" else f"*{hop.kind}"
        parts.append(f"g{g}:{tag}{mark}")
    return " -> ".join(parts)
