"""The single-cycle simulation loop.

Per-cycle order of operations (matching the paper's single-cycle
simulator):

1. deliver due events — packet arrivals, credit returns, ejections;
2. routing algorithm tick (PB refreshes its broadcast flags here);
3. traffic generation — new packets join their node's source queue;
4. injection — every free node moves the head of its source queue into
   the router's injection buffer (the injection wire serializes one
   phit per cycle, so a node injects at most one packet every
   ``packet_size`` cycles);
5. allocation — every router with waiting head packets runs the
   iterative separable allocator; grants execute immediately;
6. progress watchdog — if packets exist but nothing has moved for
   ``deadlock_cycles``, a :class:`DeadlockError` is raised (the
   baselines' VC order and OFAR's escape ring must prevent this; the
   Fig. 9 reduced-resource study disables neither but shows throughput
   collapse *before* deadlock).
"""

from __future__ import annotations

import random
from bisect import insort
from collections import deque

from repro.engine.config import SimulationConfig
from repro.engine.metrics import Metrics
from repro.network.network import Network
from repro.network.packet import Packet
from repro.routing import make_routing
from repro.routing.base import RoutingAlgorithm
from repro.traffic.generators import TrafficGenerator


class DeadlockError(RuntimeError):
    """No packet moved for ``deadlock_cycles`` while traffic was pending."""

    def __init__(self, cycle: int, outstanding: int) -> None:
        super().__init__(
            f"no movement since cycle {cycle}: {outstanding} packets stuck in the network"
        )
        self.cycle = cycle
        self.outstanding = outstanding


class Simulator:
    """Drives one :class:`~repro.network.network.Network` instance."""

    #: Network implementation this engine drives; the array backend
    #: substitutes its mirror-keeping subclass here.
    _network_cls = Network

    def __init__(
        self,
        config: SimulationConfig,
        generator: TrafficGenerator | None = None,
        record_send_latency: bool = False,
        send_bucket: int = 1,
        record_per_source: bool = False,
        record_per_job: bool = False,
    ) -> None:
        self.config = config
        self.network = self._network_cls(config)
        self.rng = random.Random(config.seed)
        self.routing = make_routing(self.network, self.rng)
        self.metrics = Metrics(
            num_nodes=self.network.topo.num_nodes,
            packet_size=config.packet_size,
            record_send_latency=record_send_latency,
            send_bucket=send_bucket,
            record_per_source=record_per_source,
            record_per_job=record_per_job,
        )
        self.network.on_eject = self.metrics.on_eject
        self.generator = generator
        self.cycle = 0
        self._pid = 0
        topo = self.network.topo
        num_nodes = topo.num_nodes
        # node -> attached router / group tables (packet-header fills).
        self._node_router = [topo.node_router(n) for n in range(num_nodes)]
        self._node_group = [topo.node_group(n) for n in range(num_nodes)]
        self._source_queues: list[deque[Packet]] = [deque() for _ in range(num_nodes)]
        self._node_busy = [0] * num_nodes
        # Nodes with a non-empty source queue.  ``_active_order`` is the
        # same membership kept incrementally sorted (bisect insertion)
        # so the injection sweep never re-sorts the set per cycle.
        self._active_nodes: set[int] = set()
        self._active_order: list[int] = []
        self._progress_marker = -1
        self._progress_cycle = 0
        # Whether the routing algorithm has a real per-cycle tick (only
        # PB broadcasts); skipping the no-op saves a call per cycle.
        self._routing_ticks = type(self.routing).tick is not RoutingAlgorithm.tick
        # Total packets created (≥ injected: source queues buffer excess).
        self.created_packets = 0
        # Optional TelemetrySampler (repro.telemetry); None costs one
        # attribute check per cycle — the whole price of having the hook.
        self.telemetry = None

    # ------------------------------------------------------------------
    # Packet creation / injection
    # ------------------------------------------------------------------
    def create_packet(
        self, src: int, dst: int, cycle: int | None = None, job: int = -1
    ) -> Packet:
        """Queue a new packet at node ``src`` (used by generators and tests).

        ``job`` tags the packet with the multi-job workload job index
        that created it (-1 = single-tenant traffic); per-job metrics
        and link attribution key off the tag.
        """
        if src == dst:
            raise ValueError("source and destination nodes must differ")
        if cycle is None:
            cycle = self.cycle
        node_router = self._node_router
        node_group = self._node_group
        pkt = Packet(
            self._pid,
            src,
            dst,
            self.config.packet_size,
            cycle,
            node_router[dst],
            node_group[dst],
            node_group[src],
        )
        self._pid += 1
        self._source_queues[src].append(pkt)
        active = self._active_nodes
        if src not in active:
            active.add(src)
            insort(self._active_order, src)
        self.created_packets += 1
        metrics = self.metrics
        metrics.generated_packets += 1  # Metrics.on_generate(1)
        if job >= 0:
            pkt.job = job
            if metrics.record_per_job:
                metrics.on_job_generate(job)
        return pkt

    def _inject(self, cycle: int) -> None:
        """Move source-queue heads into router injection buffers."""
        done: list[int] = []
        busy = self._node_busy
        queues = self._source_queues
        try_inject = self.network.try_inject
        # Skip the injection-time hook entirely for algorithms that do
        # not override the base no-op (MIN, OFAR): one call per node per
        # cycle adds up.
        on_inject = (
            self.routing.on_inject
            if type(self.routing).on_inject is not RoutingAlgorithm.on_inject
            else None
        )
        metrics = self.metrics
        record_jobs = metrics.record_per_job
        size = self.config.packet_size
        for node in self._active_order:
            if busy[node] > cycle:
                continue
            queue = queues[node]
            pkt = queue[0]
            # The injection-time decision (VAL/UGAL/PB) is re-taken on
            # every attempt so it sees current queue state.
            if on_inject is not None:
                on_inject(pkt)
            if try_inject(pkt, cycle):
                queue.popleft()
                busy[node] = cycle + size
                metrics.injected_packets += 1  # Metrics.on_inject
                if record_jobs and pkt.job >= 0:
                    metrics.on_job_inject(pkt.job)
                if not queue:
                    done.append(node)
        if done:
            active = self._active_nodes
            order = self._active_order
            for node in done:
                active.discard(node)
                order.remove(node)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by one cycle."""
        cycle = self.cycle
        network = self.network
        network.process_events(cycle)
        routing = self.routing
        if self._routing_ticks:
            routing.tick(cycle)
        generator = self.generator
        if generator is not None:
            if generator.emits_jobs:
                # Multi-job composite: (src, dst, job) triples.
                for src, dst, job in generator.packets_for_cycle(cycle):
                    self.create_packet(src, dst, cycle, job)
            else:
                for src, dst in generator.packets_for_cycle(cycle):
                    self.create_packet(src, dst, cycle)
        if self._active_order:
            self._inject(cycle)
        # Active-set allocation sweep: only routers holding a head
        # packet, in router-id order (a snapshot — grants may drain a
        # router out of the set mid-sweep).  Routers whose heads are all
        # behind busy read slots go to sleep until the earliest release.
        routers = network.routers
        maybe_sleep = network.maybe_sleep_router
        for rid in tuple(network._active_routers):
            rt = routers[rid]
            rt.allocate(cycle, routing, network)
            if rt.scheduled:
                maybe_sleep(rt, cycle)
        # Progress watchdog.
        marker = network.movements + network.injected_packets + network.ejected_packets
        if marker != self._progress_marker:
            self._progress_marker = marker
            self._progress_cycle = cycle
        elif (
            self.outstanding_packets() > 0
            and cycle - self._progress_cycle > self.config.deadlock_cycles
        ):
            raise DeadlockError(self._progress_cycle, self.outstanding_packets())
        # Telemetry observes the settled end-of-cycle state; the sampler
        # only reads, so a telemetered run is bit-identical to a plain one.
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_cycle(cycle)
        self.cycle = cycle + 1

    def run(self, cycles: int) -> None:
        """Advance ``cycles`` cycles."""
        for _ in range(cycles):
            self.step()

    def outstanding_packets(self) -> int:
        """Packets created but not yet fully ejected."""
        return self.created_packets - self.network.ejected_packets

    def run_until_drained(self, max_cycles: int) -> int:
        """Run until the generator (if any) finishes and every created
        packet is ejected; returns the cycle of the last ejection
        (``network.last_eject_cycle``; -1 when nothing was ever ejected,
        e.g. on a fresh simulator that is already drained).

        Endless generators (steady Bernoulli) never finish: the run hits
        ``max_cycles`` and raises :class:`TimeoutError`.
        """
        deadline = self.cycle + max_cycles

        def active() -> bool:
            if self.generator is not None and not self.generator.finished(self.cycle):
                return True
            return self.outstanding_packets() > 0

        while active():
            if self.cycle >= deadline:
                raise TimeoutError(
                    f"{self.outstanding_packets()} packets still outstanding "
                    f"after {max_cycles} cycles"
                )
            self.step()
        # The actual last-ejection cycle — NOT ``self.cycle - 1``, which
        # would be stale (or -1) when the network was already drained on
        # entry and the loop body never ran.
        completion = self.network.last_eject_cycle
        # Flush in-flight credit returns so the network is fully settled
        # (every credit counter back at capacity).
        while self.network.has_pending_events() and self.cycle < deadline:
            self.step()
        return completion

    # ------------------------------------------------------------------
    def warm_up(self, cycles: int) -> None:
        """Run ``cycles`` and then reset the measurement window."""
        self.run(cycles)
        self.metrics.reset(self.cycle)

    # ------------------------------------------------------------------
    def _on_state_applied(self) -> None:
        """Hook run after a snapshot restore overlays this simulator.

        The object graph is canonical; engines that keep derived
        acceleration state (the array backend's numpy mirrors) override
        this to rebuild it.  The reference engine derives nothing.
        """

    # ------------------------------------------------------------------
    def state_digest(self) -> str:
        """Cycle-granularity content hash of the complete mutable state.

        Equal digests at equal cycles mean behaviorally identical
        simulators: two deterministic runs of the same spec agree at
        every cycle, and the first differing cycle localizes a
        determinism break (``repro snapshot bisect`` automates the
        search).  Telemetry is excluded — observation never perturbs.
        """
        # Local import: repro.snapshot sits above the engine layer.
        from repro.snapshot.codec import state_digest

        return state_digest(self)
