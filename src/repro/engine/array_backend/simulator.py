"""The array engine's cycle loop: vectorized allocation classification.

The reference engine spends most of each cycle in
``Router.allocate`` -> ``OFARRouting.route``: per waiting head packet it
re-derives the minimal port, scans credits, evaluates thresholds — in
pure Python, one router at a time.  The array engine keeps that code as
the *fallback* and, each cycle, runs a numpy pre-pass over the active
single-pending routers that classifies every head packet into one of
three classes:

- **GRANT-MIN** — the minimal output is provably available: the grant
  (port, best data VC, KIND_MIN) is computed by the pre-pass and
  executed directly, skipping ``route()``;
- **STALL** — the packet provably cannot move *and* the scalar path
  would have had no side effects beyond the first-evaluation header
  writes (which the pre-pass replicates): the router is skipped
  entirely;
- **FALLBACK** — anything whose scalar evaluation could consume RNG or
  mutate visible state (misroute consideration, escape-ring entry,
  multi-head arbitration, ring riders, Valiant phases): the exact
  reference code runs.

Bit-for-bit equivalence argument, in brief: within one cycle, a grant
on router A mutates only A's own sender-side state and appends events
due at later cycles, so per-router decisions this cycle are mutually
independent; the sweep below executes decisions in the same ascending
router-id order as the reference loop, so the event wheel's FIFO bucket
order — and therefore every digest — is identical.  The pre-pass only
claims GRANT-MIN/STALL when the scalar evaluation is provably
RNG-free and counter-free (see the classification conditions inline),
and all float math is the same IEEE-754 double arithmetic numpy and
CPython share.

The pre-pass engages for OFAR/OFAR-L on the classic single-read-port
router; every other configuration runs the reference sweep unchanged
(still on the mirror-keeping ArrayNetwork, still bit-identical).
"""

from __future__ import annotations

import numpy as np

from repro.core.ofar import OFARRouting
from repro.engine.array_backend.network import ArrayNetwork
from repro.engine.array_backend.tables import min_port_table
from repro.engine.simulator import Simulator
from repro.network.router import KIND_MIN

#: Below this many active routers the gather/ufunc overhead outweighs
#: the saved route() calls; the sweep falls back to the reference loop.
#: Purely a performance knob — classification is exact at any size.
MIN_BATCH = 16


class ArraySimulator(Simulator):
    """Simulator over :class:`ArrayNetwork` with the vectorized sweep."""

    _network_cls = ArrayNetwork

    def __init__(self, config, **kwargs) -> None:
        super().__init__(config, **kwargs)
        routing = self.routing
        self._vector_pass = (
            isinstance(routing, OFARRouting)
            and config.input_read_ports == 1
            and config.allocator_iterations > 0
        )
        if self._vector_pass:
            arrays = self.network.arrays
            table = min_port_table(self.network.topo).astype(np.int64)
            # Flatten (router, port) to one axis so every per-batch
            # gather is a single 1-D fancy index.
            P = arrays.num_ports
            self._flat_min = (
                table + np.arange(table.shape[0], dtype=np.int64)[:, None] * P
            )
            self._flat_credits = arrays.credits.reshape(-1, arrays.num_vcs)
            self._flat_busy = arrays.busy.reshape(-1)
            self._flat_cap = arrays.data_cap.reshape(-1)
            # Static per-slot penalty: non-data VCs (and nonexistent
            # slots) drop to -1 so the best-data-VC argmax never picks
            # them, replacing a per-cycle np.where with an add.
            self._vc_penalty = np.where(
                arrays.data_mask, 0, -(1 << 40)
            ).reshape(-1, arrays.num_vcs)
            self._flat_mask = arrays.data_mask.reshape(-1, arrays.num_vcs)
            self._flat_failed = arrays.failed.reshape(-1)
            self._num_ports = P
            self._node_ports = self.network.topo.node_ports
            self._th_min = routing._th_min
            self._patience = routing._escape_patience

    # ------------------------------------------------------------------
    def _on_state_applied(self) -> None:
        self.network.arrays.resync()

    # ------------------------------------------------------------------
    def step(self) -> None:
        """One cycle; identical to the base loop except for the sweep."""
        cycle = self.cycle
        network = self.network
        network.process_events(cycle)
        routing = self.routing
        if self._routing_ticks:
            routing.tick(cycle)
        generator = self.generator
        if generator is not None:
            if generator.emits_jobs:
                for src, dst, job in generator.packets_for_cycle(cycle):
                    self.create_packet(src, dst, cycle, job)
            else:
                for src, dst in generator.packets_for_cycle(cycle):
                    self.create_packet(src, dst, cycle)
        if self._active_order:
            self._inject(cycle)
        # Apply last cycle's buffered mirror writes (grants) plus this
        # cycle's credit returns in one scatter per plane.
        network.arrays.flush()
        active = network._active_routers
        if self._vector_pass and len(active) >= MIN_BATCH:
            self._allocate_swept(cycle)
        else:
            routers = network.routers
            maybe_sleep = network.maybe_sleep_router
            for rid in tuple(active):
                rt = routers[rid]
                rt.allocate(cycle, routing, network)
                if rt.scheduled:
                    maybe_sleep(rt, cycle)
        marker = network.movements + network.injected_packets + network.ejected_packets
        if marker != self._progress_marker:
            self._progress_marker = marker
            self._progress_cycle = cycle
        elif (
            self.outstanding_packets() > 0
            and cycle - self._progress_cycle > self.config.deadlock_cycles
        ):
            from repro.engine.simulator import DeadlockError

            raise DeadlockError(self._progress_cycle, self.outstanding_packets())
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_cycle(cycle)
        self.cycle = cycle + 1

    # ------------------------------------------------------------------
    def _allocate_swept(self, cycle: int) -> None:
        network = self.network
        routers = network.routers
        routing = self.routing
        maybe_sleep = network.maybe_sleep_router
        snapshot = tuple(network._active_routers)
        # Gather: single-pending routers whose head packet is a plain
        # in-transit/injection OFAR packet (no ring, no Valiant phase)
        # with a free read slot.  Everything else is FALLBACK.
        b_rid: list[int] = []
        b_port: list[int] = []
        b_vc: list[int] = []
        b_pkt: list = []
        b_dst: list[int] = []
        b_head: list[int] = []
        for rid in snapshot:
            rt = routers[rid]
            pending = rt.pending
            if len(pending) != 1:
                continue
            for key in pending:
                break
            p, v = key
            if rt.in_busy[p][0] > cycle:
                continue
            fifo = rt.in_bufs[p][v]._fifo
            if not fifo:
                continue
            pkt = fifo[0]
            if pkt.on_ring or pkt.intermediate_group != -1:
                continue
            b_rid.append(rid)
            b_port.append(p)
            b_vc.append(v)
            b_pkt.append(pkt)
            b_dst.append(pkt.dst)
            b_head.append(pkt.head_cycle)
        execute_grant = network.execute_grant
        if not b_rid:
            for rid in snapshot:
                rt = routers[rid]
                rt.allocate(cycle, routing, network)
                if rt.scheduled:
                    maybe_sleep(rt, cycle)
            return
        # Classification: one broadcasted pass over the whole batch.
        # Every gather is one 1-D fancy index on a flat (router*port)
        # view of the mirrors.
        idx = self._flat_min[b_rid, b_dst]  # flat (rid, min_port) slots
        cred = self._flat_credits[idx]  # [B, V]
        masked = cred + self._vc_penalty[idx]  # non-data VCs sink to -2^40
        # argmax = first maximum = lowest data-VC index on ties, exactly
        # like the scalar first-max scan in route().
        best_vc = masked.argmax(axis=1)
        best_credit = masked.max(axis=1)
        size = self.config.packet_size
        mp_a = idx % self._num_ports
        is_node = mp_a < self._node_ports
        failed = self._flat_failed[idx]
        grant = (
            ~failed
            & (self._flat_busy[idx] <= cycle)
            & np.where(is_node, cred[:, 0] >= size, best_credit >= size)
        )
        # STALL purity for non-ejection heads: the scalar path considers
        # misrouting only at q_min >= th_min, and the escape ring only
        # when patience has expired AND no data VC fits the packet; a
        # head outside both conditions returns None touching nothing.
        cap = self._flat_cap[idx]
        free = np.where(self._flat_mask[idx], cred, 0).sum(axis=1)
        q_min = np.where(
            failed | (cap == 0), 1.0, 1.0 - free / np.maximum(cap, 1)
        )
        head_a = np.asarray(b_head)
        eff_head = np.where(head_a < 0, cycle, head_a)
        ring_try = (cycle - eff_head >= self._patience) & (best_credit < size)
        stall = is_node | ((q_min < self._th_min) & ~ring_try)
        grant_l = grant.tolist()
        stall_l = stall.tolist()
        mp_l = mp_a.tolist()
        out_vc_l = np.where(is_node, 0, best_vc).tolist()
        # Execution: same ascending router-id order as the reference
        # sweep, merge-walking the (snapshot-ordered) batch so planned
        # routers need no per-router lookup.
        k = 0
        B = len(b_rid)
        next_planned = b_rid[0]
        for rid in snapshot:
            rt = routers[rid]
            if rid != next_planned:
                rt.allocate(cycle, routing, network)
                if rt.scheduled:
                    maybe_sleep(rt, cycle)
                continue
            i = k
            k += 1
            next_planned = b_rid[k] if k < B else -1
            if grant_l[i]:
                pkt = b_pkt[i]
                if pkt.head_cycle < 0:
                    # First head evaluation: route() would stamp the
                    # head-wait clock and the minimal-output memo.
                    pkt.head_cycle = cycle
                    pkt.cache_rid = rid
                    pkt.cache_ig = -1
                    pkt.cache_port = mp_l[i]
                execute_grant(
                    rt, b_port[i], b_vc[i], mp_l[i], out_vc_l[i],
                    KIND_MIN, cycle,
                )
                if rt.scheduled:
                    maybe_sleep(rt, cycle)
            elif stall_l[i]:
                pkt = b_pkt[i]
                if pkt.head_cycle < 0:
                    pkt.head_cycle = cycle
                    pkt.cache_rid = rid
                    pkt.cache_ig = -1
                    pkt.cache_port = mp_l[i]
                # maybe_sleep is a no-op here: the read slot is free, so
                # the reference loop keeps polling too.
            else:
                rt.allocate(cycle, routing, network)
                if rt.scheduled:
                    maybe_sleep(rt, cycle)


__all__ = ["ArraySimulator", "MIN_BATCH"]
