"""Network subclass that keeps the struct-of-arrays mirrors in lockstep.

Every mutation of the allocation-relevant state flows through four
funnels, each wrapped here with its mirror write:

- :meth:`execute_grant` — debits sender credits, claims the output
  channel and the input read slot (all derivable from the call's own
  arguments, so the wrapper never re-reads the object graph);
- :meth:`process_events` — credit returns (the only event kind that
  touches mirrored state; arrivals move buffer occupancy, which the
  classification pass never reads);
- :meth:`fail_link` / :meth:`restore_link` — fault flags (rare; the
  wrapper resyncs the full fault plane rather than tracking the
  peer-channel bookkeeping a second time).

Behavior is untouched: each wrapper defers to the base implementation
and only appends array writes, so an :class:`ArrayNetwork` is
bit-for-bit the reference :class:`~repro.network.network.Network`.
"""

from __future__ import annotations

from repro.engine.array_backend.state import ArrayState
from repro.engine.config import SimulationConfig
from repro.network.network import _EV_CREDIT, Network


class ArrayNetwork(Network):
    """The reference network plus dense numpy mirrors (see ArrayState)."""

    def __init__(self, config: SimulationConfig) -> None:
        super().__init__(config)
        self.arrays = ArrayState(self)
        self._single_read = config.input_read_ports == 1

    # ------------------------------------------------------------------
    def execute_grant(self, rt, in_port, in_vc, out_port, out_vc, kind, cycle):
        pkt = super().execute_grant(rt, in_port, in_vc, out_port, out_vc, kind, cycle)
        # Cheap Python appends here; ArrayState.flush() scatters them in
        # one vectorized write per cycle before the mirrors are read.
        arrays = self.arrays
        base = rt.rid * arrays.num_ports
        end = cycle + self._packet_size
        arrays._busy_w.append(base + out_port)
        arrays._busy_v.append(end)
        if self._single_read:
            arrays._in_w.append(base + in_port)
            arrays._in_v.append(end)
        arrays._cred_w.append((base + out_port) * arrays.num_vcs + out_vc)
        arrays._cred_v.append(-pkt.size)
        return pkt

    def process_events(self, cycle: int) -> None:
        # Peek the cycle's bucket before the base loop consumes it: the
        # wheel pops exactly this bucket, so the credit events recorded
        # here are exactly the ones applied to ``ch.credits``.
        bucket = self._events._buckets.get(cycle)
        if bucket:
            arrays = self.arrays
            index = arrays.chan_index
            num_vcs = arrays.num_vcs
            cred_w = arrays._cred_w
            cred_v = arrays._cred_v
            for ev in bucket:
                if ev[0] == _EV_CREDIT:
                    cred_w.append(index[id(ev[1])] * num_vcs + ev[2])
                    cred_v.append(ev[3])
        super().process_events(cycle)

    def fail_link(self, router: int, port: int) -> None:
        super().fail_link(router, port)
        self._resync_failed()

    def restore_link(self, router: int, port: int) -> None:
        super().restore_link(router, port)
        self._resync_failed()

    def _resync_failed(self) -> None:
        failed = self.arrays.failed
        for rt in self.routers:
            for p, ch in enumerate(rt.out):
                if ch is not None:
                    failed[rt.rid, p] = ch.failed


__all__ = ["ArrayNetwork"]
