"""Vectorized topology tables for the array engine.

The dragonfly's minimal-output oracle is a pure closed form
(:meth:`~repro.topology.dragonfly.Dragonfly.min_output_port`); the
object engine tabulates (router, destination) pairs lazily as they
occur.  The array engine instead materializes the *complete* table in
one broadcasted numpy expression, so the per-cycle classification pass
can resolve every head packet's minimal port with a single fancy-index
gather.

The closed form reproduced here (palmtree arrangement, see
``dragonfly.py``):

- same router       -> node port ``dst % p``;
- same group        -> local port toward the destination router;
- different group   -> the group pair's owner link: global port ``k``
  when this router owns it, else the local port toward the owner.
"""

from __future__ import annotations

import numpy as np

from repro.topology.dragonfly import Dragonfly


def min_port_table(topo: Dragonfly, dtype=np.int16) -> np.ndarray:
    """``table[router, dst_node]`` = first-hop minimal output port.

    Shape ``(num_routers, num_nodes)``; int16 holds the largest port
    index of any practical h (h=16 has 64 ports).  h=6 costs ~12 MB.
    """
    h, p, a, G = topo.h, topo.p, topo.a, topo.num_groups
    node_ports = topo.node_ports
    rids = np.arange(topo.num_routers, dtype=np.int64)[:, None]
    nodes = np.arange(topo.num_nodes, dtype=np.int64)[None, :]
    dst_router = nodes // p
    g = rids // a
    r = rids % a
    dst_g = dst_router // a
    dst_r = dst_router % a

    def local_port(from_idx, to_idx):
        # local slot j serves peer j if j < from else peer j + 1
        return node_ports + np.where(to_idx < from_idx, to_idx, to_idx - 1)

    # Inter-group: the (d-1) decomposition names the owner router/slot.
    d = (dst_g - g) % G
    owner_r = (d - 1) // h
    k = (d - 1) % h
    inter = np.where(
        r == owner_r,
        node_ports + topo.local_ports + k,  # global_port(k)
        local_port(r, owner_r),
    )
    same_group = np.where(
        dst_router == rids,
        nodes % p,  # ejection port
        local_port(r, dst_r),
    )
    table = np.where(dst_g == g, same_group, inter)
    return table.astype(dtype)


def group_port_table(topo: Dragonfly, dtype=np.int16) -> np.ndarray:
    """``table[router, dst_group]`` = minimal port toward ``dst_group``.

    The Valiant-phase analogue of :func:`min_port_table`
    (``min_output_port_to_group``).  Entries for a router's own group
    are -1 (the oracle is undefined there).
    """
    h = topo.h
    node_ports = topo.node_ports
    rids = np.arange(topo.num_routers, dtype=np.int64)[:, None]
    groups = np.arange(topo.num_groups, dtype=np.int64)[None, :]
    g = rids // topo.a
    r = rids % topo.a
    d = (groups - g) % topo.num_groups
    owner_r = (d - 1) // h
    k = (d - 1) % h
    to_owner = node_ports + np.where(owner_r < r, owner_r, owner_r - 1)
    table = np.where(
        r == owner_r, node_ports + topo.local_ports + k, to_owner
    )
    return np.where(d == 0, -1, table).astype(dtype)


__all__ = ["group_port_table", "min_port_table"]
