"""Flat struct-of-arrays mirrors of the network's allocation state.

The object graph stays canonical — the snapshot codec, the digest and
all counters read it, never these arrays.  The arrays are *derived*
state: dense ``[router, port(, vc)]`` mirrors of exactly the fields the
per-cycle classification pass reads (sender-side credits, output/input
serialization clocks, fault flags), kept in lockstep by
:class:`~repro.engine.array_backend.network.ArrayNetwork` at every
mutation point and rebuilt wholesale by :meth:`ArrayState.resync` after
a snapshot restore.

Layout: rectangular arrays over ``R = num_routers``, ``P = max ports``
(including physical-ring ports) and ``V = max VCs per channel``.  Slots
that do not correspond to a real channel/VC read as failed / zero
capacity / non-data, so vectorized scans never pick them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network


class ArrayState:
    """Dense numpy mirrors of one network's allocation-relevant state."""

    def __init__(self, network: "Network") -> None:
        self.network = network
        routers = network.routers
        self.num_routers = len(routers)
        self.num_ports = max(len(rt.out) for rt in routers)
        self.num_vcs = max(
            (ch.num_vcs for rt in routers for ch in rt.out if ch is not None),
            default=1,
        )
        R, P, V = self.num_routers, self.num_ports, self.num_vcs
        # Static structure (never mutated after construction).
        self.data_mask = np.zeros((R, P, V), dtype=bool)
        self.data_cap = np.zeros((R, P), dtype=np.int64)
        # Dynamic mirrors.
        self.credits = np.zeros((R, P, V), dtype=np.int64)
        self.busy = np.zeros((R, P), dtype=np.int64)  # output busy_until
        self.in_busy = np.zeros((R, P), dtype=np.int64)  # read slot 0
        self.failed = np.ones((R, P), dtype=bool)  # nonexistent = failed
        # Flat 1-D views (same memory) for scatter-style batch writes.
        self.busy_flat = self.busy.reshape(-1)
        self.in_busy_flat = self.in_busy.reshape(-1)
        self.credits_flat = self.credits.reshape(-1)
        # Write buffer: mutations are appended here as (flat index,
        # value) pairs by the network wrappers — cheap Python appends on
        # the hot path — and applied in one vectorized scatter per cycle
        # by :meth:`flush` before the classification pass reads the
        # mirrors.  Between flushes the object graph alone is current.
        self._busy_w: list[int] = []
        self._busy_v: list[int] = []
        self._in_w: list[int] = []
        self._in_v: list[int] = []
        self._cred_w: list[int] = []
        self._cred_v: list[int] = []
        # Credit-return events carry the OutputChannel object; this maps
        # it back to its *flat* (router*P + port) coordinate.
        self.chan_index: dict[int, int] = {}
        for rt in routers:
            for port, ch in enumerate(rt.out):
                if ch is None:
                    continue
                self.chan_index[id(ch)] = rt.rid * P + port
                self.data_cap[rt.rid, port] = ch.data_capacity
                for v in ch.data_vcs:
                    self.data_mask[rt.rid, port, v] = True
        self.resync()

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Apply buffered mirror writes in one scatter per plane.

        Output/input serialization clocks are plain scatters (a channel
        is granted at most once per cycle, so no index repeats within a
        buffer); credit deltas use ``np.add.at`` because a debit and a
        return may hit the same VC in one cycle.
        """
        if self._busy_w:
            self.busy_flat[self._busy_w] = self._busy_v
            self._busy_w.clear()
            self._busy_v.clear()
        if self._in_w:
            self.in_busy_flat[self._in_w] = self._in_v
            self._in_w.clear()
            self._in_v.clear()
        if self._cred_w:
            np.add.at(self.credits_flat, self._cred_w, self._cred_v)
            self._cred_w.clear()
            self._cred_v.clear()

    # ------------------------------------------------------------------
    def resync(self) -> None:
        """Rebuild every dynamic mirror from the object graph.

        Called at construction and after ``apply_state`` overlays a
        snapshot (restores rewrite credits/busy clocks in place).
        """
        for buf in (
            self._busy_w, self._busy_v, self._in_w, self._in_v,
            self._cred_w, self._cred_v,
        ):
            buf.clear()
        credits = self.credits
        busy = self.busy
        in_busy = self.in_busy
        failed = self.failed
        credits[:] = 0
        busy[:] = 0
        in_busy[:] = 0
        failed[:] = True
        for rt in self.network.routers:
            rid = rt.rid
            for port, ch in enumerate(rt.out):
                if ch is None:
                    continue
                failed[rid, port] = ch.failed
                busy[rid, port] = ch.busy_until
                for v, c in enumerate(ch.credits):
                    credits[rid, port, v] = c
            for port, slots in enumerate(rt.in_busy):
                in_busy[rid, port] = slots[0]

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Assert every mirror equals the object graph (tests/debug)."""
        self.flush()
        for rt in self.network.routers:
            rid = rt.rid
            for port, ch in enumerate(rt.out):
                if ch is None:
                    continue
                assert self.failed[rid, port] == ch.failed, (rid, port)
                assert self.busy[rid, port] == ch.busy_until, (rid, port)
                for v, c in enumerate(ch.credits):
                    assert self.credits[rid, port, v] == c, (rid, port, v)
            for port, slots in enumerate(rt.in_busy):
                assert self.in_busy[rid, port] == slots[0], (rid, port)


__all__ = ["ArrayState"]
