"""The array engine: numpy struct-of-arrays backend, name ``"array"``.

Drop-in second implementation of the engine contract
(:class:`~repro.engine.backend.EngineBackend`).  The object graph stays
canonical — snapshots, digests and metrics all read it — while dense
``[router, port, vc]`` numpy mirrors of the allocation-relevant state
(:mod:`.state`) let the cycle loop (:mod:`.simulator`) classify the
whole active-router set's head packets in a few broadcasted array
operations instead of one Python ``route()`` call per router.

The backend is bit-for-bit equivalent to ``"object"``: same RunSpec →
identical ``state_digest()`` at every cycle, identical LoadPoint bytes,
identical determinism fingerprint (the cross-backend suite in
``tests/test_array_backend.py`` asserts this across every routing
policy, pattern family, fault drills and multi-job workloads).  Select
it per spec (``RunSpec(..., backend="array")``), per invocation
(``--backend array`` on any sweep-running CLI), or per campaign
(``backend: array``); results and store keys do not depend on the
choice.

Importing this package registers the backend; ordinary users never
import it directly — :func:`repro.engine.backend.get_backend` pulls it
in lazily the first time the name ``"array"`` is requested.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.engine.array_backend.network import ArrayNetwork
from repro.engine.array_backend.simulator import ArraySimulator
from repro.engine.array_backend.state import ArrayState
from repro.engine.array_backend.tables import group_port_table, min_port_table
from repro.engine.backend import register_backend

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.runspec import RunSpec


class ArrayBackend:
    """Engine backend driving :class:`ArraySimulator`."""

    name = "array"

    def simulator(self, config, **kwargs) -> ArraySimulator:
        return ArraySimulator(config, **kwargs)

    def build(self, spec: "RunSpec") -> ArraySimulator:
        from repro.engine.runner import build_steady_sim

        return build_steady_sim(spec, backend=self)

    def step(self, sim) -> None:
        sim.step()

    def state_digest(self, sim) -> str:
        return sim.state_digest()


register_backend(ArrayBackend())

__all__ = [
    "ArrayBackend",
    "ArrayNetwork",
    "ArraySimulator",
    "ArrayState",
    "group_port_table",
    "min_port_table",
]
