"""Simulation engine: configuration, the single-cycle loop, metrics and
experiment runners (steady-state load sweeps, transients, bursts)."""

from repro.engine.config import SimulationConfig, ThresholdConfig
from repro.engine.metrics import Metrics, LoadPoint
from repro.engine.runspec import RunSpec
from repro.engine.simulator import Simulator, DeadlockError
from repro.engine.backend import (
    EngineBackend,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.engine.runner import (
    build_steady_sim,
    run_spec,
    run_load_sweep,
    run_transient,
    run_burst,
)
from repro.engine.orchestrator import Orchestrator, OrchestratorError, PointResult

__all__ = [
    "SimulationConfig",
    "ThresholdConfig",
    "Metrics",
    "LoadPoint",
    "RunSpec",
    "Simulator",
    "DeadlockError",
    "EngineBackend",
    "Orchestrator",
    "OrchestratorError",
    "PointResult",
    "available_backends",
    "build_steady_sim",
    "default_backend",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "run_spec",
    "run_load_sweep",
    "run_transient",
    "run_burst",
]
