"""Simulation engine: configuration, the single-cycle loop, metrics and
experiment runners (steady-state load sweeps, transients, bursts)."""

from repro.engine.config import SimulationConfig, ThresholdConfig
from repro.engine.metrics import Metrics, LoadPoint
from repro.engine.runspec import RunSpec
from repro.engine.simulator import Simulator, DeadlockError
from repro.engine.runner import (
    run_spec,
    run_steady_state,
    run_load_sweep,
    run_transient,
    run_burst,
)
from repro.engine.orchestrator import Orchestrator, OrchestratorError, PointResult

__all__ = [
    "SimulationConfig",
    "ThresholdConfig",
    "Metrics",
    "LoadPoint",
    "RunSpec",
    "Simulator",
    "DeadlockError",
    "Orchestrator",
    "OrchestratorError",
    "PointResult",
    "run_spec",
    "run_steady_state",
    "run_load_sweep",
    "run_transient",
    "run_burst",
]
