"""Simulation engine: configuration, the single-cycle loop, metrics and
experiment runners (steady-state load sweeps, transients, bursts)."""

from repro.engine.config import SimulationConfig, ThresholdConfig
from repro.engine.metrics import Metrics, LoadPoint
from repro.engine.simulator import Simulator, DeadlockError
from repro.engine.runner import (
    run_steady_state,
    run_load_sweep,
    run_transient,
    run_burst,
)

__all__ = [
    "SimulationConfig",
    "ThresholdConfig",
    "Metrics",
    "LoadPoint",
    "Simulator",
    "DeadlockError",
    "run_steady_state",
    "run_load_sweep",
    "run_transient",
    "run_burst",
]
