"""Engine backends: one run API, swappable engine implementations.

A *backend* is a named strategy for turning a :class:`~repro.engine.
runspec.RunSpec` into a live :class:`~repro.engine.simulator.Simulator`
and driving it.  The run layer (:mod:`repro.engine.runner`, the
orchestrator, the campaign runner, the workload runner) never
constructs a simulator class directly; everything funnels through
:func:`resolve_backend`, so which engine executes a point is a
per-RunSpec detail (``spec.backend``), not a hard-coded import.

The contract every backend must honor is *bit-for-bit equivalence*:
for any spec, every backend produces the identical ``state_digest()``
at every cycle, the identical LoadPoint bytes, and the identical
``determinism_fingerprint.py`` output as the reference ``"object"``
backend.  That is why ``RunSpec.backend`` is excluded from the result
fingerprint — a cached result is valid for every backend.

Registered backends:

- ``"object"`` — the reference engine (:class:`~repro.engine.
  simulator.Simulator` over the pure-Python object graph).
- ``"array"``  — the numpy struct-of-arrays engine
  (:mod:`repro.engine.array_backend`), registered lazily on first use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.runspec import RunSpec
    from repro.engine.simulator import Simulator


@runtime_checkable
class EngineBackend(Protocol):
    """What the run layer requires of an engine implementation.

    ``simulator()`` is the raw constructor hook (the runner's transient
    / burst / workload builders attach their own generators);
    ``build()`` is the full steady-state builder (generator wired, ready
    to warm up).  ``step``/``state_digest`` make the per-cycle contract
    explicit: one call advances exactly one cycle, and equal digests at
    equal cycles mean behaviorally identical engines — the property the
    cross-backend equivalence suite asserts cycle by cycle.
    """

    #: Registry key; also the value ``RunSpec.backend`` carries.
    name: str

    def simulator(self, config, **kwargs) -> "Simulator":
        """A fresh, generator-less simulator for ``config``."""
        ...

    def build(self, spec: "RunSpec") -> "Simulator":
        """A fresh simulator wired for one steady-state spec."""
        ...

    def step(self, sim: "Simulator") -> None:
        """Advance ``sim`` exactly one cycle."""
        ...

    def state_digest(self, sim: "Simulator") -> str:
        """Behavioral content hash of ``sim`` (see repro.snapshot)."""
        ...


class ObjectBackend:
    """The reference engine: plain Python objects, one router at a time."""

    name = "object"

    def simulator(self, config, **kwargs) -> "Simulator":
        from repro.engine.simulator import Simulator

        return Simulator(config, **kwargs)

    def build(self, spec: "RunSpec") -> "Simulator":
        from repro.engine.runner import build_steady_sim

        return build_steady_sim(spec, backend=self)

    def step(self, sim: "Simulator") -> None:
        sim.step()

    def state_digest(self, sim: "Simulator") -> str:
        return sim.state_digest()


_BACKENDS: dict[str, EngineBackend] = {}

#: Process-wide default applied when specs are *constructed* without an
#: explicit backend request (CLI --backend, campaign ``backend:``).
_DEFAULT_BACKEND = "object"


def register_backend(backend: EngineBackend) -> None:
    """Add ``backend`` to the registry (replacing any same-named one)."""
    _BACKENDS[backend.name] = backend


def available_backends() -> list[str]:
    """Registered backend names (triggers lazy registration)."""
    _ensure_registered()
    return sorted(_BACKENDS)


def _ensure_registered() -> None:
    if "array" not in _BACKENDS:
        # Lazy: the array backend pulls in its table/state machinery,
        # which object-only runs never need.
        import repro.engine.array_backend  # noqa: F401  (self-registers)


def get_backend(name: str) -> EngineBackend:
    """Backend instance by registry name."""
    if name not in _BACKENDS:
        _ensure_registered()
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown engine backend {name!r}; available: {sorted(_BACKENDS)}"
        ) from None


def resolve_backend(spec: "RunSpec") -> EngineBackend:
    """The single entry point mapping a spec to its engine.

    Everything that builds a simulator for a :class:`RunSpec` — the
    steady-state runner, the workload runner, checkpoint resume,
    snapshot forks — resolves here, so ``spec.backend`` is honored
    uniformly and an unknown name fails loudly in one place.
    """
    return get_backend(spec.backend)


def set_default_backend(name: str) -> None:
    """Install the process-wide default for newly constructed specs.

    Spec *construction* helpers (``Scale.spec``, the campaign expander,
    the CLI) stamp :func:`default_backend` into RunSpecs that carry no
    explicit request; the stamped value then travels with the spec
    through pickling into orchestrator workers.  Validates eagerly so a
    typo in ``--backend`` fails before any work is scheduled.
    """
    global _DEFAULT_BACKEND
    get_backend(name)  # validate
    _DEFAULT_BACKEND = name


def default_backend() -> str:
    """The current process-wide default backend name."""
    return _DEFAULT_BACKEND


register_backend(ObjectBackend())
