"""The single currency of the run layer: :class:`RunSpec`.

A steady-state simulation point is fully determined by five values —
the :class:`~repro.engine.config.SimulationConfig`, the traffic-pattern
spec string, the offered load, and the warm-up / measurement windows.
``RunSpec`` freezes them into one hashable value that the runner, the
parallel pool, the orchestrator and the on-disk result store all
consume, so "the same point" means the same thing everywhere.

Two derived encodings matter:

- :meth:`RunSpec.fingerprint` — a stable content hash used as the
  result-store key.  Two specs collide iff they describe the same
  simulation, across processes and sessions (the hash covers a
  canonical JSON form, not Python object identity).
- :meth:`RunSpec.to_json` / :meth:`RunSpec.from_json` — a lossless
  round-trip used for provenance inside store entries.

Two fields are exceptions to "everything is identity": ``telemetry``
requests in-run observation (:mod:`repro.telemetry`) and ``backend``
selects the engine implementation (:mod:`repro.engine.backend`); both
are excluded from the encodings, because neither changes what the
simulation computes — samplers never perturb, and every registered
backend is proven bit-for-bit identical to the reference engine.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.cluster.spec import ScenarioSpec
from repro.engine.config import SimulationConfig
from repro.telemetry.config import TelemetryConfig
from repro.workloads.spec import WorkloadSpec

# Bump when the meaning of a fingerprinted field changes so stale store
# entries become misses instead of wrong answers.
FINGERPRINT_VERSION = 1


@dataclass(frozen=True)
class RunSpec:
    """One steady-state (config, pattern, load, windows) point."""

    config: SimulationConfig
    pattern_spec: str
    load: float
    warmup: int = 2_000
    measure: int = 2_000
    # Observation sidecar, NOT identity: a sampler never perturbs the
    # simulation, so ``telemetry`` is deliberately excluded from
    # ``to_jsonable()``/``fingerprint()`` — enabling it neither
    # invalidates cached results nor forks the store key.  (Rationale in
    # repro.telemetry.config.)
    telemetry: TelemetryConfig | None = None
    # Multi-job workload (repro.workloads).  Unlike telemetry this IS
    # identity — the jobs, their placement and their lifetimes determine
    # every number — so it participates in the JSON form and the
    # fingerprint.  The key is *omitted* when None, which keeps every
    # pre-existing single-tenant fingerprint unchanged.
    workload: WorkloadSpec | None = None
    # Windowed-convergence measurement (saturating sweeps).  When set,
    # the runner measures in ``measure``-cycle windows until consecutive
    # windows' throughputs agree (or ``max_windows`` elapse) instead of
    # one fixed window.  This changes the reported numbers, so like
    # ``workload`` it IS identity: fingerprinted when set, the key
    # omitted when None so fixed-window fingerprints are unchanged.
    max_windows: int | None = None
    # Cluster scenario (repro.cluster): churn + faults + scheduling over
    # the horizon.  Like ``workload`` this IS identity — the arrival
    # process, mix, scheduler and fault schedule determine every number
    # — and like it the key is omitted when None so every pre-existing
    # fingerprint is unchanged.
    scenario: ScenarioSpec | None = None
    # Engine backend selection, NOT identity: every registered backend
    # is proven bit-for-bit identical to the reference object engine
    # (tests/test_array_backend.py, determinism_fingerprint --backend),
    # so like ``telemetry`` it is excluded from ``to_jsonable()``/
    # ``fingerprint()`` — results computed by one backend are cache hits
    # for every other.
    backend: str = "object"

    def __post_init__(self) -> None:
        if self.load < 0:
            raise ValueError(f"load must be >= 0, got {self.load}")
        if self.warmup < 0 or self.measure < 0:
            raise ValueError("warmup and measure must be >= 0")
        if self.max_windows is not None:
            if self.max_windows < 1:
                raise ValueError(
                    f"max_windows must be >= 1, got {self.max_windows}"
                )
            if self.workload is not None:
                raise ValueError(
                    "windowed convergence (max_windows) is a steady-state "
                    "protocol; workload specs measure one fixed window"
                )
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError(f"backend must be a non-empty string, got {self.backend!r}")
        if self.workload is not None:
            # Canonical encoding: the jobs carry the patterns and loads,
            # so the single-tenant fields must hold fixed sentinel
            # values — otherwise one workload could fingerprint two ways.
            if self.pattern_spec != "workload" or self.load != 0.0:
                raise ValueError(
                    "workload specs must use pattern_spec='workload' and "
                    "load=0.0 (use RunSpec.for_workload)"
                )
        if self.scenario is not None:
            # Same canonical-sentinel rule as workload, plus the windows
            # are pinned to the scenario's own horizon: one scenario,
            # one fingerprint.
            if self.workload is not None:
                raise ValueError(
                    "a spec carries a workload or a scenario, never both "
                    "(the scenario compiles to its own workload)"
                )
            if self.max_windows is not None:
                raise ValueError(
                    "scenarios run a fixed horizon; max_windows does not "
                    "apply"
                )
            if (
                self.pattern_spec != "scenario"
                or self.load != 0.0
                or self.warmup != 0
                or self.measure != self.scenario.horizon
            ):
                raise ValueError(
                    "scenario specs must use pattern_spec='scenario', "
                    "load=0.0, warmup=0 and measure == scenario.horizon "
                    "(use RunSpec.for_scenario)"
                )

    @classmethod
    def for_scenario(
        cls,
        config: SimulationConfig,
        scenario: ScenarioSpec,
        telemetry: TelemetryConfig | None = None,
        backend: str = "object",
    ) -> "RunSpec":
        """Canonical constructor for cluster-scenario specs."""
        return cls(
            config, "scenario", 0.0, 0, scenario.horizon, telemetry,
            scenario=scenario, backend=backend,
        )

    @classmethod
    def for_workload(
        cls,
        config: SimulationConfig,
        workload: WorkloadSpec,
        warmup: int = 2_000,
        measure: int = 2_000,
        telemetry: TelemetryConfig | None = None,
        backend: str = "object",
    ) -> "RunSpec":
        """Canonical constructor for multi-job specs."""
        return cls(
            config, "workload", 0.0, warmup, measure, telemetry, workload,
            backend=backend,
        )

    # ------------------------------------------------------------------
    def label(self) -> str:
        """Short human-readable tag for logs and progress lines."""
        if self.scenario is not None:
            return (
                f"{self.config.routing}/scenario[{self.scenario.scheduler},"
                f"{self.scenario.horizon}cyc] (h={self.config.h})"
            )
        if self.workload is not None:
            return (
                f"{self.config.routing}/workload[{len(self.workload.jobs)} jobs]"
                f" (h={self.config.h})"
            )
        return (
            f"{self.config.routing}/{self.pattern_spec}/{self.load:g}"
            f" (h={self.config.h})"
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        out = {
            "config": json.loads(self.config.to_json()),
            "pattern_spec": self.pattern_spec,
            "load": self.load,
            "warmup": self.warmup,
            "measure": self.measure,
        }
        if self.workload is not None:
            out["workload"] = self.workload.to_jsonable()
        if self.max_windows is not None:
            out["max_windows"] = self.max_windows
        if self.scenario is not None:
            out["scenario"] = self.scenario.to_jsonable()
        return out

    @classmethod
    def from_jsonable(cls, data: dict) -> "RunSpec":
        if not isinstance(data, dict):
            raise ValueError("RunSpec JSON must be an object")
        known = {
            "config", "pattern_spec", "load", "warmup", "measure",
            "workload", "max_windows", "scenario",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunSpec keys: {sorted(unknown)}")
        workload = data.get("workload")
        scenario = data.get("scenario")
        return cls(
            config=SimulationConfig.from_json(json.dumps(data["config"])),
            pattern_spec=data["pattern_spec"],
            load=data["load"],
            warmup=data["warmup"],
            measure=data["measure"],
            workload=WorkloadSpec.from_jsonable(workload)
            if workload is not None
            else None,
            max_windows=data.get("max_windows"),
            scenario=ScenarioSpec.from_jsonable(scenario)
            if scenario is not None
            else None,
        )

    def to_json(self) -> str:
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_jsonable(json.loads(text))

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash of this spec (the result-store key).

        The hash covers the canonical JSON form with sorted keys, so it
        is independent of field declaration order, process, platform and
        session.  Floats round-trip through ``repr`` inside ``json``, so
        distinct loads (0.1 vs 0.1000001) never collide.
        """
        payload = self.to_jsonable()
        payload["v"] = FINGERPRINT_VERSION
        blob = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
