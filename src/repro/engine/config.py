"""Simulation configuration.

:meth:`SimulationConfig.paper` reproduces the Methodology section (§V)
verbatim: a maximum-size dragonfly with ``h = 6`` (5,256 nodes, 876
routers in 73 groups), 8-phit packets, 10-cycle local and 100-cycle
global links, 32-phit local and 256-phit global FIFOs, 3 VCs on local
and injection ports, 2 on global ports, a 3-iteration separable LRS
allocator, and the variable misrouting threshold ``Th_min = 0``,
``Th_non-min = 0.9 * Q_min``.

:meth:`SimulationConfig.small` scales the network down (default
``h = 2``) for tests and laptop-scale experiment sweeps; every
topological law the paper studies is a function of ``h`` and holds at
these sizes.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace

ESCAPE_NONE = "none"
ESCAPE_PHYSICAL = "physical"
ESCAPE_EMBEDDED = "embedded"

ROUTINGS = ("min", "val", "ugal", "pb", "par", "ofar", "ofar-l")


@dataclass(frozen=True)
class ThresholdConfig:
    """Misrouting thresholds of §IV-B.

    Misrouting is considered only when the minimal output is unavailable
    (busy, claimed by another input this cycle, or without credits) and
    its estimated downstream occupancy ``Q_min`` is at least ``th_min``.
    A nonminimal output with occupancy ``Q`` is then eligible iff
    ``Q <= Th_non-min`` where::

        Th_non-min = relative_factor * Q_min     (variable policy)
        Th_non-min = th_nonmin                   (static policy)

    The paper's default is the variable policy with ``th_min = 0`` and
    ``relative_factor = 0.9``; §IV-B also discusses a static policy
    (``th_min = 1.0``, ``th_nonmin = 0.4``) which is provided for the
    ablation benchmarks.
    """

    th_min: float = 0.0
    relative_factor: float | None = 0.9
    th_nonmin: float = 0.4

    def nonmin_threshold(self, q_min: float) -> float:
        """Occupancy ceiling for eligible nonminimal outputs."""
        if self.relative_factor is not None:
            return self.relative_factor * q_min
        return self.th_nonmin

    def eligible(self, occupancy: float, q_min: float) -> bool:
        """Whether a nonminimal output with ``occupancy`` may be used.

        The variable policy compares *strictly* ("queues that have less
        than 0.9 times the occupancy of the minimal one", §IV-B/§V), so
        an idle minimal queue — ``Q_min = 0`` — admits no candidates and
        benign traffic is not misrouted.  The static policy is a plain
        ceiling (``Q <= Th_non-min``).
        """
        if self.relative_factor is not None:
            return occupancy < self.relative_factor * q_min
        return occupancy <= self.th_nonmin

    @classmethod
    def variable(cls, factor: float = 0.9, th_min: float = 0.0) -> "ThresholdConfig":
        """The paper's default variable policy."""
        return cls(th_min=th_min, relative_factor=factor)

    @classmethod
    def static(cls, th_min: float = 1.0, th_nonmin: float = 0.4) -> "ThresholdConfig":
        """The static policy example of §IV-B."""
        return cls(th_min=th_min, relative_factor=None, th_nonmin=th_nonmin)


@dataclass(frozen=True)
class SimulationConfig:
    """Complete parameter set for one simulation."""

    # --- topology -----------------------------------------------------
    h: int = 2
    # --- packets / links ----------------------------------------------
    packet_size: int = 8  # phits
    local_latency: int = 10  # cycles
    global_latency: int = 100  # cycles
    ejection_latency: int = 1  # router-to-node wire
    # --- buffering (phits per VC) ---------------------------------------
    local_buffer: int = 32
    global_buffer: int = 256
    injection_buffer: int = 32
    ring_buffer: int = 256  # physical escape ring FIFOs
    # --- virtual channels ----------------------------------------------
    local_vcs: int = 3
    global_vcs: int = 2
    injection_vcs: int = 3
    ring_vcs: int = 3  # physical ring ("same number of VCs for regularity")
    # --- router --------------------------------------------------------
    allocator_iterations: int = 3
    # §VIII "ongoing work" extension: input buffers with multiple read
    # ports.  A port with R read ports can launch up to R packets per
    # cycle (from different VCs) into the crossbar; since OFAR does not
    # rely on VCs for deadlock freedom, a 1-VC buffer with 2-3 read
    # ports is the paper's conjectured "more scalable and efficient
    # design".  Default 1 = the classic router used everywhere else.
    input_read_ports: int = 1
    # --- routing ---------------------------------------------------------
    routing: str = "ofar"
    thresholds: ThresholdConfig = field(default_factory=ThresholdConfig)
    # §IV-A misroute-type policy for *in-transit* (local/global queue)
    # packets in the source group: "local-first" is the paper's policy
    # ("packets in local queues are first misrouted locally, and then
    # globally"), which it argues prevents starvation of the nodes on
    # the hot router; "global-first" is the naive alternative, kept as
    # an ablation that makes that starvation measurable.
    ofar_transit_misroute: str = "local-first"
    escape: str = ESCAPE_PHYSICAL
    max_ring_exits: int = 4  # livelock bound of §IV-C
    # Cycles a head packet must stay blocked (minimal output out of
    # credits, no eligible misroute) before it requests the escape ring.
    # The paper requests the escape output as soon as a packet "cannot
    # advance", but with its deep 256-phit global FIFOs such hard
    # blocking is persistent when it happens; with scaled-down buffers a
    # momentary credit shortage would otherwise stampede traffic onto
    # the low-capacity ring and congest it.  One packet-time of
    # patience restores the paper's behaviour (ring used only as a last
    # resort) without affecting deadlock freedom — a blocked packet
    # still requests the ring eventually.
    escape_patience: int = 8
    # Number of edge-disjoint Hamiltonian escape rings (1..h).  More
    # than one ring is the §VII fault-tolerance extension: the escape
    # subnetwork stays functional while at least one ring is intact.
    escape_rings: int = 1
    # §VII "ongoing work" extension: simple congestion management by
    # injection restriction.  When enabled, a node may not inject while
    # the mean estimated occupancy of its router's local+global output
    # channels exceeds congestion_threshold.  This prevents the
    # post-saturation congestion collapse that Fig. 9 demonstrates
    # (and the paper defers to future work); disabled by default to
    # match the paper's evaluated configuration.
    congestion_control: bool = False
    congestion_threshold: float = 0.65
    # UGAL-L / PB injection decision: minimal iff q_min <= 2*q_val + offset
    # (phits; the nonminimal path is ~2x longer, hence the factor 2).
    ugal_offset: int = 8
    # PB: a global channel is flagged saturated when its estimated
    # downstream occupancy exceeds this fraction; flags reach the rest of
    # the group after pb_update_period cycles (the local link latency).
    pb_threshold: float = 0.35
    pb_update_period: int | None = None  # default: local_latency
    # --- misc -----------------------------------------------------------
    seed: int = 1
    deadlock_cycles: int = 20_000  # watchdog: no movement for this long

    def __post_init__(self) -> None:
        if self.routing not in ROUTINGS:
            raise ValueError(f"unknown routing {self.routing!r}; choose from {ROUTINGS}")
        if self.escape not in (ESCAPE_NONE, ESCAPE_PHYSICAL, ESCAPE_EMBEDDED):
            raise ValueError(f"unknown escape mode {self.escape!r}")
        if self.routing in ("ofar", "ofar-l") and self.escape == ESCAPE_NONE:
            raise ValueError("OFAR requires an escape subnetwork (physical or embedded)")
        if self.packet_size <= 0:
            raise ValueError("packet_size must be positive")
        if self.input_read_ports < 1:
            raise ValueError("input_read_ports must be >= 1")
        if self.ofar_transit_misroute not in ("local-first", "global-first"):
            raise ValueError(
                "ofar_transit_misroute must be 'local-first' or 'global-first'"
            )
        for name, vcs, buf in (
            ("local", self.local_vcs, self.local_buffer),
            ("global", self.global_vcs, self.global_buffer),
            ("injection", self.injection_vcs, self.injection_buffer),
        ):
            if vcs < 1:
                raise ValueError(f"{name}_vcs must be >= 1")
            if buf < self.packet_size:
                raise ValueError(
                    f"{name}_buffer ({buf}) must hold a whole packet "
                    f"({self.packet_size} phits) for virtual cut-through"
                )
        if self.escape != ESCAPE_NONE and not 1 <= self.escape_rings <= self.h:
            raise ValueError(
                f"escape_rings must be in [1, h={self.h}], got {self.escape_rings}"
            )
        # Bubble flow control needs room for two whole packets in a ring
        # buffer, otherwise the escape network can never accept traffic
        # and loses its deadlock-freedom guarantee.
        if self.escape == ESCAPE_PHYSICAL and self.ring_buffer < 2 * self.packet_size:
            raise ValueError(
                f"ring_buffer ({self.ring_buffer}) must hold two packets "
                f"({2 * self.packet_size} phits) for bubble flow control"
            )
        if self.escape == ESCAPE_EMBEDDED:
            small = min(self.local_buffer, self.global_buffer)
            if small < 2 * self.packet_size:
                raise ValueError(
                    "an embedded escape ring needs local/global buffers of at "
                    f"least two packets ({2 * self.packet_size} phits) for "
                    "bubble flow control"
                )
        if self.routing in ("min", "val", "ugal", "pb", "par"):
            # Ascending-VC deadlock avoidance needs one VC per hop of the
            # longest path on each link class (paper §I); PAR pays one
            # extra local VC for its source-group divert (§II).
            need_local = {"min": 2, "par": 4}.get(self.routing, 3)
            need_global = 1 if self.routing == "min" else 2
            if self.local_vcs < need_local or self.global_vcs < need_global:
                raise ValueError(
                    f"routing {self.routing!r} needs >= {need_local} local and "
                    f">= {need_global} global VCs for deadlock freedom"
                )

    # ------------------------------------------------------------------
    @property
    def pb_period(self) -> int:
        """Effective PB broadcast period (defaults to the local latency)."""
        return self.pb_update_period if self.pb_update_period is not None else self.local_latency

    def with_routing(self, routing: str, **overrides) -> "SimulationConfig":
        """Copy with a different routing mechanism (and optional overrides).

        Baseline mechanisms do not use the escape subnetwork; it is
        disabled automatically unless explicitly overridden.
        """
        if "escape" not in overrides:
            if routing in ("ofar", "ofar-l"):
                overrides["escape"] = (
                    self.escape if self.escape != ESCAPE_NONE else ESCAPE_PHYSICAL
                )
            else:
                overrides["escape"] = ESCAPE_NONE
        return replace(self, routing=routing, **overrides)

    def replace(self, **overrides) -> "SimulationConfig":
        """Copy with arbitrary field overrides."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    # Serialization (experiment provenance, CLI --config)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """JSON representation (thresholds flattened into the object)."""
        data = asdict(self)
        return json.dumps(data, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SimulationConfig":
        """Inverse of :meth:`to_json`; unknown keys are rejected."""
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("config JSON must be an object")
        th = data.pop("thresholds", None)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        if th is not None:
            data["thresholds"] = ThresholdConfig(**th)
        return cls(**data)

    # ------------------------------------------------------------------
    @classmethod
    def paper(cls, routing: str = "ofar", **overrides) -> "SimulationConfig":
        """The exact §V configuration (h=6; 5,256 nodes)."""
        base = dict(
            h=6,
            packet_size=8,
            local_latency=10,
            global_latency=100,
            local_buffer=32,
            global_buffer=256,
            injection_buffer=32,
            local_vcs=3,
            global_vcs=2,
            injection_vcs=3,
            allocator_iterations=3,
            routing=routing,
            thresholds=ThresholdConfig.variable(0.9),
            escape=ESCAPE_PHYSICAL if routing in ("ofar", "ofar-l") else ESCAPE_NONE,
        )
        base.update(overrides)
        return cls(**base)

    @classmethod
    def small(cls, h: int = 2, routing: str = "ofar", **overrides) -> "SimulationConfig":
        """A scaled-down network with the paper's router parameters.

        Latencies are shortened (2-cycle local, 10-cycle global wires)
        so that warm-up windows stay proportionate; buffer sizes are
        scaled with the shorter credit round-trip times.
        """
        base = dict(
            h=h,
            packet_size=8,
            local_latency=2,
            global_latency=10,
            local_buffer=16,
            global_buffer=48,
            injection_buffer=16,
            ring_buffer=48,
            local_vcs=3,
            global_vcs=2,
            injection_vcs=3,
            allocator_iterations=3,
            routing=routing,
            thresholds=ThresholdConfig.variable(0.9),
            escape=ESCAPE_PHYSICAL if routing in ("ofar", "ofar-l") else ESCAPE_NONE,
            deadlock_cycles=5_000,
        )
        base.update(overrides)
        return cls(**base)
