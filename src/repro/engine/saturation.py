"""Saturation analysis utilities.

The paper reports saturation throughputs ("OFAR saturates at 0.45, PB
around 0.38").  Reading them off a coarse load sweep is noisy, so this
module provides:

- :func:`accepted_ratio` — one steady-state probe returning
  accepted/offered;
- :func:`find_saturation` — bisection for the highest offered load the
  network still accepts (within a tolerance), the standard definition
  of the saturation point;
- :func:`run_until_stable` — a steady-state run that extends its
  measurement window until the throughput of consecutive windows agrees,
  instead of trusting a fixed warm-up.
"""

from __future__ import annotations

from repro.engine.config import SimulationConfig
from repro.engine.metrics import LoadPoint
from repro.engine.runner import _build_steady_sim, run_steady_state
from repro.engine.runspec import RunSpec


def accepted_ratio(
    config: SimulationConfig,
    pattern_spec: str,
    load: float,
    warmup: int = 1_000,
    measure: int = 1_000,
) -> float:
    """Accepted/offered throughput ratio at one load (1.0 = keeping up)."""
    if load <= 0.0:
        raise ValueError("load must be positive")
    point = run_steady_state(config, pattern_spec, load, warmup, measure)
    return point.throughput / load


def find_saturation(
    config: SimulationConfig,
    pattern_spec: str,
    lo: float = 0.05,
    hi: float = 1.0,
    tolerance: float = 0.02,
    acceptance: float = 0.95,
    warmup: int = 1_000,
    measure: int = 1_000,
) -> float:
    """Bisect for the saturation load of (config, pattern).

    Returns the highest offered load (within ``tolerance``) at which the
    network still accepts at least ``acceptance`` of it.  If even ``lo``
    saturates, returns ``lo``; if ``hi`` does not, returns ``hi``.
    """
    if not 0 < lo < hi <= 1.0:
        raise ValueError("need 0 < lo < hi <= 1.0")
    if accepted_ratio(config, pattern_spec, lo, warmup, measure) < acceptance:
        return lo
    if accepted_ratio(config, pattern_spec, hi, warmup, measure) >= acceptance:
        return hi
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if accepted_ratio(config, pattern_spec, mid, warmup, measure) >= acceptance:
            lo = mid
        else:
            hi = mid
    return lo


def run_until_stable(
    config: SimulationConfig,
    pattern_spec: str,
    load: float,
    window: int = 1_000,
    rel_tol: float = 0.03,
    max_windows: int = 12,
) -> LoadPoint:
    """Steady-state measurement with automatic convergence detection.

    Runs one warm-up window, then measures in ``window``-cycle chunks
    until two consecutive windows' throughputs agree within ``rel_tol``
    (or ``max_windows`` elapse); returns the final window's LoadPoint.

    The simulator comes from the run layer's shared builder
    (:func:`~repro.engine.runner._build_steady_sim`) via an ordinary
    :class:`RunSpec`, so a saturation probe at ``(config, pattern,
    load)`` observes the *same* trajectory as a sweep point there —
    same pattern/generator seed derivation, per-source recording
    included.  (It used to hand-build its simulator with private RNG
    salts, making probe points incomparable to sweep points.)  Only the
    windowed-convergence loop is specific to this function; with
    ``max_windows=1`` the result is bit-identical to
    :func:`~repro.engine.runner.run_spec` at ``warmup=measure=window``.
    """
    spec = RunSpec(config, pattern_spec, load, warmup=window, measure=window)
    sim = _build_steady_sim(spec)
    sim.warm_up(window)
    previous: float | None = None
    point = None
    for _ in range(max_windows):
        sim.metrics.reset(sim.cycle)
        sim.run(window)
        point = sim.metrics.load_point(load, sim.cycle)
        if previous is not None:
            scale = max(previous, point.throughput, 1e-9)
            if abs(point.throughput - previous) / scale <= rel_tol:
                return point
        previous = point.throughput
    assert point is not None
    return point
