"""Saturation analysis utilities.

The paper reports saturation throughputs ("OFAR saturates at 0.45, PB
around 0.38").  Reading them off a coarse load sweep is noisy, so this
module provides:

- :func:`accepted_ratio` — one steady-state probe returning
  accepted/offered;
- :func:`find_saturation` — bisection for the highest offered load the
  network still accepts (within a tolerance), the standard definition
  of the saturation point;
- :func:`run_until_stable` — a steady-state run that extends its
  measurement window until the throughput of consecutive windows agrees,
  instead of trusting a fixed warm-up.
"""

from __future__ import annotations

from repro.engine.config import SimulationConfig
from repro.engine.metrics import LoadPoint
from repro.engine.runner import _pattern_rng, run_steady_state
from repro.engine.simulator import Simulator
from repro.traffic.generators import BernoulliTraffic
from repro.traffic.patterns import make_pattern


def accepted_ratio(
    config: SimulationConfig,
    pattern_spec: str,
    load: float,
    warmup: int = 1_000,
    measure: int = 1_000,
) -> float:
    """Accepted/offered throughput ratio at one load (1.0 = keeping up)."""
    if load <= 0.0:
        raise ValueError("load must be positive")
    point = run_steady_state(config, pattern_spec, load, warmup, measure)
    return point.throughput / load


def find_saturation(
    config: SimulationConfig,
    pattern_spec: str,
    lo: float = 0.05,
    hi: float = 1.0,
    tolerance: float = 0.02,
    acceptance: float = 0.95,
    warmup: int = 1_000,
    measure: int = 1_000,
) -> float:
    """Bisect for the saturation load of (config, pattern).

    Returns the highest offered load (within ``tolerance``) at which the
    network still accepts at least ``acceptance`` of it.  If even ``lo``
    saturates, returns ``lo``; if ``hi`` does not, returns ``hi``.
    """
    if not 0 < lo < hi <= 1.0:
        raise ValueError("need 0 < lo < hi <= 1.0")
    if accepted_ratio(config, pattern_spec, lo, warmup, measure) < acceptance:
        return lo
    if accepted_ratio(config, pattern_spec, hi, warmup, measure) >= acceptance:
        return hi
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if accepted_ratio(config, pattern_spec, mid, warmup, measure) >= acceptance:
            lo = mid
        else:
            hi = mid
    return lo


def run_until_stable(
    config: SimulationConfig,
    pattern_spec: str,
    load: float,
    window: int = 1_000,
    rel_tol: float = 0.03,
    max_windows: int = 12,
) -> LoadPoint:
    """Steady-state measurement with automatic convergence detection.

    Runs one warm-up window, then measures in ``window``-cycle chunks
    until two consecutive windows' throughputs agree within ``rel_tol``
    (or ``max_windows`` elapse); returns the final window's LoadPoint.
    """
    sim = Simulator(config)
    topo = sim.network.topo
    pattern = make_pattern(topo, _pattern_rng(config, 0xE7), pattern_spec)
    sim.generator = BernoulliTraffic(
        pattern, load, config.packet_size, topo.num_nodes, config.seed ^ 0x3C3C
    )
    sim.warm_up(window)
    previous: float | None = None
    point = None
    for _ in range(max_windows):
        sim.metrics.reset(sim.cycle)
        sim.run(window)
        point = sim.metrics.load_point(load, sim.cycle)
        if previous is not None:
            scale = max(previous, point.throughput, 1e-9)
            if abs(point.throughput - previous) / scale <= rel_tol:
                return point
        previous = point.throughput
    assert point is not None
    return point
