"""Saturation analysis utilities.

The paper reports saturation throughputs ("OFAR saturates at 0.45, PB
around 0.38").  Reading them off a coarse load sweep is noisy, so this
module provides:

- :func:`accepted_ratio` — one steady-state probe returning
  accepted/offered;
- :func:`find_saturation` — bisection for the highest offered load the
  network still accepts (within a tolerance), the standard definition
  of the saturation point;
- :func:`run_until_stable` — a steady-state run that extends its
  measurement window until the throughput of consecutive windows agrees,
  instead of trusting a fixed warm-up.
"""

from __future__ import annotations

from repro.engine.backend import default_backend
from repro.engine.config import SimulationConfig
from repro.engine.metrics import LoadPoint
from repro.engine.runner import _measure_windows, build_steady_sim, run_spec
from repro.engine.runspec import RunSpec


def accepted_ratio(
    config: SimulationConfig,
    pattern_spec: str,
    load: float,
    warmup: int = 1_000,
    measure: int = 1_000,
) -> float:
    """Accepted/offered throughput ratio at one load (1.0 = keeping up)."""
    if load <= 0.0:
        raise ValueError("load must be positive")
    point = run_spec(
        RunSpec(config, pattern_spec, load, warmup, measure,
                backend=default_backend())
    )
    return point.throughput / load


def find_saturation(
    config: SimulationConfig,
    pattern_spec: str,
    lo: float = 0.05,
    hi: float = 1.0,
    tolerance: float = 0.02,
    acceptance: float = 0.95,
    warmup: int = 1_000,
    measure: int = 1_000,
) -> float:
    """Bisect for the saturation load of (config, pattern).

    Returns the highest offered load (within ``tolerance``) at which the
    network still accepts at least ``acceptance`` of it.  If even ``lo``
    saturates, returns ``lo``; if ``hi`` does not, returns ``hi``.
    """
    if not 0 < lo < hi <= 1.0:
        raise ValueError("need 0 < lo < hi <= 1.0")
    if accepted_ratio(config, pattern_spec, lo, warmup, measure) < acceptance:
        return lo
    if accepted_ratio(config, pattern_spec, hi, warmup, measure) >= acceptance:
        return hi
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        if accepted_ratio(config, pattern_spec, mid, warmup, measure) >= acceptance:
            lo = mid
        else:
            hi = mid
    return lo


def run_until_stable(
    config: SimulationConfig,
    pattern_spec: str,
    load: float,
    window: int = 1_000,
    rel_tol: float = 0.03,
    max_windows: int = 12,
) -> LoadPoint:
    """Steady-state measurement with automatic convergence detection.

    Runs one warm-up window, then measures in ``window``-cycle chunks
    until two consecutive windows' throughputs agree within ``rel_tol``
    (or ``max_windows`` elapse); returns the final window's LoadPoint.

    The simulator comes from the run layer's shared builder
    (:func:`~repro.engine.runner.build_steady_sim`) via an ordinary
    :class:`RunSpec` with ``max_windows`` set, so a saturation probe at
    ``(config, pattern, load)`` observes the *same* trajectory as a
    sweep point there — same pattern/generator seed derivation,
    per-source recording included.  (It used to hand-build its
    simulator with private RNG salts, making probe points incomparable
    to sweep points.)  The measurement loop itself is the runner's
    :func:`~repro.engine.runner._measure_windows` — the same protocol
    ``repro sweep --saturating`` and the campaign ``{saturating,
    points, max_windows}`` shorthand request — so with the default
    ``rel_tol`` this call is bit-identical to ``run_spec`` of that
    spec; with ``max_windows=1`` it is bit-identical to ``run_spec``
    at fixed ``warmup=measure=window``.
    """
    spec = RunSpec(
        config, pattern_spec, load, warmup=window, measure=window,
        max_windows=max_windows, backend=default_backend(),
    )
    sim = build_steady_sim(spec)
    sim.warm_up(window)
    return _measure_windows(sim, spec, rel_tol=rel_tol)
