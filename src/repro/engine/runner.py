"""Experiment runners: steady state, load sweeps, transients, bursts.

These wrap :class:`~repro.engine.simulator.Simulator` with the paper's
measurement protocols so experiment drivers and benchmarks stay
declarative.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.engine.backend import EngineBackend, resolve_backend
from repro.engine.config import SimulationConfig
from repro.engine.metrics import LoadPoint
from repro.engine.runspec import RunSpec
from repro.engine.simulator import Simulator
from repro.traffic.generators import BernoulliTraffic, BurstTraffic, TransientTraffic
from repro.traffic.patterns import make_pattern

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.config import TelemetryConfig
    from repro.telemetry.sampler import TelemetrySeries

#: Convergence tolerance of the windowed measurement protocol
#: (``RunSpec.max_windows``): consecutive windows whose throughputs
#: agree within this relative tolerance end the run.
STABLE_REL_TOL = 0.03


def _pattern_rng(config: SimulationConfig, salt: int) -> random.Random:
    """Dedicated RNG for destination choices, decoupled from the
    router-level RNG so routing decisions don't perturb the workload."""
    return random.Random((config.seed << 16) ^ salt)


def build_steady_sim(
    spec: RunSpec, backend: "EngineBackend | None" = None
) -> Simulator:
    """Fresh simulator + Bernoulli generator for one steady-state spec.

    The simulator class comes from the spec's engine backend
    (:func:`~repro.engine.backend.resolve_backend`); the generator
    wiring — pattern RNG salt, Bernoulli seed derivation, per-source
    recording — is backend-independent, which is what makes backends
    interchangeable at the trajectory level.

    Per-source ejected counts are always recorded so every steady point
    reports the Jain index / worst-source share in its LoadPoint; the
    counters are observation only (no RNG draws), so the rest of the
    point is unchanged.
    """
    if backend is None:
        backend = resolve_backend(spec)
    config = spec.config
    sim = backend.simulator(config, record_per_source=True)
    pattern = make_pattern(sim.network.topo, _pattern_rng(config, 0xA5), spec.pattern_spec)
    sim.generator = BernoulliTraffic(
        pattern, spec.load, config.packet_size, sim.network.topo.num_nodes,
        config.seed ^ 0x5A5A,
    )
    return sim


# Pre-redesign private name; the snapshot/checkpoint layers and external
# scripts reached for it long enough that keeping the alias is cheaper
# than the churn.
_build_steady_sim = build_steady_sim


def _measure_windows(
    sim: Simulator, spec: RunSpec, rel_tol: float = STABLE_REL_TOL
) -> LoadPoint:
    """The windowed-convergence measurement loop (``spec.max_windows``).

    Measures in ``spec.measure``-cycle windows until two consecutive
    windows' throughputs agree within ``rel_tol`` (or ``max_windows``
    elapse); returns the final window's LoadPoint.  With
    ``max_windows=1`` this is bit-identical to the fixed-window path.
    """
    assert spec.max_windows is not None
    previous: float | None = None
    point = None
    for _ in range(spec.max_windows):
        sim.metrics.reset(sim.cycle)
        sim.run(spec.measure)
        point = sim.metrics.load_point(spec.load, sim.cycle)
        if previous is not None:
            scale = max(previous, point.throughput, 1e-9)
            if abs(point.throughput - previous) / scale <= rel_tol:
                return point
        previous = point.throughput
    assert point is not None
    return point


def run_spec(spec: RunSpec) -> LoadPoint:
    """Warm up, measure, and summarize one :class:`RunSpec` point.

    This is the canonical steady-state entry point; everything else
    (the parallel pool, the orchestrator, the campaign runner) is a
    wrapper that constructs a ``RunSpec`` and lands here.  The engine
    executing the point is chosen by ``spec.backend`` via
    :func:`~repro.engine.backend.resolve_backend`.

    Multi-job specs (``spec.workload``) dispatch to the workload runner
    and report the *global* LoadPoint; use
    :func:`repro.workloads.runner.run_workload` directly for the
    per-job breakdown.  Specs with ``max_windows`` set measure with the
    windowed-convergence protocol (:func:`_measure_windows`) instead of
    one fixed window.
    """
    if spec.scenario is not None:
        from repro.cluster.runner import run_scenario

        return run_scenario(spec).total
    if spec.workload is not None:
        from repro.workloads.runner import run_workload

        return run_workload(spec).total
    sim = resolve_backend(spec).build(spec)
    sim.warm_up(spec.warmup)
    if spec.max_windows is not None:
        return _measure_windows(sim, spec)
    sim.run(spec.measure)
    return sim.metrics.load_point(spec.load, sim.cycle)


def run_spec_with_telemetry(
    spec: RunSpec, telemetry: "TelemetryConfig | None" = None
):
    """:func:`run_spec` with an in-run telemetry sampler attached.

    Returns ``(LoadPoint, TelemetrySeries | None)``.  The sampler covers
    the *measurement* window (attached after warm-up, exactly when the
    metrics window resets).  The effective config is ``telemetry`` if
    given, else ``spec.telemetry``; when both are None the series is
    None and this is exactly :func:`run_spec`.  The LoadPoint is
    bit-identical either way — observation never perturbs (the
    determinism fingerprint's ``--telemetry`` mode asserts this).
    """
    from repro.telemetry.sampler import TelemetrySampler

    cfg = telemetry if telemetry is not None else spec.telemetry
    if cfg is None:
        return run_spec(spec), None
    if spec.scenario is not None:
        from repro.cluster.runner import run_scenario_with_telemetry

        result, series = run_scenario_with_telemetry(spec, cfg)
        return result.total, series
    if spec.workload is not None:
        from repro.workloads.runner import run_workload_with_telemetry

        result, series = run_workload_with_telemetry(spec, cfg)
        return result.total, series
    sim = resolve_backend(spec).build(spec)
    sim.warm_up(spec.warmup)
    sampler = TelemetrySampler(sim, cfg)
    sampler.attach()
    if spec.max_windows is not None:
        point = _measure_windows(sim, spec)
    else:
        sim.run(spec.measure)
        point = sim.metrics.load_point(spec.load, sim.cycle)
    return point, sampler.finish()


def run_load_sweep(
    config: SimulationConfig,
    pattern_spec: str,
    loads: list[float],
    warmup: int = 2_000,
    measure: int = 2_000,
) -> list[LoadPoint]:
    """One steady-state point per offered load (fresh simulator each).

    A thin wrapper over the orchestrator's in-process mode: identical
    results to calling :func:`run_spec` in a loop, with failures
    propagating as the original exception.
    """
    from repro.engine.orchestrator import Orchestrator

    specs = [RunSpec(config, pattern_spec, load, warmup, measure) for load in loads]
    return Orchestrator(workers=0, retries=0).run_points(specs)


@dataclass
class TransientResult:
    """Latency-vs-send-cycle series around a traffic pattern switch."""

    switch_cycle: int
    series: list[tuple[int, float]]  # (send cycle bucket, avg latency)
    # In-run telemetry covering the whole transient (None unless
    # run_transient was given a TelemetryConfig).
    telemetry: "TelemetrySeries | None" = None

    def average_latency(self, start: int, end: int) -> float:
        """Mean of the series over send cycles in [start, end)."""
        vals = [lat for cyc, lat in self.series if start <= cyc < end]
        if not vals:
            raise ValueError(f"no samples in [{start}, {end})")
        return sum(vals) / len(vals)

    def settle_cycle(self, target: float, after: int) -> int | None:
        """First send-cycle >= ``after`` from which latency stays <= target.

        Returns None when the series never settles.  This quantifies the
        'adaptation period' visible in Fig. 6.
        """
        settled_from = None
        for cyc, lat in self.series:
            if cyc < after:
                continue
            if lat <= target:
                if settled_from is None:
                    settled_from = cyc
            else:
                settled_from = None
        return settled_from


def _build_transient_sim(
    config: SimulationConfig,
    before_spec: str,
    after_spec: str,
    load: float,
    warmup: int,
    bucket: int,
    backend: str = "object",
) -> Simulator:
    """Fresh simulator + two-phase generator for one transient run."""
    from repro.engine.backend import get_backend

    sim = get_backend(backend).simulator(
        config, record_send_latency=True, send_bucket=bucket
    )
    topo = sim.network.topo
    phases = [
        (0, make_pattern(topo, _pattern_rng(config, 0xB0), before_spec)),
        (warmup, make_pattern(topo, _pattern_rng(config, 0xB1), after_spec)),
    ]
    sim.generator = TransientTraffic(
        phases, load, config.packet_size, topo.num_nodes, config.seed ^ 0x7171
    )
    return sim


def run_transient(
    config: SimulationConfig,
    before_spec: str,
    after_spec: str,
    load: float,
    warmup: int = 3_000,
    post: int = 3_000,
    drain_margin: int = 4_000,
    bucket: int = 20,
    telemetry: "TelemetryConfig | None" = None,
    backend: str = "object",
) -> TransientResult:
    """Fig. 6 protocol: warm up with one pattern, switch, watch latency.

    The returned series covers send cycles in [0, warmup + post); the
    simulation continues ``drain_margin`` extra cycles so late packets
    from the reported range are (almost) all accounted.

    With a ``telemetry`` config, a sampler watches the *whole* run
    (warm-up, switch, drain) so the utilization spike at the switch is
    in the series; sample cycles line up directly with send cycles
    (both count from 0) and ``switch_cycle`` marks the transition.
    """
    sim = _build_transient_sim(
        config, before_spec, after_spec, load, warmup, bucket, backend
    )
    sampler = None
    if telemetry is not None:
        from repro.telemetry.sampler import TelemetrySampler

        sampler = TelemetrySampler(sim, telemetry)
        sampler.attach()
    sim.run(warmup + post + drain_margin)
    series = [
        (cyc, lat) for cyc, lat in sim.metrics.send_latency_series() if cyc < warmup + post
    ]
    return TransientResult(
        switch_cycle=warmup,
        series=series,
        telemetry=sampler.finish() if sampler is not None else None,
    )


def run_transient_forked(
    config: SimulationConfig,
    before_spec: str,
    after_specs: list[str],
    load: float,
    warmup: int = 3_000,
    post: int = 3_000,
    drain_margin: int = 4_000,
    bucket: int = 20,
    backend: str = "object",
) -> list[TransientResult]:
    """Fig. 6 protocol over N after-patterns with ONE shared warm-up.

    Warms up a single simulator under ``before_spec``, snapshots the
    warmed state (:mod:`repro.snapshot`), and branches one measurement
    per entry of ``after_specs`` from it.  Each returned result is
    bit-identical to the corresponding individually-warmed
    :func:`run_transient` call, because nothing before the switch cycle
    depends on the after-pattern: the warm trajectory (before-pattern
    RNG, Bernoulli stream, router RNG) is shared, and the one piece of
    state that *is* after-pattern-specific — the salt-0xB1 pattern RNG,
    advanced only at pattern construction — is re-pinned to each fresh
    variant's own post-construction state after the overlay.

    Cost: ``warmup + N*(post + drain_margin)`` simulated cycles instead
    of ``N*(warmup + post + drain_margin)``.
    """
    if not after_specs:
        raise ValueError("after_specs must name at least one pattern")
    from repro.snapshot import Snapshot
    from repro.snapshot.codec import _walk_pattern_rngs

    base = _build_transient_sim(
        config, before_spec, after_specs[0], load, warmup, bucket, backend
    )
    base.run(warmup)
    snap = Snapshot.capture(base)

    results = []
    for after_spec in after_specs:
        sim = _build_transient_sim(
            config, before_spec, after_spec, load, warmup, bucket, backend
        )
        # The variant's own after-phase RNG state (post-construction —
        # e.g. a permutation pattern draws its mapping at build time).
        own = [
            (rng, rng.getstate())
            for rng in _walk_pattern_rngs(sim.generator.phases[1][1])
        ]
        snap.restore_into(sim)
        for rng, state in own:
            rng.setstate(state)
        sim.run(post + drain_margin)
        series = [
            (cyc, lat)
            for cyc, lat in sim.metrics.send_latency_series()
            if cyc < warmup + post
        ]
        results.append(TransientResult(switch_cycle=warmup, series=series))
    return results


@dataclass
class BurstResult:
    """Fig. 7 protocol result: time to consume a fixed backlog."""

    completion_cycle: int
    total_packets: int
    avg_latency: float
    avg_hops: float
    ring_fraction: float

    @property
    def packets_per_cycle(self) -> float:
        return self.total_packets / self.completion_cycle


def run_burst(
    config: SimulationConfig,
    pattern_spec: str,
    packets_per_node: int,
    max_cycles: int = 2_000_000,
    backend: str = "object",
) -> BurstResult:
    """Inject a fixed per-node backlog and time its full consumption."""
    from repro.engine.backend import get_backend

    sim = get_backend(backend).simulator(config)
    topo = sim.network.topo
    pattern = make_pattern(topo, _pattern_rng(config, 0xC2), pattern_spec)
    sim.generator = BurstTraffic(pattern, packets_per_node, topo.num_nodes)
    completion = sim.run_until_drained(max_cycles)
    m = sim.metrics
    # NaN, not 0.0, when nothing was ejected — same empty-window rule as
    # Metrics.load_point (a burst always ejects, but keep the emitters
    # honest).
    n = m.ejected_packets if m.ejected_packets > 0 else float("nan")
    return BurstResult(
        completion_cycle=completion,
        total_packets=m.ejected_packets,
        avg_latency=m.latency_sum / n,
        avg_hops=m.hops_sum / n,
        ring_fraction=m.ring_packets / n,
    )
