"""Measurement machinery.

The paper reports three kinds of numbers, all supported here:

- **steady state** (Figs. 3-5, 8, 9): average packet latency and
  accepted throughput in phits/(node·cycle) over a measurement window
  that starts after warm-up (``Metrics.reset``);
- **transients** (Fig. 6): the average latency of the packets *sent*
  in each cycle — a received packet's latency is accounted to the cycle
  it was created in (enable with ``record_send_latency``);
- **bursts** (Fig. 7): the cycle at which the last packet of a fixed
  backlog is consumed (tracked by the runner via
  ``ejected_packets``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields

from repro.network.packet import Packet


def percentile_from_histogram(
    histogram: dict[int, int], bucket_width: int, fraction: float
) -> float:
    """Percentile estimate from a bucketed histogram.

    ``histogram`` maps bucket index -> count, where bucket ``b`` covers
    values ``[b * bucket_width, (b + 1) * bucket_width)``.  Returns the
    upper edge of the bucket containing the requested fraction of the
    population; 0.0 when the histogram is empty.  Shared by
    :meth:`Metrics.latency_percentile` and the telemetry sampler's
    per-window latency digest, so the two report comparable numbers.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    need = fraction * total
    seen = 0
    for bucket in sorted(histogram):
        seen += histogram[bucket]
        if seen >= need:
            return (bucket + 1) * bucket_width
    return (max(histogram) + 1) * bucket_width


@dataclass
class LoadPoint:
    """One point of a latency/throughput-vs-load curve."""

    offered_load: float  # phits/(node*cycle) requested from the generator
    throughput: float  # accepted phits/(node*cycle) in the window
    avg_latency: float  # cycles, generation -> complete ejection
    avg_network_latency: float  # cycles, injection -> complete ejection
    avg_hops: float
    avg_local_hops: float
    avg_global_hops: float
    p50_latency: float  # median latency (histogram estimate)
    p99_latency: float  # tail latency (histogram estimate)
    ejected_packets: int
    window_cycles: int
    ring_fraction: float  # fraction of ejected packets that used the ring
    local_misroute_rate: float  # nonminimal local hops per ejected packet
    global_misroute_rate: float  # nonminimal global hops per ejected packet
    # Fairness over per-source ejected counts (NaN when the run did not
    # record per-source counts; see Metrics.record_per_source).
    jain_index: float = float("nan")
    worst_source_share: float = float("nan")

    def as_row(self) -> dict:
        """Flat dict for CSV/markdown emission.

        Per-packet averages of an empty measurement window are NaN (see
        :meth:`Metrics.load_point`); they are emitted as None so CSV and
        markdown render an empty cell instead of a misleading 0.0.
        """

        def cell(value: float, digits: int):
            return None if value != value else round(value, digits)  # NaN-safe

        return {
            "load": round(self.offered_load, 4),
            "throughput": round(self.throughput, 4),
            "latency": cell(self.avg_latency, 1),
            "net_latency": cell(self.avg_network_latency, 1),
            "hops": cell(self.avg_hops, 2),
            "p50": round(self.p50_latency, 1),
            "p99": round(self.p99_latency, 1),
            "ring_frac": cell(self.ring_fraction, 4),
            "mis_local": cell(self.local_misroute_rate, 3),
            "mis_global": cell(self.global_misroute_rate, 3),
            "jain": cell(self.jain_index, 4),
            "worst_src": cell(self.worst_source_share, 4),
            "packets": self.ejected_packets,
        }

    # ------------------------------------------------------------------
    # Lossless JSON round-trip (result store, provenance files)
    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        """Exact (unrounded) dict form; NaN encoded as ``null``.

        NaN marks the per-packet averages of an empty measurement
        window (PR 1 semantics) but is not valid JSON, so it maps to
        ``null`` on the way out and back to NaN on the way in — the
        round-trip is bit-identical, NaN windows included.
        """
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = None if value != value else value  # NaN-safe
        return out

    @classmethod
    def from_jsonable(cls, data: dict) -> "LoadPoint":
        """Inverse of :meth:`to_jsonable`; unknown/missing keys are errors."""
        if not isinstance(data, dict):
            raise ValueError("LoadPoint JSON must be an object")
        names = {f.name for f in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown LoadPoint keys: {sorted(unknown)}")
        # The fairness fields arrived after the store format froze; older
        # entries simply lack them and read back as NaN ("not recorded").
        optional = {"jain_index", "worst_source_share"}
        missing = names - set(data) - optional
        if missing:
            raise ValueError(f"missing LoadPoint keys: {sorted(missing)}")
        return cls(**{
            name: float("nan") if data.get(name) is None else data[name]
            for name in names if name in data or name in optional
        })

    def to_json(self) -> str:
        return json.dumps(self.to_jsonable(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LoadPoint":
        return cls.from_jsonable(json.loads(text))


@dataclass
class JobMetrics:
    """Windowed counters of one job of a multi-job workload.

    Maintained by :class:`Metrics` when ``record_per_job`` is on; the
    field meanings mirror the global counters, restricted to packets
    tagged with this job's id (see :attr:`~repro.network.packet.Packet.job`).
    """

    generated: int = 0
    injected: int = 0
    ejected: int = 0
    ejected_phits: int = 0
    latency_sum: int = 0
    network_latency_sum: int = 0
    hops_sum: int = 0
    local_hops_sum: int = 0
    global_hops_sum: int = 0
    ring_packets: int = 0
    local_misroutes: int = 0
    global_misroutes: int = 0
    latency_histogram: dict[int, int] = field(default_factory=dict)


@dataclass
class Metrics:
    """Windowed counters, fed by the simulator's ejection hook."""

    num_nodes: int
    packet_size: int
    record_send_latency: bool = False
    send_bucket: int = 1  # cycles per send-latency bucket
    histogram_bucket: int = 4  # cycles per latency-histogram bucket
    record_per_source: bool = False  # per-source-node ejected counts
    record_per_job: bool = False  # per-job counters (multi-job workloads)

    window_start: int = 0
    generated_packets: int = 0
    injected_packets: int = 0
    ejected_packets: int = 0
    ejected_phits: int = 0
    latency_sum: int = 0
    network_latency_sum: int = 0
    hops_sum: int = 0
    local_hops_sum: int = 0
    global_hops_sum: int = 0
    ring_hops_sum: int = 0
    ring_packets: int = 0
    local_misroutes: int = 0
    global_misroutes: int = 0
    max_latency: int = 0
    send_latency: dict[int, list[int]] = field(default_factory=dict)
    latency_histogram: dict[int, int] = field(default_factory=dict)
    source_counts: dict[int, int] = field(default_factory=dict)
    job_stats: dict[int, JobMetrics] = field(default_factory=dict)

    def reset(self, cycle: int) -> None:
        """Start a fresh measurement window at ``cycle``."""
        self.window_start = cycle
        self.generated_packets = 0
        self.injected_packets = 0
        self.ejected_packets = 0
        self.ejected_phits = 0
        self.latency_sum = 0
        self.network_latency_sum = 0
        self.hops_sum = 0
        self.local_hops_sum = 0
        self.global_hops_sum = 0
        self.ring_hops_sum = 0
        self.ring_packets = 0
        self.local_misroutes = 0
        self.global_misroutes = 0
        self.max_latency = 0
        self.send_latency = {}
        self.latency_histogram = {}
        self.source_counts = {}
        self.job_stats = {}

    # ------------------------------------------------------------------
    def on_generate(self, count: int = 1) -> None:
        self.generated_packets += count

    def on_inject(self, pkt: Packet) -> None:
        self.injected_packets += 1
        if self.record_per_job and pkt.job >= 0:
            self.job(pkt.job).injected += 1

    # ------------------------------------------------------------------
    # Per-job attribution (multi-job workloads)
    # ------------------------------------------------------------------
    def job(self, job: int) -> JobMetrics:
        """Counters of ``job``, created on first touch."""
        stats = self.job_stats.get(job)
        if stats is None:
            stats = self.job_stats[job] = JobMetrics()
        return stats

    def on_job_generate(self, job: int) -> None:
        self.job(job).generated += 1

    def on_job_inject(self, job: int) -> None:
        self.job(job).injected += 1

    def on_eject(self, pkt: Packet, cycle: int) -> None:
        self.ejected_packets += 1
        self.ejected_phits += pkt.size
        lat = cycle - pkt.created_cycle
        self.latency_sum += lat
        self.network_latency_sum += cycle - pkt.injected_cycle
        if lat > self.max_latency:
            self.max_latency = lat
        bucket = lat // self.histogram_bucket
        self.latency_histogram[bucket] = self.latency_histogram.get(bucket, 0) + 1
        if self.record_per_source:
            self.source_counts[pkt.src] = self.source_counts.get(pkt.src, 0) + 1
        self.hops_sum += pkt.hops
        self.local_hops_sum += pkt.local_hops
        self.global_hops_sum += pkt.global_hops
        self.ring_hops_sum += pkt.ring_hops
        if pkt.used_ring:
            self.ring_packets += 1
        self.local_misroutes += pkt.misroutes_local
        self.global_misroutes += pkt.misroutes_global
        if self.record_send_latency:
            bucket = pkt.created_cycle - pkt.created_cycle % self.send_bucket
            cell = self.send_latency.get(bucket)
            if cell is None:
                self.send_latency[bucket] = [lat, 1]
            else:
                cell[0] += lat
                cell[1] += 1
        if self.record_per_job and pkt.job >= 0:
            js = self.job(pkt.job)
            js.ejected += 1
            js.ejected_phits += pkt.size
            js.latency_sum += lat
            js.network_latency_sum += cycle - pkt.injected_cycle
            js.hops_sum += pkt.hops
            js.local_hops_sum += pkt.local_hops
            js.global_hops_sum += pkt.global_hops
            if pkt.used_ring:
                js.ring_packets += 1
            js.local_misroutes += pkt.misroutes_local
            js.global_misroutes += pkt.misroutes_global
            bucket = lat // self.histogram_bucket
            hist = js.latency_histogram
            hist[bucket] = hist.get(bucket, 0) + 1

    # ------------------------------------------------------------------
    def latency_percentile(self, fraction: float) -> float:
        """Latency percentile estimated from the bucketed histogram.

        Returns the upper edge of the bucket containing the requested
        fraction of ejected packets; 0.0 when nothing was measured.
        """
        return percentile_from_histogram(
            self.latency_histogram, self.histogram_bucket, fraction
        )

    def load_point(self, offered_load: float, cycle: int) -> LoadPoint:
        """Summarize the window that started at the last reset.

        An empty measurement window (no ejections) has no meaningful
        per-packet averages: they are reported as NaN so downstream
        consumers can tell "nothing measured" apart from a real zero.
        Throughput stays 0.0 — zero accepted phits is a real zero.
        """
        window = max(1, cycle - self.window_start)
        n = self.ejected_packets if self.ejected_packets > 0 else float("nan")
        if self.record_per_source:
            jain = self.jain_index(self.num_nodes)
            worst = self.worst_source_share(self.num_nodes)
        else:
            jain = worst = float("nan")
        return LoadPoint(
            offered_load=offered_load,
            throughput=self.ejected_phits / (self.num_nodes * window),
            avg_latency=self.latency_sum / n,
            avg_network_latency=self.network_latency_sum / n,
            avg_hops=self.hops_sum / n,
            avg_local_hops=self.local_hops_sum / n,
            avg_global_hops=self.global_hops_sum / n,
            p50_latency=self.latency_percentile(0.5),
            p99_latency=self.latency_percentile(0.99),
            ejected_packets=self.ejected_packets,
            window_cycles=window,
            ring_fraction=self.ring_packets / n,
            local_misroute_rate=self.local_misroutes / n,
            global_misroute_rate=self.global_misroutes / n,
            jain_index=jain,
            worst_source_share=worst,
        )

    def job_load_point(
        self, job: int, offered_load: float, cycle: int, num_nodes: int
    ) -> LoadPoint:
        """Per-job :class:`LoadPoint` over the current window.

        ``num_nodes`` is the *job's* node count, so throughput stays in
        phits/(node·cycle) of the nodes the job actually owns and is
        directly comparable to an isolated run of the same job.  The
        per-source fairness fields are global-run quantities and are
        reported as NaN here.
        """
        if not self.record_per_job:
            raise ValueError("enable record_per_job to measure per-job points")
        js = self.job_stats.get(job, JobMetrics())
        window = max(1, cycle - self.window_start)
        n = js.ejected if js.ejected > 0 else float("nan")
        return LoadPoint(
            offered_load=offered_load,
            throughput=js.ejected_phits / (num_nodes * window),
            avg_latency=js.latency_sum / n,
            avg_network_latency=js.network_latency_sum / n,
            avg_hops=js.hops_sum / n,
            avg_local_hops=js.local_hops_sum / n,
            avg_global_hops=js.global_hops_sum / n,
            p50_latency=percentile_from_histogram(
                js.latency_histogram, self.histogram_bucket, 0.5
            ),
            p99_latency=percentile_from_histogram(
                js.latency_histogram, self.histogram_bucket, 0.99
            ),
            ejected_packets=js.ejected,
            window_cycles=window,
            ring_fraction=js.ring_packets / n,
            local_misroute_rate=js.local_misroutes / n,
            global_misroute_rate=js.global_misroutes / n,
        )

    def jain_index(self, num_nodes: int | None = None) -> float:
        """Jain's fairness index over per-source ejected counts.

        1.0 = perfectly fair; 1/n = one node gets everything.  Nodes
        that ejected nothing count as zero when ``num_nodes`` is given
        (starvation shows up only if silent nodes are included).
        """
        if not self.record_per_source:
            raise ValueError("enable record_per_source to measure fairness")
        counts = list(self.source_counts.values())
        if num_nodes is not None:
            counts += [0] * (num_nodes - len(counts))
        if not counts or sum(counts) == 0:
            return 1.0
        total = sum(counts)
        squares = sum(c * c for c in counts)
        return (total * total) / (len(counts) * squares)

    def worst_source_share(self, num_nodes: int) -> float:
        """Worst node's share of the ideal equal share (0 = starved)."""
        if not self.record_per_source:
            raise ValueError("enable record_per_source to measure fairness")
        total = sum(self.source_counts.values())
        if total == 0:
            return 1.0
        worst = min(
            (self.source_counts.get(node, 0) for node in range(num_nodes)),
            default=0,
        )
        return worst * num_nodes / total

    def send_latency_series(self) -> list[tuple[int, float]]:
        """(send-cycle bucket, average latency) sorted by bucket."""
        return [
            (bucket, total / count)
            for bucket, (total, count) in sorted(self.send_latency.items())
        ]
