"""The paper's contribution: OFAR, on-the-fly adaptive routing.

- :class:`~repro.core.ofar.OFARRouting` — in-transit adaptive
  misrouting driven by local credit/occupancy state (§IV-A/B), with the
  escape-ring fallback (§IV-C).  ``allow_local_misroute=False`` gives
  the *OFAR-L* ablation used throughout the evaluation.
- Threshold policies live in
  :class:`~repro.engine.config.ThresholdConfig` (§IV-B) and the escape
  ring topology in :class:`~repro.topology.hamiltonian.HamiltonianRing`.
"""

from repro.core.ofar import OFARRouting

__all__ = ["OFARRouting"]
