"""OFAR: On-the-Fly Adaptive Routing (the paper's contribution, §IV).

OFAR decouples routing freedom from deadlock avoidance:

**Dynamic in-transit misrouting (§IV-A).**  Every router may divert a
head packet away from its minimal output when that output is
unavailable.  Misrouting is bounded by two header flags — at most one
nonminimal *global* hop per packet and one nonminimal *local* hop per
group — limiting paths to ``l-l-g-l-l-g-l-l`` (6 local + 2 global hops)
in the paper's template.  One documented divergence: the paper counts 8
hops, but its own per-hop rule ("each packet always has a minimal
output; misroute when it is unavailable") admits one extra *minimal*
local hop per group after a local misroute (e.g. owner -> neighbour
(misroute) -> owner (minimal retry)), so the strict bound here is 3
local hops per group and 10 hops total off the ring.  Such bounces are
rare and useful (they retry the congested port after a detour), and the
flags still guarantee livelock-free forward progress.
The misroute *type* follows the starvation-avoiding policy of §IV-A:

====================  =======================================
packet sits in        allowed misroute
====================  =======================================
injection queue       global (saves the first local Valiant
                      hop); local only for intra-group traffic
local/global queue    local first, then (source group only,
                      once the local hop of that group is
                      spent) global
====================  =======================================

Global misrouting is only meaningful in the source group (elsewhere the
packet already crossed toward its destination group), and the
intermediate group is *implicitly* chosen by whichever global port the
packet wins — "determined by credits of the global ports of the current
router", not by remote state.

**Contention-aware thresholds (§IV-B).**  Misrouting is considered only
when the minimal output is unavailable (busy, claimed this cycle, or
out of credits) and its estimated occupancy ``Q_min`` is at least
``Th_min``; a nonminimal output is eligible iff its occupancy does not
exceed ``Th_non-min`` (by default ``0.9 * Q_min``).  Among eligible
outputs one is requested *uniformly at random* — always chasing the
least-congested port would stampede all inputs onto it.

**Escape subnetwork (§IV-C).**  When a packet can neither advance
minimally nor misroute, it requests the Hamiltonian escape ring (bubble
flow control: *entering* requires space for two packets, riding the
ring requires one).  A packet on the ring leaves it as soon as a
minimal output is available, at most ``max_ring_exits`` times (livelock
bound); afterwards it rides the ring, which passes every router, until
it reaches its destination.  No VC ordering is imposed anywhere, which
is exactly what permits in-transit re-routing with the same VC count as
previous proposals.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.network.router import (
    CODE_LOCAL,
    CODE_NODE,
    KIND_MIN,
    KIND_MIS_GLOBAL,
    KIND_MIS_LOCAL,
    KIND_RING_ENTER,
    KIND_RING_EXIT,
    KIND_RING_MOVE,
    OutputChannel,
    Router,
)
from repro.routing.base import RoutingAlgorithm
from repro.topology.dragonfly import PortKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.network import Network
    from repro.network.packet import Packet


class OFARRouting(RoutingAlgorithm):
    """OFAR (and, with ``allow_local_misroute=False``, OFAR-L)."""

    def __init__(
        self,
        network: "Network",
        rng: random.Random,
        allow_local_misroute: bool = True,
    ) -> None:
        super().__init__(network, rng)
        if network.config.escape == "none":
            raise ValueError("OFAR requires an escape subnetwork")
        self.allow_local_misroute = allow_local_misroute
        self.name = "ofar" if allow_local_misroute else "ofar-l"
        topo = self.topo
        self._local_port_range = range(topo.node_ports, topo.node_ports + topo.local_ports)
        self._global_port_range = range(
            topo.node_ports + topo.local_ports, topo.ports_per_router
        )
        # The config is a frozen dataclass, so the per-hop constants can
        # be hoisted out of the allocator's hot path once and for all.
        thresholds = self.config.thresholds
        self._th_min = thresholds.th_min
        self._relative_factor = thresholds.relative_factor  # None = static policy
        self._th_nonmin = thresholds.th_nonmin
        self._escape_patience = self.config.escape_patience
        self._max_ring_exits = self.config.max_ring_exits
        self._transit_local_first = self.config.ofar_transit_misroute == "local-first"
        # Bound-method shortcut: the uniform candidate pick runs tens of
        # thousands of times per measurement window.
        self._randrange = rng.randrange

    # ------------------------------------------------------------------
    def route(self, rt: Router, in_port: int, in_vc: int, pkt: "Packet", cycle: int):
        # The hot path of the whole simulator: evaluated for every head
        # packet on every allocation iteration of every cycle.  The
        # helper predicates (out_port_free / best_data_vc /
        # occupancy_fraction / the min-output memo hit) are inlined here
        # — each is a handful of loads, and the call overhead dominates
        # them in CPython.  Behavior is identical to the helpers'.
        size = pkt.size
        if pkt.head_cycle < 0:
            pkt.head_cycle = cycle  # first evaluation at this buffer head
        if pkt.on_ring:
            return self._route_on_ring(rt, pkt, cycle, size)
        ig = pkt.intermediate_group
        if pkt.cache_rid == rt.rid and pkt.cache_ig == ig:
            mp = pkt.cache_port  # min-output memo hit (common case)
        else:
            # Memo miss (fresh hop): min_output's table lookups, inlined.
            topo = self.topo
            rid = rt.rid
            if ig >= 0 and ig != rt.group:
                key = rid * topo.num_groups + ig
                mp = self._group_port_cache.get(key)
                if mp is None:
                    mp = topo.min_output_port_to_group(rid, ig)
                    self._group_port_cache[key] = mp
            else:
                key = rid * topo.num_nodes + pkt.dst
                mp = self._min_port_cache.get(key)
                if mp is None:
                    mp = topo.min_output_port(rid, pkt.dst)
                    self._min_port_cache[key] = mp
            pkt.cache_rid = rid
            pkt.cache_ig = ig
            pkt.cache_port = mp
        ch = rt.out[mp]
        credits = ch.credits
        if ch.kind_code == CODE_NODE:
            # Ejection has no alternative (and cannot deadlock).
            if (
                not ch.failed
                and ch.busy_until <= cycle
                and mp not in rt._claimed_out
                and credits[0] >= size
            ):
                return (mp, 0, KIND_MIN)
            return None
        if not ch.failed and ch.busy_until <= cycle and mp not in rt._claimed_out:
            # First-max scan over the data VCs, unrolled for the common
            # channel shapes (3 local / 2 global data VCs); ties break
            # toward the lowest VC index exactly like the generic loop.
            nd = ch.nd
            if nd == 3:
                best = ch.dv0
                best_credits = credits[best]
                c = credits[ch.dv1]
                if c > best_credits:
                    best_credits = c
                    best = ch.dv1
                c = credits[ch.dv2]
                if c > best_credits:
                    best_credits = c
                    best = ch.dv2
                if best_credits >= size:
                    return (mp, best, KIND_MIN)
            elif nd == 2:
                c0 = credits[ch.dv0]
                c1 = credits[ch.dv1]
                if c1 > c0:
                    if c1 >= size:
                        return (mp, ch.dv1, KIND_MIN)
                elif c0 >= size:
                    return (mp, ch.dv0, KIND_MIN)
            else:
                best = -1
                best_credits = size - 1
                for v in ch.data_vcs:
                    c = credits[v]
                    if c > best_credits:
                        best_credits = c
                        best = v
                if best >= 0:
                    return (mp, best, KIND_MIN)
        # Minimal output unavailable: consider misrouting (§IV-B).
        data_capacity = ch.data_capacity
        if ch.failed or data_capacity == 0:
            q_min = 1.0
        else:
            nd = ch.nd
            if nd == 3:
                free = credits[ch.dv0] + credits[ch.dv1] + credits[ch.dv2]
            elif nd == 2:
                free = credits[ch.dv0] + credits[ch.dv1]
            else:
                free = 0
                for v in ch.data_vcs:
                    free += credits[v]
            q_min = 1.0 - free / data_capacity
        if q_min >= self._th_min:
            req = self._misroute(rt, in_port, pkt, mp, q_min, cycle, size)
            if req is not None:
                return req
        # Last resort: the escape ring (§IV-C) — only when the packet
        # truly cannot advance (the minimal output is out of credits,
        # not merely lost to arbitration or serialization this cycle)
        # and has been blocked past the escape patience.
        if (
            cycle - pkt.head_cycle >= self._escape_patience
            and ch.best_data_vc(size) < 0
        ):
            req = self._enter_ring(rt, cycle, size)
            if req is None:
                # Bubble flow control refused the entry: no ring output
                # here has room for packet + bubble.  Counter only —
                # telemetry watches ring pressure through it.
                self.network.ring_entry_stalls += 1
            return req
        return None

    # ------------------------------------------------------------------
    # Misrouting
    # ------------------------------------------------------------------
    def _misroute(
        self,
        rt: Router,
        in_port: int,
        pkt: "Packet",
        min_port: int,
        q_min: float,
        cycle: int,
        size: int,
    ):
        group = rt.group
        may_global = (
            not pkt.global_misrouted
            and group == pkt.src_group
            and pkt.dst_group != group
        )
        may_local = self.allow_local_misroute and pkt.local_misroute_group != group
        in_code = rt.in_kind_codes[in_port]
        if in_code == CODE_NODE:
            # Injection-queue packets misroute globally (for inter-group
            # traffic); intra-group traffic may only divert locally.
            if may_global:
                ports, kind, exclude_in = self._global_port_range, KIND_MIS_GLOBAL, -1
            elif may_local and pkt.dst_group == group:
                ports, kind, exclude_in = self._local_port_range, KIND_MIS_LOCAL, -1
            else:
                return None
        else:
            # In-transit packets: locally first, then (source group only)
            # globally once this group's local misroute is spent — the
            # paper's starvation-avoiding policy.  The "global-first"
            # ablation reverses the preference (see config).
            if may_global and (not self._transit_local_first or not may_local):
                ports, kind, exclude_in = self._global_port_range, KIND_MIS_GLOBAL, -1
            elif may_local:
                ports, kind = self._local_port_range, KIND_MIS_LOCAL
                # Don't bounce straight back over the link we came from.
                exclude_in = in_port if in_code == CODE_LOCAL else -1
            else:
                return None
        # Candidate scan with the channel predicates inlined (same
        # rationale as in route(): this runs per port per iteration).
        # The eligibility test mirrors ThresholdConfig.eligible — the
        # variable policy compares strictly, the static one is a plain
        # ceiling.
        candidates = []
        out = rt.out
        claimed_out = rt._claimed_out
        relative_factor = self._relative_factor
        if relative_factor is not None:
            limit = relative_factor * q_min
            strict = True
        else:
            limit = self._th_nonmin
            strict = False
        for port in ports:
            if port == min_port or port == exclude_in:
                continue
            ch = out[port]
            if ch.failed or ch.busy_until > cycle or port in claimed_out:
                continue
            credits = ch.credits
            data_capacity = ch.data_capacity
            if data_capacity == 0:
                # Occupancy 1.0 and no data VC to grant: never a
                # candidate regardless of the threshold policy.
                continue
            # Credit sum and first-max VC scan unrolled for the common
            # channel shapes (see route()); the generic loop remains as
            # the fallback for exotic VC counts.
            nd = ch.nd
            if nd == 3:
                c0 = credits[ch.dv0]
                c1 = credits[ch.dv1]
                c2 = credits[ch.dv2]
                free = c0 + c1 + c2
            elif nd == 2:
                c0 = credits[ch.dv0]
                c1 = credits[ch.dv1]
                free = c0 + c1
            else:
                free = 0
                for v in ch.data_vcs:
                    free += credits[v]
            occupancy = 1.0 - free / data_capacity
            if (occupancy >= limit) if strict else (occupancy > limit):
                continue
            if nd == 3:
                best = ch.dv0
                best_credits = c0
                if c1 > best_credits:
                    best_credits = c1
                    best = ch.dv1
                if c2 > best_credits:
                    best_credits = c2
                    best = ch.dv2
                if best_credits >= size:
                    candidates.append((port, best))
            elif nd == 2:
                if c1 > c0:
                    if c1 >= size:
                        candidates.append((port, ch.dv1))
                elif c0 >= size:
                    candidates.append((port, ch.dv0))
            else:
                best = -1
                best_credits = size - 1
                for v in ch.data_vcs:
                    c = credits[v]
                    if c > best_credits:
                        best_credits = c
                        best = v
                if best >= 0:
                    candidates.append((port, best))
        if not candidates:
            return None
        port, vc = candidates[self._randrange(len(candidates))] if len(candidates) > 1 else candidates[0]
        return (port, vc, kind)

    # ------------------------------------------------------------------
    # Escape ring
    # ------------------------------------------------------------------
    @staticmethod
    def _best_ring_vc(ch: OutputChannel, needed: int) -> int:
        """Ring VC with the most credits, requiring at least ``needed``.

        On the physical ring every VC is a ring VC; on an embedded-ring
        channel only the extra VC is.
        """
        if ch.kind is PortKind.RING:
            best, best_credits = -1, needed - 1
            for v in range(ch.num_vcs):
                c = ch.credits[v]
                if c > best_credits:
                    best_credits = c
                    best = v
            return best
        v = ch.ring_vc
        return v if v >= 0 and ch.credits[v] >= needed else -1

    def _enter_ring(self, rt: Router, cycle: int, size: int):
        # Among the usable escape rings (alive, port free, bubble space
        # for TWO packets so ring movement can never stall globally),
        # request the one with the most ring credits.
        disabled = self.network.disabled_rings
        best = None
        best_credits = -1
        for ring_id, (port, _) in enumerate(self.network.escape_hops[rt.rid]):
            if ring_id in disabled or not rt.out_port_free(port, cycle):
                continue
            ch = rt.out[port]
            vc = self._best_ring_vc(ch, 2 * size)
            if vc < 0:
                continue
            if ch.credits[vc] > best_credits:
                best_credits = ch.credits[vc]
                best = (port, vc, KIND_RING_ENTER)
        return best

    def _route_on_ring(self, rt: Router, pkt: "Packet", cycle: int, size: int):
        mp = self.min_output(rt, pkt)
        ch = rt.out[mp]
        if ch.kind is PortKind.NODE:
            # Destination router reached: eject (always permitted).
            if rt.min_available(mp, cycle, 0, size):
                return (mp, 0, KIND_RING_EXIT)
        elif pkt.ring_exits < self.config.max_ring_exits:
            # Abandon the ring as soon as a minimal output is available.
            if rt.out_port_free(mp, cycle):
                vc = ch.best_data_vc(size)
                if vc >= 0:
                    return (mp, vc, KIND_RING_EXIT)
        # Ride the ring the packet entered: a packet already on a ring
        # only needs space for itself (the bubble was paid on entry).
        hops = self.network.escape_hops[rt.rid]
        ring_id = pkt.ring_id if 0 <= pkt.ring_id < len(hops) else 0
        port, _ = hops[ring_id]
        if rt.out_port_free(port, cycle):
            vc = self._best_ring_vc(rt.out[port], size)
            if vc >= 0:
                return (port, vc, KIND_RING_MOVE)
        return None
