"""Extension experiment: the §IV-A starvation argument, measured.

§IV-A motivates an asymmetric misroute-type policy: injection-queue
packets misroute *globally*, but in-transit packets misroute *locally
first*.  The paper's reasoning: under adversarial traffic one router
per group (R_out) owns the saturated global link; if the packets parked
in its 2h-1 local queues all took the remaining h-1 global ports,
those would saturate and the h nodes attached to R_out could never
inject — starvation.

This experiment runs ADV+h at a saturating load with per-source-node
accounting and compares the paper's policy against the naive
"global-first" ablation on:

- Jain's fairness index over per-node delivered throughput;
- the worst node's share of the ideal equal share (0 = starved);
- total throughput (the policies should be close here — fairness is
  where they differ).
"""

from __future__ import annotations

from repro.analysis.results import Table
from repro.engine.runner import _pattern_rng
from repro.engine.simulator import Simulator
from repro.experiments.common import Scale, cli_scale
from repro.traffic.generators import BernoulliTraffic
from repro.traffic.patterns import make_pattern


def run_policy(scale: Scale, policy: str, load: float) -> dict:
    cfg = scale.config("ofar", ofar_transit_misroute=policy)
    sim = Simulator(cfg)
    sim.metrics.record_per_source = True
    topo = sim.network.topo
    pattern = make_pattern(topo, _pattern_rng(cfg, 0xF1), f"ADV+{scale.h}")
    sim.generator = BernoulliTraffic(
        pattern, load, cfg.packet_size, topo.num_nodes, cfg.seed ^ 0x2D2D
    )
    sim.warm_up(scale.warmup)
    sim.run(scale.measure)
    m = sim.metrics
    point = m.load_point(load, sim.cycle)
    return {
        "policy": policy,
        "load": load,
        "throughput": round(point.throughput, 4),
        "jain": round(m.jain_index(topo.num_nodes), 4),
        "worst_share": round(m.worst_source_share(topo.num_nodes), 3),
        "latency": round(point.avg_latency, 1),
    }


def run(scale: Scale, loads: list[float] | None = None) -> Table:
    if loads is None:
        loads = [0.3, 0.45]
    table = Table(
        f"Extension — §IV-A starvation study (ADV+{scale.h}, h={scale.h}, "
        f"per-node fairness)"
    )
    for load in loads:
        for policy in ("local-first", "global-first"):
            table.add_row(run_policy(scale, policy, load))
    return table


if __name__ == "__main__":
    print(run(cli_scale(__doc__)).to_text())
