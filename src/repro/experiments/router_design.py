"""Extension experiment: the §VIII router-design conjecture.

§VIII: "As OFAR does not rely on VCs to avoid deadlock, input buffers
with 2 or 3 read ports could provide a more scalable and efficient
design."  The point is that VCs exist in OFAR purely to fight
head-of-line blocking, and multiple read ports fight the same enemy
with simpler buffers.

We compare, at equal total buffering per input port:

- **classic** — 3 local / 2 global VCs, 1 read port (the evaluated
  configuration);
- **lean-2R** — a single VC per port with the consolidated capacity and
  2 read ports;
- **lean-3R** — the same with 3 read ports;
- **lean-1R** — the single-VC buffer with a single read port, as the
  degenerate control showing HOL blocking without either remedy.

Note that only OFAR can run the lean designs at all: every baseline
*needs* the VCs for deadlock freedom — which is exactly the §VIII
argument for decoupling.
"""

from __future__ import annotations

from repro.analysis.results import Table
from repro.engine.config import SimulationConfig
from repro.engine.runspec import RunSpec
from repro.experiments.common import Scale, cli_scale, run_specs


def designs(scale: Scale) -> list[tuple[str, SimulationConfig]]:
    base = scale.config("ofar")
    lean_common = dict(
        local_vcs=1,
        local_buffer=base.local_vcs * base.local_buffer,
        global_vcs=1,
        global_buffer=base.global_vcs * base.global_buffer,
        injection_vcs=1,
        injection_buffer=base.injection_vcs * base.injection_buffer,
    )
    return [
        ("classic-3vc", base),
        ("lean-1R", scale.config("ofar", **lean_common)),
        ("lean-2R", scale.config("ofar", input_read_ports=2, **lean_common)),
        ("lean-3R", scale.config("ofar", input_read_ports=3, **lean_common)),
    ]


def run(scale: Scale, loads: list[float] | None = None) -> Table:
    if loads is None:
        loads = [0.25, 0.45]
    table = Table(f"Extension — §VIII router designs, equal total buffering (h={scale.h})")
    cells = [
        (name, cfg, pattern, load)
        for name, cfg in designs(scale)
        for pattern in ("UN", f"ADV+{scale.h}")
        for load in loads
    ]
    points = run_specs([
        RunSpec(cfg, pattern, load, scale.warmup, scale.measure)
        for _, cfg, pattern, load in cells
    ])
    for (name, cfg, pattern, load), pt in zip(cells, points):
        table.add(
            design=name,
            pattern=pattern,
            load=load,
            throughput=round(pt.throughput, 4),
            latency=round(pt.avg_latency, 1),
        )
    return table


if __name__ == "__main__":
    print(run(cli_scale(__doc__)).to_text())
