"""Fig. 4: latency and throughput under adversarial +2 traffic (ADV+2).

Paper observations to reproduce (§VI-A):

- the reference is VAL (MIN collapses to ~1/(2h^2) and is excluded);
- OFAR shows very competitive latency and saturates above PB
  (0.45 vs ~0.38 at h=6 in the paper);
- OFAR vs OFAR-L differ only slightly at this offset (local links are
  not yet the bottleneck).

Note: at ``h = 2``, offset 2 *is* the worst case (2 = h), so use
``h >= 3`` scales to observe the mild-adversarial behaviour this figure
is about.
"""

from __future__ import annotations

from repro.analysis.results import Series, Table, series_table
from repro.experiments.common import Scale, cli_scale, sweep

ROUTINGS = ("val", "pb", "ofar", "ofar-l")


def run(scale: Scale, loads: list[float] | None = None) -> tuple[Table, list[Series]]:
    """Regenerate Fig. 4a/4b."""
    if loads is None:
        loads = scale.loads(saturating=0.5)
    series = [sweep(scale, routing, "ADV+2", loads) for routing in ROUTINGS]
    table = series_table(f"Fig 4 — ADV+2 traffic (h={scale.h})", series)
    return table, series


def summary(series: list[Series]) -> Table:
    table = Table("Fig 4 — summary")
    for s in series:
        table.add(
            routing=s.name,
            saturation_thr=round(s.saturation_throughput(), 3),
            low_load_latency=round(s.points[0].avg_latency, 1),
        )
    return table


if __name__ == "__main__":
    table, series = run(cli_scale(__doc__))
    print(table.to_text())
    print(summary(series).to_text())
