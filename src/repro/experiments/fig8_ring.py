"""Fig. 8: physical vs. embedded escape ring.

§VII: the escape subnetwork exists to break deadlocks, not to carry
traffic, so replacing the dedicated physical ring (two extra ports and
one wire per router) with a ring *embedded* as an extra VC over
existing links should not change performance measurably.  This driver
sweeps OFAR with both implementations under UN and ADV+2 and reports
the per-load deltas plus how often the ring was actually used.
"""

from __future__ import annotations

from repro.analysis.results import Table
from repro.experiments.common import Scale, cli_scale, run_specs

VARIANTS = ("physical", "embedded")


def run(scale: Scale, loads: list[float] | None = None,
        patterns: tuple[str, ...] = ("UN", "ADV+2")) -> Table:
    """Regenerate Fig. 8."""
    if loads is None:
        loads = scale.loads(saturating=0.5, points=5)
    table = Table(f"Fig 8 — OFAR with physical vs embedded escape ring (h={scale.h})")
    cells = [
        (pattern, load, variant)
        for pattern in patterns for load in loads for variant in VARIANTS
    ]
    points = iter(run_specs([
        scale.spec("ofar", pattern, load, escape=variant)
        for pattern, load, variant in cells
    ]))
    for pattern in patterns:
        for load in loads:
            row: dict = {"pattern": pattern, "load": load}
            for variant in VARIANTS:
                pt = next(points)
                row[f"{variant}_thr"] = round(pt.throughput, 4)
                row[f"{variant}_lat"] = round(pt.avg_latency, 1)
                row[f"{variant}_ring"] = round(pt.ring_fraction, 4)
            table.add_row(row)
    return table


if __name__ == "__main__":
    print(run(cli_scale(__doc__)).to_text())
