"""Fig. 6: latency evolution under transient traffic.

Protocol (§VI-B): warm up with one pattern at a fixed load, switch the
pattern, and track the average latency of the packets *sent* in each
cycle.  Three transitions, as in the paper:

- UN -> ADV+2 at load 0.14 — OFAR adapts almost instantly, PB shows an
  adaptation period;
- ADV+2 -> UN at load 0.14 — everyone converges fast (links suddenly
  uncongested);
- ADV+2 -> ADV+h at load 0.12 (lower, since PB saturates otherwise) —
  OFAR's in-transit misrouting shines.

The summary table reports the settled latency before the switch, the
post-switch latency spike, and the settle time back to within 1.5x of
the new steady level.

Several after-patterns branched off the same warm-up (same ``before``
pattern and load) can share it: :func:`run_after_variants` snapshots
the warmed state once (:mod:`repro.snapshot`) and forks one measurement
per after-pattern, bit-identical to individually-warmed runs.

With in-run telemetry (:mod:`repro.telemetry`) the same transition can
be watched from the *link* side: :func:`run_one` accepts a
``TelemetryConfig``, and :func:`settle_crosscheck` compares the
latency-based settle time with the one
:func:`repro.analysis.heatmap.settle_from_utilization` extracts from
per-window local-link p99 utilization — two independent signals that
should agree on when the routing adapted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.results import Table
from repro.engine.runner import TransientResult, run_transient, run_transient_forked
from repro.experiments.common import Scale, cli_scale

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.config import TelemetryConfig

ROUTINGS = ("pb", "ofar", "ofar-l")


def transitions(h: int) -> list[tuple[str, str, float]]:
    """(before, after, load) triples of Fig. 6."""
    return [
        ("UN", "ADV+2", 0.14),
        ("ADV+2", "UN", 0.14),
        ("ADV+2", f"ADV+{h}", 0.12),
    ]


def run_one(
    scale: Scale,
    routing: str,
    before: str,
    after: str,
    load: float,
    telemetry: "TelemetryConfig | None" = None,
) -> TransientResult:
    cfg = scale.config(routing)
    return run_transient(
        cfg,
        before,
        after,
        load,
        warmup=scale.transient_warmup,
        post=scale.transient_post,
        bucket=max(10, scale.transient_post // 100),
        telemetry=telemetry,
    )


def run_after_variants(
    scale: Scale,
    routing: str,
    before: str,
    afters: list[str],
    load: float,
) -> list[TransientResult]:
    """All ``afters`` branched off ONE shared warm-up.

    Uses :func:`~repro.engine.runner.run_transient_forked` — the warmed
    state under ``before`` is snapshotted once (:mod:`repro.snapshot`)
    and each after-pattern measurement forks from it, so N variants cost
    one warm-up instead of N while every series stays bit-identical to
    its individually-warmed :func:`run_one` equivalent.
    """
    cfg = scale.config(routing)
    return run_transient_forked(
        cfg,
        before,
        afters,
        load,
        warmup=scale.transient_warmup,
        post=scale.transient_post,
        bucket=max(10, scale.transient_post // 100),
    )


def summarize(result: TransientResult, tail: int = 500) -> dict:
    """Pre-switch level, post-switch spike, and settle time."""
    switch = result.switch_cycle
    pre = result.average_latency(max(0, switch - tail), switch)
    spike = max(
        (lat for cyc, lat in result.series if cyc >= switch),
        default=float("nan"),
    )
    series_end = result.series[-1][0] if result.series else switch
    settled_level = result.average_latency(max(switch, series_end - tail), series_end + 1)
    settle = result.settle_cycle(target=1.5 * settled_level, after=switch)
    return {
        "pre_latency": round(pre, 1),
        "spike_latency": round(spike, 1),
        "settled_latency": round(settled_level, 1),
        "settle_cycles": (settle - switch) if settle is not None else None,
    }


def settle_crosscheck(result: TransientResult, tail: int = 500) -> dict:
    """Latency-based vs utilization-based settle time for one transient.

    Requires a :class:`TransientResult` produced with telemetry.  Both
    numbers use the same semantics (first point after the switch from
    which the signal stays within 1.5× its final level), so they should
    land within a sampling window of each other when latency and link
    load settle together — a disagreement means the network found a new
    equilibrium where one signal recovered but the other did not.
    """
    from repro.analysis.heatmap import settle_from_utilization

    if result.telemetry is None:
        raise ValueError("run the transient with a TelemetryConfig first")
    summary = summarize(result, tail=tail)
    latency_settle = summary["settle_cycles"]
    util_settle = settle_from_utilization(
        result.telemetry, after=result.switch_cycle, kind="local"
    )
    return {
        "settle_latency": latency_settle,
        "settle_util": (
            util_settle - result.switch_cycle if util_settle is not None else None
        ),
    }


def run(scale: Scale) -> Table:
    """Regenerate Fig. 6 (summary form; use run_one for full series).

    Transitions sharing a warm-up phase — same ``before`` pattern at the
    same load — are grouped so each routing warms up once per group and
    the after-variants fork from the snapshot
    (:func:`run_after_variants`); results are bit-identical to running
    every transition individually.
    """
    table = Table(f"Fig 6 — transient adaptation (h={scale.h})")
    groups: list[tuple[tuple[str, float], list[str]]] = []
    for before, after, load in transitions(scale.h):
        for key, afters in groups:
            if key == (before, load):
                afters.append(after)
                break
        else:
            groups.append(((before, load), [after]))
    for (before, load), afters in groups:
        for routing in ROUTINGS:
            results = run_after_variants(scale, routing, before, afters, load)
            for after, result in zip(afters, results):
                row = {
                    "transition": f"{before}->{after}",
                    "load": load,
                    "routing": routing,
                }
                row.update(summarize(result))
                table.add_row(row)
    return table


if __name__ == "__main__":
    print(run(cli_scale(__doc__)).to_text())
