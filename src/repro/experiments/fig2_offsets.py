"""Fig. 2: throughput of adversarial patterns vs. group offset.

Fig. 2b of the paper sweeps the ADV+N offset under Valiant routing at
saturation and shows deep throughput valleys at offsets N = n*h, where
misrouted traffic funnels through single local links of the
intermediate groups (Fig. 2a mechanism).  The driver pairs each
simulated offset with the closed-form bound from
:mod:`repro.analysis.offsets` — the valleys must coincide.
"""

from __future__ import annotations

import random

from repro.analysis.offsets import max_l2_concentration, valiant_offset_bound
from repro.analysis.results import Table
from repro.analysis.static_load import predicted_saturation
from repro.experiments.common import Scale, cli_scale, run_specs
from repro.topology.dragonfly import Dragonfly
from repro.traffic.patterns import AdversarialPattern


def default_offsets(h: int) -> list[int]:
    """Offsets covering three h-multiples and the points between."""
    top = min(3 * h, 2 * h * h)
    return list(range(1, top + 1))


def run(scale: Scale, load: float = 0.5, offsets: list[int] | None = None) -> Table:
    """Regenerate Fig. 2b: VAL throughput per ADV offset at ``load``.

    Each simulated point is flanked by two analytic companions: the
    l2-only closed form (an upper bound, the paper's Fig. 2a argument)
    and the Monte-Carlo static-load prediction (which also counts l1/l3
    hops on the same links and tracks the simulator closely).
    """
    topo = Dragonfly(scale.h)
    if offsets is None:
        offsets = default_offsets(scale.h)
    table = Table(f"Fig 2b — VAL throughput vs ADV offset (h={scale.h}, load={load})")
    points = run_specs([scale.spec("val", f"ADV+{n}", load) for n in offsets])
    for n, point in zip(offsets, points):
        predicted = predicted_saturation(
            topo, AdversarialPattern(topo, random.Random(n), n), "val",
            samples=8_000, seed=n,
        )
        table.add(
            offset=n,
            worst_case="*" if n % scale.h == 0 else "",
            concentration=max_l2_concentration(topo, n),
            l2_bound=round(valiant_offset_bound(topo, n), 3),
            predicted=round(min(predicted, load), 3),
            throughput=round(point.throughput, 3),
            latency=round(point.avg_latency, 1),
        )
    return table


if __name__ == "__main__":
    print(run(cli_scale(__doc__)).to_text())
