"""Fig. 5: latency and throughput under the worst pattern, ADV+h.

This is the paper's centrepiece (§VI-A): under ADV+h, misrouted traffic
saturates intermediate-group *local* links, so every mechanism without
local misrouting — VAL, PB, and OFAR-L — collapses toward the
``1/h`` bound, while full OFAR (which diverts around hot local links)
clearly exceeds it, approaching the 0.5 global-link limit (0.36 vs
0.166 at h=6 in the paper).
"""

from __future__ import annotations

from repro.analysis.bounds import local_link_advh_bound, valiant_bound
from repro.analysis.results import Series, Table, series_table
from repro.experiments.common import Scale, cli_scale, sweep

ROUTINGS = ("val", "pb", "ofar", "ofar-l")


def run(scale: Scale, loads: list[float] | None = None) -> tuple[Table, list[Series]]:
    """Regenerate Fig. 5a/5b (pattern ADV+h)."""
    if loads is None:
        loads = scale.loads(saturating=0.5)
    pattern = f"ADV+{scale.h}"
    series = [sweep(scale, routing, pattern, loads) for routing in ROUTINGS]
    table = series_table(f"Fig 5 — {pattern} traffic (h={scale.h})", series)
    return table, series


def summary(scale: Scale, series: list[Series]) -> Table:
    """Saturation vs the 1/h local-link bound and the 0.5 Valiant limit."""
    table = Table("Fig 5 — summary (local-link bound = "
                  f"{local_link_advh_bound(scale.h):.3f}, global limit = {valiant_bound()})")
    for s in series:
        thr = s.saturation_throughput()
        table.add(
            routing=s.name,
            saturation_thr=round(thr, 3),
            above_local_bound="yes" if thr > local_link_advh_bound(scale.h) * 1.05 else "no",
        )
    return table


if __name__ == "__main__":
    scale = cli_scale(__doc__)
    table, series = run(scale)
    print(table.to_text())
    print(summary(scale, series).to_text())
