"""Experiment drivers: one module per figure of the paper's evaluation.

Every module exposes ``run(scale) -> Table`` (or a list of tables) and a
``__main__`` entry point, so each figure can be regenerated with e.g.::

    python -m repro.experiments.fig5_advh --scale medium

Scales (see :mod:`repro.experiments.common`): ``tiny`` (h=2, seconds,
used by the test suite), ``small`` (h=2), ``medium`` (h=3, the default
for benchmarks), ``paper`` (h=6 with the exact §V parameters — slow in
pure Python; provided for offline full-scale runs).
"""

from repro.experiments.common import Scale, TINY, SMALL, MEDIUM, PAPER, get_scale

__all__ = ["Scale", "TINY", "SMALL", "MEDIUM", "PAPER", "get_scale"]
