"""Fig. 7: burst consumption time, normalized to PB (lower is better).

Protocol (§VI-C): every node injects a fixed backlog as fast as it can
(the paper uses 2,000 packets/node at h=6; the smaller scales keep the
normalized metric meaningful with proportionally smaller backlogs), and
the figure of merit is the cycle at which the last packet is consumed.

Patterns: UN, ADV+2, ADV+h, and the three mixes MIX1 (80% UN / 10%
ADV+1 / 10% ADV+h), MIX2 (60/20/20), MIX3 (20/40/40).

Paper numbers to reproduce: OFAR's time is 0.43-0.82x PB's (mean
~0.70), and full OFAR always beats OFAR-L.
"""

from __future__ import annotations

from repro.analysis.results import Table
from repro.engine.runner import run_burst
from repro.experiments.common import Scale, cli_scale

ROUTINGS = ("val", "pb", "ofar", "ofar-l")


def patterns(h: int) -> list[str]:
    # dict.fromkeys dedupes while keeping order (ADV+2 == ADV+h at h=2).
    return list(dict.fromkeys(["UN", "ADV+2", f"ADV+{h}", "MIX1", "MIX2", "MIX3"]))


def run(scale: Scale, packets_per_node: int | None = None) -> Table:
    """Regenerate Fig. 7."""
    if packets_per_node is None:
        packets_per_node = scale.burst_packets_per_node
    table = Table(
        f"Fig 7 — burst consumption time normalized to PB "
        f"(h={scale.h}, {packets_per_node} pkts/node)"
    )
    for pattern in patterns(scale.h):
        completions: dict[str, int] = {}
        for routing in ROUTINGS:
            cfg = scale.config(routing)
            completions[routing] = run_burst(cfg, pattern, packets_per_node).completion_cycle
        pb = completions["pb"]
        row: dict = {"pattern": pattern, "pb_cycles": pb}
        for routing in ROUTINGS:
            row[f"{routing}_norm"] = round(completions[routing] / pb, 3)
        table.add_row(row)
    return table


def ofar_speedup(table: Table) -> float:
    """Mean normalized OFAR time across patterns (paper: ~0.695)."""
    vals = [row["ofar_norm"] for row in table.rows]
    return sum(vals) / len(vals)


if __name__ == "__main__":
    t = run(cli_scale(__doc__))
    print(t.to_text())
    print(f"mean OFAR time vs PB: {ofar_speedup(t):.3f} (paper: 0.695)")
