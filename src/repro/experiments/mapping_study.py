"""Extension experiment: task-mapping randomization vs network-level OFAR.

§III argues against Bhatele et al.'s mitigation of dragonfly hotspots —
randomizing the task-to-node mapping — because "randomizing the task
mapping breaks the benefits of locality among neighbor tasks allocated
in the same router", and claims "a proper solution should be applied at
the network level".  This study quantifies that claim with a 2-D
stencil halo exchange:

- **MIN + sequential mapping** — fast local exchanges, but hot local
  links throttle the rest (the DEF mapping of the SC'11 paper);
- **MIN + random mapping** — hotspots gone, locality gone: every
  exchange crosses the network;
- **OFAR + sequential mapping** — the paper's answer: keep locality,
  let the network route around the hot links.

Reported per configuration: accepted throughput, mean latency, and the
mean hop counts (the locality signature: sequential mappings keep most
exchanges within a router or group).
"""

from __future__ import annotations

import random

from repro.analysis.results import Table
from repro.engine.runner import _pattern_rng
from repro.engine.simulator import Simulator
from repro.experiments.common import Scale, cli_scale
from repro.traffic.applications import StencilPattern
from repro.traffic.generators import BernoulliTraffic


CASES = [
    ("min", "sequential"),
    ("min", "random"),
    ("pb", "sequential"),
    ("ofar", "sequential"),
    ("ofar", "random"),
]


def run(scale: Scale, load: float = 0.5, dims: tuple[int, ...] | None = None) -> Table:
    table = Table(
        f"Extension — 2-D stencil: mapping randomization vs OFAR "
        f"(h={scale.h}, load={load})"
    )
    for routing, mapping in CASES:
        cfg = scale.config(routing)
        sim = Simulator(cfg)
        topo = sim.network.topo
        pattern = StencilPattern(
            topo, _pattern_rng(cfg, 0xD1), dims=dims, mapping=mapping
        )
        sim.generator = BernoulliTraffic(
            pattern, load, cfg.packet_size, topo.num_nodes, cfg.seed ^ 0x99
        )
        sim.warm_up(scale.warmup)
        sim.run(scale.measure)
        pt = sim.metrics.load_point(load, sim.cycle)
        table.add(
            routing=routing,
            mapping=mapping,
            throughput=round(pt.throughput, 4),
            latency=round(pt.avg_latency, 1),
            hops=round(pt.avg_hops, 2),
            global_hops=round(pt.avg_global_hops, 3),
        )
    return table


if __name__ == "__main__":
    print(run(cli_scale(__doc__)).to_text())
