"""Extension experiment: congestion management by injection restriction.

§VII observes that when the canonical network congests completely, only
the low-capacity escape ring keeps delivering, collapsing throughput
(Fig. 9) — and defers congestion management to future work ("Ongoing
work includes the use of congestion avoidance mechanisms").  This
driver closes that loop with the simplest mechanism in the §VII spirit
of restricted injection: a node may not inject while its router's mean
output occupancy exceeds a threshold.

Two stress cases are compared with and without the mechanism:

- the fully-provisioned embedded-ring OFAR at ADV+h past saturation;
- the Fig. 9 reduced-VC configuration at the same load.

Both collapse without congestion control and hold near-saturation
throughput with it.
"""

from __future__ import annotations

from repro.analysis.results import Table
from repro.experiments.common import Scale, cli_scale, run_specs


def run(scale: Scale, loads: list[float] | None = None) -> Table:
    if loads is None:
        loads = [0.3, 0.5]
    pattern = f"ADV+{scale.h}"
    table = Table(
        f"Extension — injection-restriction congestion control ({pattern}, h={scale.h})"
    )
    cases = [
        ("full-vcs", {}),
        ("reduced-vcs", dict(local_vcs=2, global_vcs=1, injection_vcs=2)),
    ]
    points = iter(run_specs([
        scale.spec("ofar", pattern, load,
                   escape="embedded", congestion_control=cc, **overrides)
        for _, overrides in cases for load in loads for cc in (False, True)
    ]))
    for name, overrides in cases:
        for load in loads:
            row: dict = {"config": name, "load": load}
            for cc in (False, True):
                pt = next(points)
                tag = "cc" if cc else "none"
                row[f"{tag}_thr"] = round(pt.throughput, 4)
                row[f"{tag}_ring"] = round(pt.ring_fraction, 4)
            table.add_row(row)
    return table


if __name__ == "__main__":
    print(run(cli_scale(__doc__)).to_text())
