"""Extension experiment: congestion management by injection restriction.

§VII observes that when the canonical network congests completely, only
the low-capacity escape ring keeps delivering, collapsing throughput
(Fig. 9) — and defers congestion management to future work ("Ongoing
work includes the use of congestion avoidance mechanisms").  This
driver closes that loop with the simplest mechanism in the §VII spirit
of restricted injection: a node may not inject while its router's mean
output occupancy exceeds a threshold.

Two stress cases are compared with and without the mechanism:

- the fully-provisioned embedded-ring OFAR at ADV+h past saturation;
- the Fig. 9 reduced-VC configuration at the same load.

Both collapse without congestion control and hold near-saturation
throughput with it.

:func:`run_timeline` shows the collapse *happening*: an in-run
telemetry series (:mod:`repro.telemetry`) of escape-ring occupancy,
bubble stalls and injection backlog over the measurement window, with
and without the mechanism, so the steady-state table's endpoint numbers
get a time axis.
"""

from __future__ import annotations

from repro.analysis.results import Table
from repro.experiments.common import Scale, cli_scale, run_specs


def run(scale: Scale, loads: list[float] | None = None) -> Table:
    if loads is None:
        loads = [0.3, 0.5]
    pattern = f"ADV+{scale.h}"
    table = Table(
        f"Extension — injection-restriction congestion control ({pattern}, h={scale.h})"
    )
    cases = [
        ("full-vcs", {}),
        ("reduced-vcs", dict(local_vcs=2, global_vcs=1, injection_vcs=2)),
    ]
    points = iter(run_specs([
        scale.spec("ofar", pattern, load,
                   escape="embedded", congestion_control=cc, **overrides)
        for _, overrides in cases for load in loads for cc in (False, True)
    ]))
    for name, overrides in cases:
        for load in loads:
            row: dict = {"config": name, "load": load}
            for cc in (False, True):
                pt = next(points)
                tag = "cc" if cc else "none"
                row[f"{tag}_thr"] = round(pt.throughput, 4)
                row[f"{tag}_ring"] = round(pt.ring_fraction, 4)
            table.add_row(row)
    return table


def run_timeline(
    scale: Scale, load: float = 0.5, interval: int | None = None
) -> Table:
    """Windowed congestion telemetry, with vs without injection restriction.

    One row per sampling window: escape-ring occupancy (packets on a
    ring at the sample instant), bubble-entry stalls and mean per-node
    injection backlog in the window, for the same past-saturation ADV+h
    point run with congestion control off (``none_*``) and on
    (``cc_*``).  Without the mechanism the backlog and ring pressure
    climb monotonically (the collapse of Fig. 9); with it they plateau.
    """
    from repro.engine.runner import run_spec_with_telemetry
    from repro.telemetry.config import TelemetryConfig

    if interval is None:
        interval = max(50, scale.measure // 8)
    pattern = f"ADV+{scale.h}"
    table = Table(
        f"Congestion timeline — ring/backlog over time ({pattern} at {load}, h={scale.h})"
    )
    runs = {}
    for cc in (False, True):
        spec = scale.spec(
            "ofar", pattern, load, escape="embedded", congestion_control=cc
        )
        _, series = run_spec_with_telemetry(spec, TelemetryConfig(interval=interval))
        runs["cc" if cc else "none"] = series
    for none_s, cc_s in zip(runs["none"].samples, runs["cc"].samples):
        table.add_row({
            "cycle": none_s.cycle,
            "none_ring": none_s.ring_packets,
            "none_stalls": none_s.bubble_stalls,
            "none_backlog": none_s.injection_backlog,
            "cc_ring": cc_s.ring_packets,
            "cc_stalls": cc_s.bubble_stalls,
            "cc_backlog": cc_s.injection_backlog,
        })
    return table


if __name__ == "__main__":
    scale = cli_scale(__doc__)
    print(run(scale).to_text())
    print(run_timeline(scale).to_text())
