"""Shared scaffolding for the per-figure experiment drivers.

Besides the :class:`Scale` presets this module owns the drivers'
execution context: every driver funnels its steady-state points through
:func:`run_specs`, which either runs them in-process (the default — the
exact legacy sequential behavior benchmarks rely on) or through an
installed :class:`~repro.engine.orchestrator.Orchestrator` (parallel
workers, result-store caching, resume, per-point fault tolerance).

The ``--workers/--resume/--store/--no-cache/--progress/--timeout/
--telemetry/--snapshot-every`` options every
``python -m repro.experiments.figX`` entry
point (and the ``repro sweep`` / ``repro figure`` CLI) accepts come
from the single argparse parent built by
:func:`orchestration_options`; drivers never copy those flags per file.
"""

from __future__ import annotations

import argparse
from contextlib import contextmanager
from dataclasses import dataclass

from repro.analysis.results import Series
from repro.engine.backend import default_backend, set_default_backend
from repro.engine.config import SimulationConfig
from repro.engine.orchestrator import Orchestrator
from repro.engine.runner import run_spec
from repro.engine.runspec import RunSpec

#: Default result-store directory used by ``--resume`` when no
#: ``--store`` is given.
DEFAULT_STORE = ".repro-store"


@dataclass(frozen=True)
class Scale:
    """Size/duration preset for an experiment.

    ``paper_params`` selects the exact §V configuration (10/100-cycle
    links, 32/256-phit FIFOs); otherwise the proportionally shortened
    ``SimulationConfig.small`` parameters are used so that warm-up
    windows and credit round-trips stay balanced at small h.
    """

    name: str
    h: int
    warmup: int
    measure: int
    paper_params: bool = False
    burst_packets_per_node: int = 20
    transient_warmup: int = 2_000
    transient_post: int = 2_500

    def config(self, routing: str, **overrides) -> SimulationConfig:
        if self.paper_params:
            return SimulationConfig.paper(routing=routing, **overrides)
        return SimulationConfig.small(h=self.h, routing=routing, **overrides)

    def loads(self, saturating: float = 0.56, points: int = 7) -> list[float]:
        """A default load sweep reaching past saturation."""
        step = saturating / (points - 1)
        return [round(step * i, 4) for i in range(1, points)] + [
            round(saturating * 1.3, 4)
        ]

    def spec(self, routing: str, pattern: str, load: float,
             **config_overrides) -> RunSpec:
        """One steady-state :class:`RunSpec` at this scale's windows.

        The spec is stamped with the process-wide default engine backend
        (``--backend`` via :func:`orchestrator_from_args`), so the
        choice travels with the spec into orchestrator workers.
        """
        return RunSpec(
            self.config(routing, **config_overrides), pattern, load,
            self.warmup, self.measure, backend=default_backend(),
        )


TINY = Scale("tiny", h=2, warmup=300, measure=400, burst_packets_per_node=5,
             transient_warmup=600, transient_post=800)
SMALL = Scale("small", h=2, warmup=1_000, measure=1_200, burst_packets_per_node=20,
              transient_warmup=1_500, transient_post=2_000)
MEDIUM = Scale("medium", h=3, warmup=1_000, measure=1_200, burst_packets_per_node=20,
               transient_warmup=1_500, transient_post=2_000)
LARGE = Scale("large", h=4, warmup=1_500, measure=2_000, burst_packets_per_node=30,
              transient_warmup=2_500, transient_post=3_000)
PAPER = Scale("paper", h=6, warmup=20_000, measure=20_000, paper_params=True,
              burst_packets_per_node=2_000, transient_warmup=30_000,
              transient_post=30_000)

_SCALES = {s.name: s for s in (TINY, SMALL, MEDIUM, LARGE, PAPER)}


def get_scale(name: str) -> Scale:
    """Scale preset by name."""
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(_SCALES)}") from None


# ----------------------------------------------------------------------
# Orchestration context
# ----------------------------------------------------------------------

_ORCHESTRATOR: Orchestrator | None = None


def set_orchestrator(orchestrator: Orchestrator | None) -> None:
    """Install the orchestrator every driver's :func:`run_specs` uses.

    ``None`` (the default) means plain in-process sequential execution —
    bit-identical to calling :func:`repro.engine.runner.run_spec` in a
    loop, which is what tests and benchmarks expect.
    """
    global _ORCHESTRATOR
    _ORCHESTRATOR = orchestrator


def current_orchestrator() -> Orchestrator | None:
    return _ORCHESTRATOR


@contextmanager
def orchestration(orchestrator: Orchestrator | None):
    """Scoped :func:`set_orchestrator` (restores the previous context)."""
    previous = _ORCHESTRATOR
    set_orchestrator(orchestrator)
    try:
        yield orchestrator
    finally:
        set_orchestrator(previous)


def run_specs(specs: list[RunSpec]) -> list:
    """Resolve steady-state points through the installed context.

    This is the drivers' single entry to the run layer: with no
    orchestrator installed it is a sequential in-process loop; with one
    installed the grid gets workers, caching, retry and progress.  A
    failed point raises either way (figure tables need every cell).
    """
    orchestrator = _ORCHESTRATOR
    if orchestrator is None:
        return [run_spec(s) for s in specs]
    return orchestrator.run_points(specs)


def sweep(
    scale: Scale,
    routing: str,
    pattern: str,
    loads: list[float],
    **config_overrides,
) -> Series:
    """One latency/throughput curve for (routing, pattern)."""
    specs = [
        scale.spec(routing, pattern, load, **config_overrides) for load in loads
    ]
    series = Series(name=routing)
    for point in run_specs(specs):
        series.add(point)
    return series


# ----------------------------------------------------------------------
# Shared CLI options
# ----------------------------------------------------------------------

def add_run_args(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the shared run-execution flags to ``parser``.

    This is THE definition of the run layer's command-line surface:
    drivers (via :func:`cli_scale`), ``repro sweep``/``repro figure``,
    and ``repro campaign run`` all call it, so the flag set cannot
    drift between entry points.  Parse results feed
    :func:`orchestrator_from_args`, which interprets every flag
    (including ``--backend``) in one place.
    """
    group = parser.add_argument_group("sweep execution")
    group.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for grid points (default: in-process sequential)",
    )
    group.add_argument(
        "--store", default=None, metavar="DIR",
        help="result-store directory for caching/checkpointing completed points",
    )
    group.add_argument(
        "--resume", action="store_true",
        help=f"resume from the result store (default dir {DEFAULT_STORE!r} "
             "when --store is not given): completed points are cache hits, "
             "only missing points run",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="ignore existing store entries (re-run and overwrite them)",
    )
    group.add_argument(
        "--progress", action="store_true",
        help="print one progress line per resolved point (stderr)",
    )
    group.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock limit, enforced by killing the point's "
             "worker process; without --workers one worker is used",
    )
    group.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="extra attempts after a failed/crashed/timed-out point (default 1)",
    )
    group.add_argument(
        "--telemetry", type=int, nargs="?", const=100, default=None,
        metavar="INTERVAL",
        help="record an in-run telemetry series per point (sampling window "
             "in cycles, default 100); series files land in the telemetry "
             "directory, keyed by spec fingerprint",
    )
    group.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="where per-point telemetry series go (default: "
             "<store>/telemetry, or .repro-store/telemetry without a store)",
    )
    group.add_argument(
        "--snapshot-every", type=int, default=None, metavar="CYCLES",
        help="checkpoint each in-flight point to the result store every "
             "CYCLES simulated cycles; a crashed/killed worker's retry "
             "resumes from its last checkpoint instead of cycle 0 "
             f"(implies a store, default dir {DEFAULT_STORE!r})",
    )
    group.add_argument(
        "--backend", default=None, metavar="NAME",
        help="engine backend executing each point (object | array); "
             "backends are bit-for-bit identical, so results and store "
             "keys do not depend on this choice (default: object)",
    )
    fabric = parser.add_argument_group(
        "distributed fabric",
        "cooperatively drain the grid with other hosts through one "
        "shared store directory (repro.fabric); run the same command "
        "on every host",
    )
    fabric.add_argument(
        "--fabric", action="store_true",
        help="join (or start) the fleet draining this grid: claim points "
             "via store leases, skip points the store already has, and "
             "wait for peers' in-flight points before reporting "
             f"(implies a store, default dir {DEFAULT_STORE!r})",
    )
    fabric.add_argument(
        "--lease-ttl", type=float, default=60.0, metavar="SECONDS",
        help="seconds without a heartbeat before a point's lease is "
             "considered stale and reclaimable (default 60)",
    )
    fabric.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="fleet-wide execution attempts per point before it is "
             "recorded as failed (default 3)",
    )
    fabric.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="this worker's identity in leases and status tables "
             "(default <hostname>-<pid>)",
    )
    fabric.add_argument(
        "--coordinator", default=None, metavar="URL",
        help="drain through a 'repro fabric serve' coordinator at URL "
             "instead of a shared store directory (no shared filesystem "
             "needed); --store then names this worker's local spool for "
             "checkpoints and telemetry (implies --fabric)",
    )
    return parser


def orchestration_options() -> argparse.ArgumentParser:
    """The argparse *parent* carrying the shared sweep-execution flags."""
    return add_run_args(argparse.ArgumentParser(add_help=False))


def _install_backend_from_args(args: argparse.Namespace) -> None:
    """``--backend`` becomes the process-wide default (or SystemExit)."""
    backend = getattr(args, "backend", None)
    if backend is not None:
        try:
            set_default_backend(backend)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None


def fabric_options_from_args(args: argparse.Namespace):
    """``(store, drain kwargs)`` for the ``--fabric`` execution path.

    Validates flag compatibility (``--workers``/``--no-cache``/
    ``--timeout`` conflict with cooperative draining), installs
    ``--backend`` as the process default, and resolves the shared store
    (``--store``, default :data:`DEFAULT_STORE`).  The returned kwargs
    feed :func:`repro.fabric.drain` (or, popped apart, a
    :class:`~repro.fabric.WorkQueue` + :class:`~repro.fabric.FabricWorker`
    pair for the long-lived ``repro fabric work`` command).
    """
    from repro.analysis.store import ResultStore
    from repro.engine.tracing import ConsoleProgress
    from repro.telemetry.config import TelemetryConfig

    if args.workers is not None:
        raise SystemExit(
            "--fabric runs one worker per process; for more workers run "
            "the same command again (on this host or any other sharing "
            "the store) instead of --workers"
        )
    if args.no_cache:
        raise SystemExit(
            "--fabric treats the store as the fleet's ground truth "
            "(cached = done); --no-cache would make workers repeat each "
            "other's points"
        )
    if args.timeout is not None:
        raise SystemExit(
            "--fabric has no per-point timeout (points run in-process); "
            "stuck workers are handled by lease expiry (--lease-ttl) "
            "and the fleet-wide --max-attempts budget"
        )
    _install_backend_from_args(args)
    telemetry = (
        TelemetryConfig(interval=args.telemetry)
        if getattr(args, "telemetry", None) is not None else None
    )
    coordinator = getattr(args, "coordinator", None)
    if coordinator:
        # HTTP mode: the authoritative store lives behind the
        # coordinator; --store names this worker's local spool.
        from repro.fabric.coordinator import open_coordinator
        from repro.fabric.lease import FabricBackendError

        try:
            store, leases = open_coordinator(
                coordinator, args.store or DEFAULT_STORE,
                worker_id=args.worker_id, lease_ttl=args.lease_ttl,
            )
        except FabricBackendError as exc:
            raise SystemExit(f"fabric error: {exc}") from None
    else:
        store = ResultStore(args.store or DEFAULT_STORE)
        leases = None
    options = dict(
        worker_id=args.worker_id,
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
        snapshot_every=getattr(args, "snapshot_every", None),
        telemetry=telemetry,
        telemetry_dir=getattr(args, "telemetry_dir", None),
        poll=getattr(args, "poll", 1.0),
        max_points=getattr(args, "max_points", None),
        observer=ConsoleProgress() if args.progress else None,
        leases=leases,
    )
    return store, options


def fabric_run_from_args(args: argparse.Namespace, specs):
    """Interpret an :func:`add_run_args` namespace as one fabric worker.

    The ``--fabric`` counterpart of :func:`orchestrator_from_args`:
    drains ``specs`` cooperatively (:func:`repro.fabric.drain`) honoring
    ``--snapshot-every``, ``--telemetry``, ``--progress``,
    ``--lease-ttl``, ``--max-attempts`` and ``--worker-id``.  Returns
    ``(results, summary)`` — orchestrator
    :class:`~repro.engine.orchestrator.PointResult` values in spec
    order plus the worker's :class:`~repro.fabric.FabricSummary`.
    """
    from repro.fabric import drain

    store, options = fabric_options_from_args(args)
    return drain(specs, store, **options)


def orchestrator_from_args(args: argparse.Namespace) -> Orchestrator | None:
    """Interpret an :func:`add_run_args` namespace (None = legacy).

    Besides building the orchestrator, this installs the requested
    engine backend as the process-wide default
    (:func:`repro.engine.backend.set_default_backend`), so every spec
    constructed afterwards — ``Scale.spec``, campaign expansion, the
    CLI — carries it.
    """
    from repro.analysis.store import ResultStore
    from repro.engine.tracing import ConsoleProgress

    from repro.telemetry.config import TelemetryConfig

    if getattr(args, "fabric", False) or getattr(args, "coordinator", None):
        # Commands that support cooperative draining branch to
        # fabric_run_from_args before ever building an orchestrator;
        # reaching here means this command cannot honor the flag.
        raise SystemExit(
            "--fabric/--coordinator are supported on 'repro sweep' and "
            "'repro campaign run' (and 'repro fabric work'); this "
            "command runs single-host"
        )
    _install_backend_from_args(args)
    snapshot_every = getattr(args, "snapshot_every", None)
    store_dir = args.store or (
        DEFAULT_STORE if (args.resume or snapshot_every is not None) else None
    )
    telemetry = (
        TelemetryConfig(interval=args.telemetry)
        if getattr(args, "telemetry", None) is not None else None
    )
    telemetry_dir = getattr(args, "telemetry_dir", None)
    if telemetry is not None and telemetry_dir is None and store_dir is None:
        # --telemetry with neither a store nor an explicit directory
        # still needs somewhere for the series files.
        telemetry_dir = f"{DEFAULT_STORE}/telemetry"
    workers = args.workers
    if args.timeout is not None:
        # The timeout is enforced by killing a stuck worker *process*;
        # in-process execution has nothing to kill.  Promote the default
        # to one worker, and refuse an explicit in-process request.
        if workers == 0:
            raise SystemExit(
                "--timeout cannot be enforced with --workers 0 (in-process "
                "execution has no worker process to kill); use --workers >= 1 "
                "or drop --timeout"
            )
        if workers is None:
            workers = 1
    wants = (
        workers is not None
        or store_dir is not None
        or args.progress
        or args.timeout is not None
        # A non-default retry budget needs the orchestrator: the legacy
        # no-orchestrator path raises on the first failed point.
        or args.retries != 1
        or telemetry is not None
    )
    if not wants:
        return None
    return Orchestrator(
        workers=workers if workers is not None else 0,
        store=ResultStore(store_dir) if store_dir is not None else None,
        use_cache=not args.no_cache,
        retries=args.retries,
        timeout=args.timeout,
        observer=ConsoleProgress() if args.progress else None,
        telemetry=telemetry,
        telemetry_dir=telemetry_dir,
        snapshot_every=snapshot_every,
    )


def cli_scale(description: str) -> Scale:
    """Parse the ``python -m repro.experiments.figX`` command line.

    Returns the selected :class:`Scale` and, as a side effect, installs
    the orchestration context requested by the shared
    ``--workers/--resume/--store/--no-cache/--progress`` flags.
    """
    parser = argparse.ArgumentParser(
        description=description, parents=[orchestration_options()]
    )
    parser.add_argument(
        "--scale",
        default="medium",
        choices=sorted(_SCALES),
        help="network size / run length preset (default: medium, h=3)",
    )
    args = parser.parse_args()
    set_orchestrator(orchestrator_from_args(args))
    return get_scale(args.scale)
