"""Shared scaffolding for the per-figure experiment drivers."""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.analysis.results import Series
from repro.engine.config import SimulationConfig
from repro.engine.runner import run_steady_state


@dataclass(frozen=True)
class Scale:
    """Size/duration preset for an experiment.

    ``paper_params`` selects the exact §V configuration (10/100-cycle
    links, 32/256-phit FIFOs); otherwise the proportionally shortened
    ``SimulationConfig.small`` parameters are used so that warm-up
    windows and credit round-trips stay balanced at small h.
    """

    name: str
    h: int
    warmup: int
    measure: int
    paper_params: bool = False
    burst_packets_per_node: int = 20
    transient_warmup: int = 2_000
    transient_post: int = 2_500

    def config(self, routing: str, **overrides) -> SimulationConfig:
        if self.paper_params:
            return SimulationConfig.paper(routing=routing, **overrides)
        return SimulationConfig.small(h=self.h, routing=routing, **overrides)

    def loads(self, saturating: float = 0.56, points: int = 7) -> list[float]:
        """A default load sweep reaching past saturation."""
        step = saturating / (points - 1)
        return [round(step * i, 4) for i in range(1, points)] + [
            round(saturating * 1.3, 4)
        ]


TINY = Scale("tiny", h=2, warmup=300, measure=400, burst_packets_per_node=5,
             transient_warmup=600, transient_post=800)
SMALL = Scale("small", h=2, warmup=1_000, measure=1_200, burst_packets_per_node=20,
              transient_warmup=1_500, transient_post=2_000)
MEDIUM = Scale("medium", h=3, warmup=1_000, measure=1_200, burst_packets_per_node=20,
               transient_warmup=1_500, transient_post=2_000)
LARGE = Scale("large", h=4, warmup=1_500, measure=2_000, burst_packets_per_node=30,
              transient_warmup=2_500, transient_post=3_000)
PAPER = Scale("paper", h=6, warmup=20_000, measure=20_000, paper_params=True,
              burst_packets_per_node=2_000, transient_warmup=30_000,
              transient_post=30_000)

_SCALES = {s.name: s for s in (TINY, SMALL, MEDIUM, LARGE, PAPER)}


def get_scale(name: str) -> Scale:
    """Scale preset by name."""
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(_SCALES)}") from None


def sweep(
    scale: Scale,
    routing: str,
    pattern: str,
    loads: list[float],
    **config_overrides,
) -> Series:
    """One latency/throughput curve for (routing, pattern)."""
    cfg = scale.config(routing, **config_overrides)
    series = Series(name=routing)
    for load in loads:
        series.add(run_steady_state(cfg, pattern, load, scale.warmup, scale.measure))
    return series


def cli_scale(description: str) -> Scale:
    """Parse ``--scale`` for the ``python -m repro.experiments.figX`` CLIs."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--scale",
        default="medium",
        choices=sorted(_SCALES),
        help="network size / run length preset (default: medium, h=3)",
    )
    return get_scale(parser.parse_args().scale)
