"""Fig. 3: latency and throughput under uniform random traffic (UN).

Paper observations to reproduce (§VI-A):

- OFAR models match MIN's low-load latency and saturate *later*;
- PB's latency is noticeably higher at low load (it misroutes packets
  it need not);
- local misrouting (OFAR vs OFAR-L) makes no significant difference
  under UN;
- VAL is omitted, as in the paper (it halves UN throughput by design).
"""

from __future__ import annotations

from repro.analysis.results import Series, Table, series_table
from repro.experiments.common import Scale, cli_scale, sweep

ROUTINGS = ("min", "pb", "ofar", "ofar-l")


def run(scale: Scale, loads: list[float] | None = None) -> tuple[Table, list[Series]]:
    """Regenerate Fig. 3a (latency) and Fig. 3b (throughput)."""
    if loads is None:
        loads = scale.loads()
    series = [sweep(scale, routing, "UN", loads) for routing in ROUTINGS]
    table = series_table(f"Fig 3 — uniform traffic (h={scale.h})", series)
    return table, series


def summary(series: list[Series]) -> Table:
    """Saturation summary: max throughput and low-load latency."""
    table = Table("Fig 3 — summary")
    for s in series:
        table.add(
            routing=s.name,
            saturation_thr=round(s.saturation_throughput(), 3),
            low_load_latency=round(s.points[0].avg_latency, 1),
        )
    return table


if __name__ == "__main__":
    table, series = run(cli_scale(__doc__))
    print(table.to_text())
    print(summary(series).to_text())
