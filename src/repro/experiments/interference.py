"""Multi-job interference study: an adversarial bully next to a victim.

The paper's single-tenant experiments show OFAR escaping ADV+h
saturation; this driver asks the *multi-tenant* question instead: when
one application (the "bully") drives worst-case adversarial traffic,
how much does a well-behaved neighbour (the "victim") suffer, and does
adaptive routing contain the blast radius?

Scenario
--------
The machine is split in half with the ``round-robin-groups`` placement,
so both jobs own nodes in every group (the common "spread" allocation
that maximizes exposure to a noisy neighbour):

- **bully** — ADV+h at high load: every group funnels its traffic onto
  its single offset-``h`` global link, the worst case of §III.
- **victim** — a modest-load SHIFT exchange whose shift (``h^3`` ranks,
  i.e. exactly ``h`` groups under this placement) makes its *minimal*
  routes ride the very global links the bully saturates.

Under MIN the victim's demand exceeds the residual fair share of those
links, so its latency explodes with nowhere to go.  OFAR misroutes
around the hot links — both jobs' traffic spreads — and the victim's
slowdown collapses to a small constant.  The per-job attribution of
:mod:`repro.workloads` makes this directly measurable: each routing
yields per-job LoadPoints, a slowdown against the job's *isolated*
baseline (same nodes, neighbour removed), and the job-by-job
interference matrix.

Run as a script or via ``python -m repro interference``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.results import Table
from repro.engine.runspec import RunSpec
from repro.experiments.common import Scale, cli_scale, current_orchestrator
from repro.topology.dragonfly import Dragonfly
from repro.workloads.runner import (
    WorkloadResult,
    isolated_spec,
    job_slowdowns,
    run_workload_cached,
)
from repro.workloads.spec import JobSpec, WorkloadSpec

#: The two routings the acceptance question compares; extend via run().
ROUTINGS = ("min", "ofar")

BULLY = "bully"
VICTIM = "victim"


def build_spec(
    scale: Scale,
    routing: str,
    bully_load: float = 0.7,
    victim_load: float = 0.2,
    seed: int = 7,
) -> RunSpec:
    """The bully/victim workload spec for one routing at this scale."""
    cfg = scale.config(routing, seed=seed)
    num_nodes = Dragonfly(cfg.h).num_nodes
    half = num_nodes // 2
    # Under round-robin-groups each job gets h^2 nodes per group with
    # ranks sorted group-major, so a rank shift of h^3 targets the group
    # h ahead — the same offset the bully saturates.
    shift = cfg.h ** 3
    workload = WorkloadSpec(
        jobs=(
            JobSpec(name=BULLY, nodes=half, pattern=f"ADV+{cfg.h}",
                    load=bully_load),
            JobSpec(name=VICTIM, nodes=num_nodes - half,
                    pattern=f"SHIFT+{shift}", load=victim_load),
        ),
        placement="round-robin-groups",
    )
    return RunSpec.for_workload(
        cfg, workload, warmup=scale.warmup, measure=max(scale.measure, 2_000)
    )


@dataclass
class RoutingOutcome:
    """One routing's shared run, isolated baselines, and slowdowns."""

    routing: str
    shared: WorkloadResult
    isolated: dict[str, WorkloadResult]
    slowdowns: dict[str, float]

    @property
    def coupling(self) -> float:
        """Bully-victim interference energy (off-diagonal matrix entry)."""
        return self.shared.interference[0][1]


def run_routing(
    scale: Scale,
    routing: str,
    bully_load: float = 0.7,
    victim_load: float = 0.2,
    seed: int = 7,
) -> RoutingOutcome:
    """Shared run + per-job isolated baselines for one routing."""
    spec = build_spec(scale, routing, bully_load, victim_load, seed)
    shared = _run(spec)
    isolated = {
        job.name: _run(isolated_spec(spec, job.name))
        for job in spec.workload.jobs
    }
    return RoutingOutcome(
        routing=routing,
        shared=shared,
        isolated=isolated,
        slowdowns=job_slowdowns(shared, isolated),
    )


def _run(spec: RunSpec) -> WorkloadResult:
    """Resolve one workload point through the installed orchestration
    context's store (cache + checkpoint), if any."""
    orchestrator = current_orchestrator()
    if orchestrator is None:
        return run_workload_cached(spec, store=None)
    return run_workload_cached(
        spec, store=orchestrator.store, use_cache=orchestrator.use_cache
    )


def run(
    scale: Scale,
    routings: tuple[str, ...] = ROUTINGS,
    bully_load: float = 0.7,
    victim_load: float = 0.2,
    seed: int = 7,
) -> list[RoutingOutcome]:
    return [
        run_routing(scale, routing, bully_load, victim_load, seed)
        for routing in routings
    ]


def points_table(scale: Scale, outcomes: list[RoutingOutcome]) -> Table:
    """Per-job LoadPoints of every shared run (one row per routing*job)."""
    table = Table(f"Interference — per-job points (h={scale.h}, shared run)")
    for outcome in outcomes:
        for jr in outcome.shared.jobs:
            row = {"routing": outcome.routing, "job": jr.name,
                   "nodes": jr.num_nodes}
            row.update(jr.point.as_row())
            table.add_row(row)
    return table


def slowdown_table(scale: Scale, outcomes: list[RoutingOutcome]) -> Table:
    """The headline comparison: per-job slowdown vs the isolated run."""
    table = Table(f"Interference — slowdown vs isolated baseline (h={scale.h})")
    for outcome in outcomes:
        table.add(
            routing=outcome.routing,
            bully_slowdown=round(outcome.slowdowns[BULLY], 3),
            victim_slowdown=round(outcome.slowdowns[VICTIM], 3),
            victim_thr=round(outcome.shared.job(VICTIM).point.throughput, 4),
            jain_jobs=round(outcome.shared.jain_across_jobs, 4),
            coupling=round(outcome.coupling, 4),
        )
    return table


def verdict(outcomes: list[RoutingOutcome]) -> str:
    """One-line answer to 'does OFAR contain the blast radius?'."""
    by_routing = {o.routing: o.slowdowns[VICTIM] for o in outcomes}
    if "min" not in by_routing or "ofar" not in by_routing:
        return "verdict needs both 'min' and 'ofar' outcomes"
    v_min, v_ofar = by_routing["min"], by_routing["ofar"]
    contained = v_ofar < v_min
    return (
        f"victim slowdown: {v_min:.2f}x under MIN vs {v_ofar:.2f}x under OFAR "
        f"— OFAR {'contains' if contained else 'does NOT contain'} "
        f"the bully's blast radius"
    )


if __name__ == "__main__":
    scale = cli_scale(__doc__)
    outcomes = run(scale)
    print(points_table(scale, outcomes).to_text())
    print(slowdown_table(scale, outcomes).to_text())
    print(verdict(outcomes))
