"""Fig. 9: congestion with a reduced number of VCs.

§VII stress test: OFAR with starved resources — an *embedded* ring,
only 2 VCs on local links and 1 VC on global links, and no congestion
management.  With so little buffering the canonical network can
congest completely, leaving only the escape ring making progress;
Fig. 9 shows average throughput degrading at high load for some
patterns/runs.  (The baselines could not even run: their VC-ordered
deadlock avoidance *requires* 3 local / 2 global VCs.)

The driver also reports the escape-ring usage, which rises sharply in
congested runs — the smoking gun that the canonical network stalled.
"""

from __future__ import annotations

from repro.analysis.results import Table
from repro.engine.runspec import RunSpec
from repro.experiments.common import Scale, cli_scale, run_specs


def reduced_config(scale: Scale, routing: str = "ofar"):
    """The §VII reduced-resource configuration."""
    return scale.config(
        routing,
        escape="embedded",
        local_vcs=2,
        global_vcs=1,
        injection_vcs=2,
    )


def run(scale: Scale, loads: list[float] | None = None,
        patterns: tuple[str, ...] | None = None) -> Table:
    """Regenerate Fig. 9 (OFAR, reduced VCs, three patterns)."""
    if loads is None:
        loads = scale.loads(saturating=0.5, points=5)
    if patterns is None:
        patterns = tuple(dict.fromkeys(("UN", "ADV+2", f"ADV+{scale.h}")))
    table = Table(f"Fig 9 — OFAR with reduced VCs (2 local / 1 global, embedded ring, h={scale.h})")
    cfg = reduced_config(scale)
    full_cfg = scale.config("ofar", escape="embedded")
    points = iter(run_specs([
        RunSpec(c, pattern, load, scale.warmup, scale.measure)
        for pattern in patterns for load in loads for c in (cfg, full_cfg)
    ]))
    for pattern in patterns:
        for load in loads:
            reduced = next(points)
            full = next(points)
            table.add(
                pattern=pattern,
                load=load,
                reduced_thr=round(reduced.throughput, 4),
                full_thr=round(full.throughput, 4),
                reduced_ring=round(reduced.ring_fraction, 4),
                full_ring=round(full.ring_fraction, 4),
            )
    return table


if __name__ == "__main__":
    print(run(cli_scale(__doc__)).to_text())
