"""Ablations of OFAR's design choices (§IV-B, §IV-C, §V).

The paper tuned several knobs empirically; these sweeps regenerate the
trade-offs so the chosen defaults can be audited:

- **threshold policy** (§IV-B): the variable policy
  ``Th_non-min = f * Q_min`` for several factors ``f`` against the
  static policy ``Th_min=100%, Th_non-min=40%``, under both uniform and
  adversarial traffic — the paper picked ``f = 0.9`` as "a reasonable
  trade-off between the performance in adversarial and uniform
  patterns";
- **allocator iterations** (§V): the 3-iteration separable allocator
  against 1 and 2 iterations;
- **ring-exit bound** (§IV-C): the livelock limit on abandoning the
  escape ring;
- **misroute-type policy** (§IV-A): full OFAR vs OFAR-L (no local
  misroute) vs a variant where *injection-queue* packets also misroute
  locally first, quantifying the starvation argument of §IV-A.
"""

from __future__ import annotations

from repro.analysis.results import Table
from repro.engine.config import ThresholdConfig
from repro.experiments.common import Scale, cli_scale, run_specs


def threshold_policies() -> list[tuple[str, ThresholdConfig]]:
    return [
        ("var-0.5", ThresholdConfig.variable(0.5)),
        ("var-0.75", ThresholdConfig.variable(0.75)),
        ("var-0.9", ThresholdConfig.variable(0.9)),  # paper default
        ("var-1.0", ThresholdConfig.variable(1.0)),
        ("static-40", ThresholdConfig.static(th_min=1.0, th_nonmin=0.4)),
    ]


def run_thresholds(scale: Scale, loads: list[float] | None = None) -> Table:
    """§IV-B: threshold policy vs throughput/latency on UN and ADV+h."""
    if loads is None:
        loads = [0.25, 0.45]
    table = Table(f"Ablation — misroute thresholds (h={scale.h})")
    cells = [
        (name, th, pattern, load)
        for name, th in threshold_policies()
        for pattern in ("UN", f"ADV+{scale.h}")
        for load in loads
    ]
    points = run_specs([
        scale.spec("ofar", pattern, load, thresholds=th)
        for _, th, pattern, load in cells
    ])
    for (name, th, pattern, load), pt in zip(cells, points):
        table.add(
            policy=name,
            pattern=pattern,
            load=load,
            throughput=round(pt.throughput, 4),
            latency=round(pt.avg_latency, 1),
            mis_rate=round(pt.local_misroute_rate + pt.global_misroute_rate, 3),
        )
    return table


def run_allocator_iterations(scale: Scale, load: float = 0.45) -> Table:
    """§V: iterations of the separable allocator."""
    table = Table(f"Ablation — allocator iterations (h={scale.h}, load={load})")
    cells = [
        (iters, pattern)
        for iters in (1, 2, 3, 4)
        for pattern in ("UN", f"ADV+{scale.h}")
    ]
    points = run_specs([
        scale.spec("ofar", pattern, load, allocator_iterations=iters)
        for iters, pattern in cells
    ])
    for (iters, pattern), pt in zip(cells, points):
        table.add(
            iterations=iters,
            pattern=pattern,
            throughput=round(pt.throughput, 4),
            latency=round(pt.avg_latency, 1),
        )
    return table


def run_ring_exits(scale: Scale, load: float = 0.5) -> Table:
    """§IV-C: the livelock bound on abandoning the escape ring."""
    table = Table(f"Ablation — max ring exits (h={scale.h}, load={load})")
    pattern = f"ADV+{scale.h}"
    exit_bounds = (0, 1, 4, 16)
    points = run_specs([
        scale.spec("ofar", pattern, load, max_ring_exits=exits)
        for exits in exit_bounds
    ])
    for exits, pt in zip(exit_bounds, points):
        table.add(
            max_exits=exits,
            throughput=round(pt.throughput, 4),
            latency=round(pt.avg_latency, 1),
            ring_frac=round(pt.ring_fraction, 4),
        )
    return table


def run_mechanism_family(scale: Scale, loads: list[float] | None = None) -> Table:
    """All implemented mechanisms side by side on the worst pattern,
    including the extension baselines UGAL-L and PAR."""
    if loads is None:
        loads = [0.2, 0.4]
    pattern = f"ADV+{scale.h}"
    table = Table(f"Ablation — mechanism family on {pattern} (h={scale.h})")
    routings = ("min", "val", "ugal", "par", "pb", "ofar-l", "ofar")
    points = iter(run_specs([
        scale.spec(routing, pattern, load,
                   **({"local_vcs": 4} if routing == "par" else {}))
        for routing in routings for load in loads
    ]))
    for routing in routings:
        row: dict = {"routing": routing}
        for load in loads:
            pt = next(points)
            row[f"thr@{load}"] = round(pt.throughput, 4)
            row[f"lat@{load}"] = round(pt.avg_latency, 1)
        table.add_row(row)
    return table


if __name__ == "__main__":
    scale = cli_scale(__doc__)
    print(run_thresholds(scale).to_text())
    print(run_allocator_iterations(scale).to_text())
    print(run_ring_exits(scale).to_text())
    print(run_mechanism_family(scale).to_text())
