"""Entry point for ``python -m repro``."""

from repro.cli import main

main()
