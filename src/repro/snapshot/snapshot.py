"""The user-facing snapshot object: capture, save/load, fork.

:class:`Snapshot` wraps one encoded state dict (see
:mod:`repro.snapshot.codec`) and adds:

- **persistence** — :meth:`save` writes atomically (temp file +
  ``os.replace``), :meth:`load` reads back; the on-disk form is plain
  JSON, so snapshots are diffable and store-friendly;
- **identity** — :meth:`digest` content-hashes the behavioral state
  (telemetry, extras and the embedded spec excluded), so two snapshots
  are behaviorally interchangeable iff their digests match;
- **fork-after-warmup** — :meth:`fork` rebuilds a *fresh* simulator
  (from the embedded :class:`~repro.engine.runspec.RunSpec`, or a
  caller-supplied builder for bespoke construction paths like the
  transient runner's) and overlays the captured state, yielding an
  independent simulator that continues bit-identically to the
  original.  Call it N times to branch N measurement variants off one
  shared warm-up.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import TYPE_CHECKING, Callable, Optional

from repro.snapshot.codec import (
    SNAPSHOT_FORMAT,
    SnapshotError,
    apply_state,
    digest_of,
    encode_state,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.runspec import RunSpec
    from repro.engine.simulator import Simulator


class Snapshot:
    """One captured simulator state, ready to persist or fork."""

    __slots__ = ("state",)

    def __init__(self, state: dict):
        if state.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"unsupported snapshot format {state.get('format')!r}"
            )
        self.state = state

    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        sim: "Simulator",
        spec: "Optional[RunSpec]" = None,
        extras: Optional[dict] = None,
    ) -> "Snapshot":
        """Freeze ``sim``'s complete state at the current cycle.

        ``sim`` keeps running unaffected; the snapshot is an independent
        value.  Pass ``spec`` to make the snapshot self-describing (so
        :meth:`fork` needs no builder); ``extras`` rides along verbatim
        for caller bookkeeping (e.g. mid-measurement baselines).
        """
        return cls(encode_state(sim, extras=extras, spec=spec))

    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        return self.state["cycle"]

    @property
    def extras(self) -> Optional[dict]:
        return self.state.get("extras")

    def spec(self) -> "Optional[RunSpec]":
        """The embedded RunSpec, decoded, or None."""
        raw = self.state.get("spec")
        if raw is None:
            return None
        from repro.engine.runspec import RunSpec

        return RunSpec.from_jsonable(raw)

    def digest(self) -> str:
        """Behavioral content hash (telemetry/extras/spec excluded)."""
        return digest_of(self.state)

    # ------------------------------------------------------------------
    def restore_into(self, sim: "Simulator") -> "Simulator":
        """Overlay this snapshot onto a freshly built, structurally
        identical simulator and return it."""
        return apply_state(sim, self.state)

    def fork(
        self, build: "Optional[Callable[[], Simulator]]" = None
    ) -> "Simulator":
        """A fresh, independent simulator resumed from this snapshot.

        Each call builds a new simulator — via ``build`` when given,
        else from the embedded spec — and overlays the captured state,
        so N forks give N simulators that all start from the identical
        warmed state and then evolve independently (mutating one never
        touches another; the codec holds no live object references).
        """
        if build is not None:
            return self.restore_into(build())
        spec = self.spec()
        if spec is None:
            raise SnapshotError(
                "fork() needs an embedded RunSpec (capture with spec=...) "
                "or an explicit build callable"
            )
        if spec.workload is not None:
            from repro.workloads.runner import build_workload_sim

            return self.restore_into(build_workload_sim(spec))
        from repro.engine.runner import _build_steady_sim

        return self.restore_into(_build_steady_sim(spec))

    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        return self.state

    @classmethod
    def from_jsonable(cls, data: dict) -> "Snapshot":
        return cls(data)

    def save(self, path: str) -> None:
        """Atomically write this snapshot to ``path`` as JSON."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self.state, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str) -> "Snapshot":
        with open(path) as fh:
            return cls(json.load(fh))
