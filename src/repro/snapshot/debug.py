"""State-hash debugging: where do two runs diverge, exactly?

Two tools, both built on the codec's canonical encoding:

- :func:`diff_states` — a structural diff of two encoded states as a
  list of ``(path, a_value, b_value)`` leaves, so "the snapshots
  differ" becomes "router 7 port 2 vc 1 holds pid routing 4312 in run A
  and 4313 in run B".
- :func:`first_divergence` — step two freshly built simulators in
  lockstep, hashing each cycle, and report the first cycle at which the
  digests part ways (plus the leaf diff at that cycle).  This bisects
  "the fingerprints differ after 10k cycles" down to the single cycle
  — and the single piece of state — where determinism broke.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.snapshot.codec import DIGEST_EXCLUDE, digest_of, encode_state

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator

#: diff_states stops collecting after this many leaves by default; a
#: diverged event wheel can differ in thousands of places and the first
#: few localize the problem.
DEFAULT_MAX_DIFFS = 50


def _walk_diff(path: str, a, b, out: list, limit: int) -> None:
    if len(out) >= limit:
        return
    if type(a) is not type(b):
        out.append((path, a, b))
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b), key=repr):
            sub = f"{path}.{key}" if path else str(key)
            if key not in a:
                out.append((sub, None, b[key]))
            elif key not in b:
                out.append((sub, a[key], None))
            else:
                _walk_diff(sub, a[key], b[key], out, limit)
            if len(out) >= limit:
                return
    elif isinstance(a, list):
        if len(a) != len(b):
            out.append((f"{path}.len", len(a), len(b)))
            if len(out) >= limit:
                return
        for i, (x, y) in enumerate(zip(a, b)):
            _walk_diff(f"{path}[{i}]", x, y, out, limit)
            if len(out) >= limit:
                return
    elif a != b:
        out.append((path, a, b))


def diff_states(
    a: dict, b: dict, max_diffs: int = DEFAULT_MAX_DIFFS,
    include_observation: bool = False,
) -> list[tuple[str, object, object]]:
    """Leaf-level differences between two encoded states.

    Returns up to ``max_diffs`` tuples ``(dotted.path, a_value,
    b_value)``; empty means behaviorally identical.  Telemetry, extras
    and the embedded spec are skipped unless ``include_observation``.
    """
    out: list[tuple[str, object, object]] = []
    skip = () if include_observation else DIGEST_EXCLUDE
    for key in sorted(set(a) | set(b)):
        if key in skip:
            continue
        if key not in a:
            out.append((key, None, b[key]))
        elif key not in b:
            out.append((key, a[key], None))
        else:
            _walk_diff(key, a[key], b[key], out, max_diffs)
        if len(out) >= max_diffs:
            break
    return out


def first_divergence(
    sim_a: "Simulator",
    sim_b: "Simulator",
    max_cycles: int,
    check_every: int = 1,
) -> Optional[dict]:
    """Step two simulators in lockstep until their state digests differ.

    Both simulators are advanced cycle by cycle (digesting every
    ``check_every`` cycles); at the first mismatch returns::

        {"cycle": int,              # first differing cycle boundary
         "digest_a": str, "digest_b": str,
         "diff": [(path, a, b), ...]}

    or ``None`` if the runs stay identical for ``max_cycles`` cycles.
    Start both simulators from the same point (fresh builds of the same
    spec, or two forks of one snapshot) — an initial mismatch is
    reported at the starting cycle before any stepping.
    """
    if sim_a.cycle != sim_b.cycle:
        raise ValueError(
            f"simulators must start at the same cycle "
            f"({sim_a.cycle} != {sim_b.cycle})"
        )
    for step in range(max_cycles + 1):
        if step % check_every == 0 or step == max_cycles:
            da, db = digest_of(encode_state(sim_a)), digest_of(encode_state(sim_b))
            if da != db:
                return {
                    "cycle": sim_a.cycle,
                    "digest_a": da,
                    "digest_b": db,
                    "diff": diff_states(encode_state(sim_a), encode_state(sim_b)),
                }
        if step == max_cycles:
            break
        sim_a.step()
        sim_b.step()
    return None
