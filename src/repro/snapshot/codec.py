"""The snapshot codec: complete simulator state to/from plain JSON.

:func:`encode_state` walks one live :class:`~repro.engine.simulator.
Simulator` and produces a versioned, JSON-serializable dict covering
*every* piece of mutable state the engine's future behavior depends on:

- router input buffers (packet FIFOs + phit occupancy), per-port read
  slots, the insertion-ordered pending-key sets, the sleep/scheduled
  flags, lazily created LRS arbiters and the per-channel credit /
  serialization / attribution state;
- the event wheel — arrivals, credit returns, ejections and the wake
  events of sleeping routers, bucket by bucket in FIFO order;
- every in-flight packet (full header, keyed by pid);
- the injection backlog (source queues, node busy times) and the
  derived active-node / active-router sets;
- ``Simulator.rng`` plus every traffic-generator RNG stream (pattern
  RNGs — deduplicated, the MIX patterns share one object — numpy
  Bernoulli streams, per-job generators of a
  :class:`~repro.workloads.composite.CompositeTraffic`);
- routing-algorithm state (PB's broadcast flag table; the other
  algorithms keep only pure topology memos, which recompute
  identically);
- metrics accumulators and, when attached, the telemetry sampler's
  ring buffer and window baselines.

:func:`apply_state` is the exact inverse: given a *freshly built*
structurally identical simulator, it overlays the state so that the
restored run continues bit-for-bit like the original would have —
same grants, same RNG draws, same LoadPoint bytes.

:func:`state_digest` hashes the canonical JSON form (telemetry,
caller extras and the embedded spec excluded, so observation and
provenance never change the digest) — equal digests at equal cycles
mean behaviorally identical simulators, which is what the
``repro snapshot bisect`` debugger exploits.

Derived state is *not* serialized, by design: buffer occupancy
(recomputed from packet sizes), the active-node order (non-empty
source queues), the active-router list (the scheduled flags),
``Router.pending`` membership would be derivable but its *insertion
order* is behaviorally significant, so the ordered key list is stored;
per-cycle memos (``congestion_cache``, the routing layer's pure
topology caches) reset cold and recompute identical values.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

from repro.network.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator

#: Version of the snapshot layout; bumped on any incompatible change.
SNAPSHOT_FORMAT = 1

#: Top-level sections excluded from :func:`state_digest`: telemetry is
#: observation (never perturbs), extras and spec are caller provenance.
DIGEST_EXCLUDE = ("telemetry", "extras", "spec")


class SnapshotError(RuntimeError):
    """A snapshot could not be encoded, decoded or applied."""


# Every Packet slot, in declaration order; the per-packet record is the
# corresponding value list.
_PACKET_FIELDS = Packet.__slots__

_METRIC_INTS = (
    "window_start",
    "generated_packets",
    "injected_packets",
    "ejected_packets",
    "ejected_phits",
    "latency_sum",
    "network_latency_sum",
    "hops_sum",
    "local_hops_sum",
    "global_hops_sum",
    "ring_hops_sum",
    "ring_packets",
    "local_misroutes",
    "global_misroutes",
    "max_latency",
)

_JOB_METRIC_INTS = (
    "generated",
    "injected",
    "ejected",
    "ejected_phits",
    "latency_sum",
    "network_latency_sum",
    "hops_sum",
    "local_hops_sum",
    "global_hops_sum",
    "ring_packets",
    "local_misroutes",
    "global_misroutes",
)

_NETWORK_COUNTERS = (
    "injected_packets",
    "ejected_packets",
    "injected_phits",
    "ejected_phits",
    "in_flight_packets",
    "movements",
    "last_eject_cycle",
    "ring_entries",
    "ring_moves",
    "ring_packets",
    "ring_entry_stalls",
    "local_misroutes",
    "global_misroutes",
)


# ----------------------------------------------------------------------
# RNG streams
# ----------------------------------------------------------------------
def _rng_state(rng) -> list:
    version, internal, gauss = rng.getstate()
    return [version, list(internal), gauss]


def _set_rng_state(rng, state) -> None:
    rng.setstate((state[0], tuple(state[1]), state[2]))


def _np_state(gen) -> dict:
    return gen.bit_generator.state


def _set_np_state(gen, state) -> None:
    gen.bit_generator.state = state


def _walk_pattern_rngs(pattern):
    """The pattern's RNG, then (for MIX) its components' — which share
    the same object by construction; callers deduplicate by id."""
    yield pattern.rng
    for sub in getattr(pattern, "_patterns", ()):
        yield from _walk_pattern_rngs(sub)


def _walk_generator(gen):
    """Yield ("py", Random) / ("np", numpy Generator) / ("flag",
    BurstTraffic) in a deterministic order mirroring construction.

    Capture and apply both walk this way over structurally identical
    generators, so the n-th yielded stream is the same logical stream
    on both sides.
    """
    from repro.traffic.generators import (
        BernoulliTraffic,
        BurstTraffic,
        TransientTraffic,
    )
    from repro.workloads.composite import CompositeTraffic

    if isinstance(gen, CompositeTraffic):
        for job in gen.jobs:
            yield from _walk_generator(job.generator)
    elif isinstance(gen, TransientTraffic):
        for _, pattern in gen.phases:
            for rng in _walk_pattern_rngs(pattern):
                yield ("py", rng)
        yield ("np", gen._bernoulli._np_rng)
    elif isinstance(gen, BernoulliTraffic):
        for rng in _walk_pattern_rngs(gen.pattern):
            yield ("py", rng)
        yield ("np", gen._np_rng)
    elif isinstance(gen, BurstTraffic):
        for rng in _walk_pattern_rngs(gen.pattern):
            yield ("py", rng)
        yield ("flag", gen)
    else:
        raise SnapshotError(
            f"cannot snapshot generator type {type(gen).__name__}"
        )


def _encode_generator(gen):
    if gen is None:
        return None
    py: list = []
    nps: list = []
    flags: list = []
    seen: set[int] = set()
    for kind, obj in _walk_generator(gen):
        if kind == "py":
            if id(obj) not in seen:
                seen.add(id(obj))
                py.append(_rng_state(obj))
        elif kind == "np":
            if id(obj) not in seen:
                seen.add(id(obj))
                nps.append(_np_state(obj))
        else:  # flag
            flags.append(bool(obj._emitted))
    return {"py": py, "np": nps, "flags": flags}


def _apply_generator(gen, state) -> None:
    if state is None:
        if gen is not None:
            raise SnapshotError("snapshot has no generator state but the "
                                "target simulator has a generator")
        return
    if gen is None:
        raise SnapshotError("snapshot carries generator state but the "
                            "target simulator has none")
    py = iter(state["py"])
    nps = iter(state["np"])
    flags = iter(state["flags"])
    seen: set[int] = set()
    try:
        for kind, obj in _walk_generator(gen):
            if kind == "py":
                if id(obj) not in seen:
                    seen.add(id(obj))
                    _set_rng_state(obj, next(py))
            elif kind == "np":
                if id(obj) not in seen:
                    seen.add(id(obj))
                    _set_np_state(obj, next(nps))
            else:
                obj._emitted = next(flags)
    except StopIteration:
        raise SnapshotError(
            "generator structure mismatch: the snapshot holds fewer RNG "
            "streams than the target generator"
        ) from None
    for leftover in (py, nps, flags):
        if next(leftover, None) is not None:
            raise SnapshotError(
                "generator structure mismatch: the snapshot holds more RNG "
                "streams than the target generator"
            )


# ----------------------------------------------------------------------
# Routing-algorithm state
# ----------------------------------------------------------------------
def _encode_routing(routing) -> dict:
    from repro.routing.piggyback import PiggybackRouting

    if isinstance(routing, PiggybackRouting):
        return {
            "pb_flags": [1 if f else 0 for f in routing._flags],
            "pb_last_update": routing._last_update,
        }
    # MIN / VAL / UGAL / PAR / OFAR carry no mutable state beyond pure
    # topology memos (recomputed identically) and draws from the shared
    # simulator RNG (covered by the "rng" section).
    return {}


def _apply_routing(routing, state: dict) -> None:
    from repro.routing.piggyback import PiggybackRouting

    if isinstance(routing, PiggybackRouting):
        if "pb_flags" not in state:
            raise SnapshotError("snapshot lacks PB flag state")
        routing._flags = [bool(f) for f in state["pb_flags"]]
        routing._last_update = state["pb_last_update"]
    elif state:
        raise SnapshotError(
            f"snapshot carries routing state {sorted(state)} the target "
            f"algorithm {type(routing).__name__} cannot accept"
        )


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def _encode_metrics(m) -> dict:
    out = {name: getattr(m, name) for name in _METRIC_INTS}
    # Int-keyed dicts become pair lists in *iteration* order: insertion
    # order is part of the state (e.g. float-summation order downstream).
    out["send_latency"] = [[k, list(v)] for k, v in m.send_latency.items()]
    out["latency_histogram"] = [[k, v] for k, v in m.latency_histogram.items()]
    out["source_counts"] = [[k, v] for k, v in m.source_counts.items()]
    out["job_stats"] = [
        [
            job,
            {
                **{name: getattr(js, name) for name in _JOB_METRIC_INTS},
                "latency_histogram": [[k, v] for k, v in js.latency_histogram.items()],
            },
        ]
        for job, js in m.job_stats.items()
    ]
    return out


def _apply_metrics(m, state: dict) -> None:
    from repro.engine.metrics import JobMetrics

    for name in _METRIC_INTS:
        setattr(m, name, state[name])
    m.send_latency = {k: list(v) for k, v in state["send_latency"]}
    m.latency_histogram = {k: v for k, v in state["latency_histogram"]}
    m.source_counts = {k: v for k, v in state["source_counts"]}
    job_stats = {}
    for job, rec in state["job_stats"]:
        js = JobMetrics(**{name: rec[name] for name in _JOB_METRIC_INTS})
        js.latency_histogram = {k: v for k, v in rec["latency_histogram"]}
        job_stats[job] = js
    m.job_stats = job_stats


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
def _encode_telemetry(sampler) -> dict:
    return {
        "config": sampler.config.to_jsonable(),
        "start_cycle": sampler.start_cycle,
        "dropped": sampler.dropped,
        "samples": [s.to_jsonable() for s in sampler._samples],
        "base": [[kind, list(vals)] for kind, vals in sampler._base.items()],
        "c0": sampler._c0,
        "w0": sampler._w0,
        "next": sampler._next,
        "lat_hist": [[k, v] for k, v in sampler._lat_hist.items()],
        "lat_sum": sampler._lat_sum,
        "lat_count": sampler._lat_count,
        "job_flow": [[j, list(v)] for j, v in sampler._job_flow.items()],
    }


def _apply_telemetry(sim, state: dict):
    from repro.telemetry.config import TelemetryConfig
    from repro.telemetry.sampler import TelemetrySample, TelemetrySampler

    sampler = TelemetrySampler(sim, TelemetryConfig.from_jsonable(state["config"]))
    # attach() rebuilds the per-channel lists deterministically from the
    # (already restored) network and chains the ejection hook; the saved
    # window baselines then overwrite the attach-time ones.
    sampler.attach()
    sampler.start_cycle = state["start_cycle"]
    sampler.dropped = state["dropped"]
    sampler._samples.extend(
        TelemetrySample.from_jsonable(s) for s in state["samples"]
    )
    for kind, vals in state["base"]:
        sampler._base[kind][:] = vals
    sampler._c0 = dict(state["c0"])
    sampler._w0 = state["w0"]
    sampler._next = state["next"]
    sampler._lat_hist = {k: v for k, v in state["lat_hist"]}
    sampler._lat_sum = state["lat_sum"]
    sampler._lat_count = state["lat_count"]
    sampler._job_flow = {j: list(v) for j, v in state["job_flow"]}
    return sampler


def _encode_arbiters(arbiters: dict) -> list:
    return [
        [port, arb._clock, [[key, t] for key, t in arb._last_grant.items()]]
        for port, arb in arbiters.items()
    ]


def _apply_arbiters(state: list) -> dict:
    from repro.network.arbiter import LRSArbiter

    out = {}
    for port, clock, grants in state:
        arb = LRSArbiter()
        arb._clock = clock
        arb._last_grant = {key: t for key, t in grants}
        out[port] = arb
    return out


# ----------------------------------------------------------------------
# The codec proper
# ----------------------------------------------------------------------
def encode_state(sim: "Simulator", extras=None, spec=None) -> dict:
    """Serialize the complete mutable state of ``sim`` to a JSON-safe
    dict.

    ``extras`` is an optional caller-owned JSON-able dict carried
    verbatim (e.g. the workload runner's per-channel attribution
    baseline); ``spec`` an optional :class:`~repro.engine.runspec.
    RunSpec` recorded so :meth:`Snapshot.fork` can rebuild the
    simulator without outside help.  Neither enters the digest.
    """
    net = sim.network
    packets: dict[int, list] = {}

    def reg(pkt: Packet) -> int:
        rec = packets.get(pkt.pid)
        if rec is None:
            packets[pkt.pid] = [getattr(pkt, f) for f in _PACKET_FIELDS]
        return pkt.pid

    source_queues = [
        [node, [reg(p) for p in queue]]
        for node, queue in enumerate(sim._source_queues)
        if queue
    ]

    routers = []
    chan_ids: dict[int, tuple[int, int]] = {}
    for rt in net.routers:
        bufs = [
            [port, vc, [reg(p) for p in buf._fifo]]
            for port, vcs in enumerate(rt.in_bufs)
            for vc, buf in enumerate(vcs)
            if buf._fifo
        ]
        channels = []
        for ch in rt.out:
            if ch is None:
                channels.append(None)
                continue
            chan_ids[id(ch)] = (rt.rid, ch.port)
            channels.append([
                list(ch.credits),
                ch.busy_until,
                ch.sent_phits,
                [[j, p] for j, p in ch.job_phits.items()],
                bool(ch.failed),
            ])
        routers.append({
            "bufs": bufs,
            "in_busy": [list(slots) for slots in rt.in_busy],
            # Ordered key list: pending *iteration order* drives the
            # allocator's request order, so it is state, not derivable.
            "pending": [[p, v] for p, v in rt.pending],
            "scheduled": bool(rt.scheduled),
            "in_arb": _encode_arbiters(rt._in_arbiters),
            "out_arb": _encode_arbiters(rt._out_arbiters),
            "channels": channels,
        })

    events = []
    for cyc in sorted(net._events._buckets):
        bucket = []
        for ev in net._events._buckets[cyc]:
            tag = ev[0]
            if tag == 0:  # arrival: (tag, rt, buf, (port, vc), pkt)
                _, rt, _buf, key, pkt = ev
                bucket.append([0, rt.rid, key[0], key[1], reg(pkt)])
            elif tag == 1:  # credit: (tag, upstream channel, vc, amount)
                _, ch, vc, amount = ev
                rid, port = chan_ids[id(ch)]
                bucket.append([1, rid, port, vc, amount])
            elif tag == 2:  # eject: (tag, pkt, due cycle)
                bucket.append([2, reg(ev[1]), ev[2]])
            else:  # wake: (tag, rt)
                bucket.append([3, ev[1].rid])
        events.append([cyc, bucket])

    state = {
        "format": SNAPSHOT_FORMAT,
        "config": json.loads(sim.config.to_json()),
        "cycle": sim.cycle,
        "pid": sim._pid,
        "created_packets": sim.created_packets,
        "progress_marker": sim._progress_marker,
        "progress_cycle": sim._progress_cycle,
        "rng": _rng_state(sim.rng),
        "packets": [[pid, rec] for pid, rec in sorted(packets.items())],
        "source_queues": source_queues,
        "node_busy": list(sim._node_busy),
        "metrics": _encode_metrics(sim.metrics),
        "network": {
            "counters": {name: getattr(net, name) for name in _NETWORK_COUNTERS},
            "disabled_rings": sorted(net.disabled_rings),
            "fault_disabled_rings": sorted(net._fault_disabled_rings),
            "routers": routers,
        },
        "events": events,
        "routing": _encode_routing(sim.routing),
        "generator": _encode_generator(sim.generator),
        "telemetry": (
            _encode_telemetry(sim.telemetry) if sim.telemetry is not None else None
        ),
    }
    if spec is not None:
        state["spec"] = spec.to_jsonable()
    if extras is not None:
        state["extras"] = extras
    return state


def apply_state(sim: "Simulator", state: dict) -> "Simulator":
    """Overlay ``state`` onto a *freshly built*, structurally identical
    simulator (same config, same generator construction, no cycles run,
    no telemetry attached).  Returns ``sim``.
    """
    if state.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"unsupported snapshot format {state.get('format')!r} "
            f"(this codec reads format {SNAPSHOT_FORMAT})"
        )
    if sim.cycle != 0 or sim.network.injected_packets != 0:
        raise SnapshotError(
            "restore target must be a freshly built simulator "
            f"(cycle={sim.cycle}, injected={sim.network.injected_packets})"
        )
    if json.loads(sim.config.to_json()) != state["config"]:
        raise SnapshotError(
            "config mismatch: the snapshot was captured under a different "
            "SimulationConfig than the restore target was built with"
        )
    net = sim.network

    pkts: dict[int, Packet] = {}
    for pid, rec in state["packets"]:
        pkt = Packet.__new__(Packet)
        for name, value in zip(_PACKET_FIELDS, rec):
            setattr(pkt, name, value)
        pkts[pid] = pkt

    sim.cycle = state["cycle"]
    sim._pid = state["pid"]
    sim.created_packets = state["created_packets"]
    sim._progress_marker = state["progress_marker"]
    sim._progress_cycle = state["progress_cycle"]
    _set_rng_state(sim.rng, state["rng"])

    for node, pids in state["source_queues"]:
        sim._source_queues[node].extend(pkts[pid] for pid in pids)
        sim._active_nodes.add(node)
        sim._active_order.append(node)
    sim._active_order.sort()
    sim._node_busy[:] = state["node_busy"]

    _apply_metrics(sim.metrics, state["metrics"])

    ns = state["network"]
    for name, value in ns["counters"].items():
        setattr(net, name, value)
    net.disabled_rings = set(ns["disabled_rings"])
    net._fault_disabled_rings = set(ns["fault_disabled_rings"])
    active: list[int] = []
    for rt, rs in zip(net.routers, ns["routers"]):
        for port, vc, pids in rs["bufs"]:
            buf = rt.in_bufs[port][vc]
            for pid in pids:
                pkt = pkts[pid]
                buf._fifo.append(pkt)
                buf.occupancy += pkt.size
        for slots, values in zip(rt.in_busy, rs["in_busy"]):
            slots[:] = values
        for p, v in rs["pending"]:
            rt.pending[(p, v)] = None
        rt.scheduled = rs["scheduled"]
        if rt.scheduled:
            active.append(rt.rid)
        rt._in_arbiters = _apply_arbiters(rs["in_arb"])
        rt._out_arbiters = _apply_arbiters(rs["out_arb"])
        rt.congestion_cache = (-1, 0.0)  # per-cycle memo: recomputes
        for ch, cs in zip(rt.out, rs["channels"]):
            if ch is None:
                if cs is not None:
                    raise SnapshotError("channel layout mismatch")
                continue
            credits, busy_until, sent_phits, job_phits, failed = cs
            ch.credits[:] = credits
            ch.busy_until = busy_until
            ch.sent_phits = sent_phits
            ch.job_phits = {j: p for j, p in job_phits}
            ch.failed = failed
    net._active_routers[:] = active  # built in rid order: already sorted

    wheel = net._events
    for cyc, bucket in state["events"]:
        for ev in bucket:
            tag = ev[0]
            if tag == 0:
                _, rid, port, vc, pid = ev
                rt = net.routers[rid]
                event = (0, rt, rt.in_bufs[port][vc], (port, vc), pkts[pid])
            elif tag == 1:
                _, rid, port, vc, amount = ev
                event = (1, net.routers[rid].out[port], vc, amount)
            elif tag == 2:
                event = (2, pkts[ev[1]], ev[2])
            else:
                event = (3, net.routers[ev[1]])
            wheel.schedule(cyc, event)

    _apply_routing(sim.routing, state["routing"])
    _apply_generator(sim.generator, state["generator"])
    if state["telemetry"] is not None:
        _apply_telemetry(sim, state["telemetry"])
    # Engine hook: derived acceleration state (e.g. the array backend's
    # struct-of-arrays mirrors) is rebuilt from the restored object graph.
    sim._on_state_applied()
    return sim


# ----------------------------------------------------------------------
# Digests
# ----------------------------------------------------------------------
def digest_of(state: dict) -> str:
    """Content hash of an encoded state (telemetry/extras/spec excluded)."""
    doc = {k: v for k, v in state.items() if k not in DIGEST_EXCLUDE}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def state_digest(sim: "Simulator") -> str:
    """Cycle-granularity content hash of a live simulator's state.

    Two deterministic runs of the same spec have equal digests at every
    cycle; the first cycle at which they differ localizes a divergence
    (see ``repro snapshot bisect`` and :func:`repro.snapshot.debug.
    first_divergence`).
    """
    return digest_of(encode_state(sim))
