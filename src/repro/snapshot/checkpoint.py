"""Mid-run checkpointing for orchestrated points.

:func:`run_spec_checkpointed` is a drop-in for
:func:`~repro.engine.runner.run_spec` that periodically saves the full
simulator state (atomic writes, result-store layout) and, on a rerun,
resumes from the last checkpoint instead of cycle 0.  Because the
snapshot codec is bit-exact, the resumed run produces the *identical*
LoadPoint (and WorkloadResult, and telemetry series) an uninterrupted
run would — crash recovery without a reproducibility tax.

Checkpoints live beside the other store objects::

    <store>/snapshots/<fp[:2]>/<fp>.json

keyed by the spec fingerprint, so each point owns exactly one
checkpoint slot (newer saves atomically replace older ones).  A
corrupt, foreign or version-mismatched checkpoint reads as a miss —
the point restarts from cycle 0, never errors.  On success the
checkpoint is deleted: the completed result supersedes it.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.snapshot.codec import SnapshotError
from repro.snapshot.snapshot import Snapshot

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.metrics import LoadPoint
    from repro.engine.runspec import RunSpec

#: Store subdirectory holding mid-run checkpoints.
CHECKPOINT_KIND = "snapshots"


class Preempted(Exception):
    """Raised by :func:`run_spec_checkpointed` when its ``should_stop``
    callback fires: the in-flight point was checkpointed at the current
    cycle and can resume bit-identically — the run was preempted, not
    failed.  Carries the spec fingerprint and the checkpoint cycle."""

    def __init__(self, fingerprint: str, cycle: int) -> None:
        super().__init__(f"preempted at cycle {cycle} ({fingerprint[:12]})")
        self.fingerprint = fingerprint
        self.cycle = cycle


def checkpoint_path(store_root: str | os.PathLike, fingerprint: str) -> Path:
    """``<store>/snapshots/<fp[:2]>/<fp>.json`` — the store's sharded
    layout, one slot per spec."""
    return Path(store_root) / CHECKPOINT_KIND / fingerprint[:2] / f"{fingerprint}.json"


def load_checkpoint(
    store_root: str | os.PathLike, spec: "RunSpec"
) -> Optional[Snapshot]:
    """The spec's checkpoint, or None on any kind of miss.

    Same corruption tolerance as the result store: unreadable JSON, a
    foreign format version, or a checkpoint whose embedded spec does not
    match all read as "no checkpoint".
    """
    path = checkpoint_path(store_root, spec.fingerprint())
    try:
        snap = Snapshot.load(path)
    except (OSError, ValueError, KeyError, TypeError, SnapshotError):
        return None
    if snap.state.get("spec") != spec.to_jsonable():
        return None
    return snap


def clear_checkpoint(store_root: str | os.PathLike, spec: "RunSpec") -> None:
    try:
        os.unlink(checkpoint_path(store_root, spec.fingerprint()))
    except OSError:
        pass


# ----------------------------------------------------------------------
def _encode_baseline(baseline: dict) -> list:
    """JSON-safe form of the workload runner's per-channel baseline
    (tuple keys become [rid, port, pairs] triples, iteration order)."""
    return [
        [rid, port, [[j, p] for j, p in counts.items()]]
        for (rid, port), counts in baseline.items()
    ]


def _decode_baseline(encoded: list) -> dict:
    return {
        (rid, port): {j: p for j, p in pairs}
        for rid, port, pairs in encoded
    }


def run_spec_checkpointed(
    spec: "RunSpec",
    store_root: str | os.PathLike,
    snapshot_every: int,
    telemetry=None,
    telemetry_dir: str | os.PathLike | None = None,
    should_stop=None,
) -> "LoadPoint":
    """Run one point with periodic checkpoints; resume if one exists.

    Checkpoints are taken at every multiple of ``snapshot_every``
    cycles.  The measurement-window bookkeeping (metrics reset, the
    workload runner's attribution baseline, the scenario runner's
    boundary state, the telemetry sampler attach) happens exactly once
    at the warm-up boundary and *travels inside the checkpoint* (the
    baseline/state rides in the snapshot's ``extras``, the sampler in
    its telemetry section), so a resume lands mid-measurement with
    nothing replayed and nothing lost.

    Workload specs additionally persist their full
    :class:`~repro.workloads.runner.WorkloadResult` as a store sidecar,
    matching the orchestrator's default worker; scenario specs persist
    their :class:`~repro.cluster.runner.ScenarioResult` the same way.
    With a telemetry config (``telemetry`` or ``spec.telemetry``) the
    series is written to ``<telemetry_dir>/<fp[:2]>/<fp>.jsonl``, as
    usual.

    ``should_stop`` is the graceful-preemption hook (SIGTERM in the
    fabric worker): a zero-arg callable polled at every segment
    boundary.  When it returns true, the current state is checkpointed
    unconditionally and :class:`Preempted` is raised — the point can
    resume later, on any host, bit-identically.
    """
    if snapshot_every < 1:
        raise ValueError("snapshot_every must be >= 1")
    if spec.max_windows is not None:
        raise ValueError(
            "checkpointed execution runs a fixed warmup+measure budget; "
            "windowed-convergence specs (max_windows) cannot resume "
            "mid-protocol — run them without --snapshot-every"
        )
    from repro.engine.runner import _build_steady_sim

    workload = spec.workload is not None
    scenario = spec.scenario is not None
    if scenario:
        from repro.cluster.runner import build_scenario_sim, scenario_plan

        def _build(s):
            return build_scenario_sim(s)[0]
    elif workload:
        from repro.workloads.runner import build_workload_sim as _build
    else:
        _build = _build_steady_sim

    sim = _build(spec)
    plan = scenario_plan(spec.scenario, sim.network.topo) if scenario else None
    extras: Optional[dict] = None
    snap = load_checkpoint(store_root, spec)
    if snap is not None:
        sim = snap.restore_into(_build(spec))
        extras = snap.extras
    path = checkpoint_path(store_root, spec.fingerprint())
    tcfg = telemetry if telemetry is not None else spec.telemetry

    total = spec.warmup + spec.measure
    while True:
        if sim.cycle >= spec.warmup and (extras is None or not extras.get("measuring")):
            # Warm-up boundary bookkeeping, exactly once per point: the
            # "measuring" marker rides in every later checkpoint.
            sim.metrics.reset(sim.cycle)
            extras = {"measuring": True}
            if scenario:
                from repro.cluster.runner import fresh_state

                extras["scenario"] = fresh_state()
            elif workload:
                from repro.workloads.runner import _job_phit_baseline

                extras["baseline"] = _encode_baseline(_job_phit_baseline(sim.network))
            if tcfg is not None:
                from repro.telemetry.sampler import TelemetrySampler

                TelemetrySampler(sim, tcfg).attach()
        if sim.cycle >= total:
            break
        if should_stop is not None and should_stop():
            Snapshot.capture(sim, spec=spec, extras=extras).save(str(path))
            raise Preempted(spec.fingerprint(), sim.cycle)
        stop = min(total, (sim.cycle // snapshot_every + 1) * snapshot_every)
        if sim.cycle < spec.warmup:
            stop = min(stop, spec.warmup)
        if scenario:
            from repro.cluster.runner import advance_scenario

            advance_scenario(sim, plan, extras["scenario"], stop)
        else:
            sim.run(stop - sim.cycle)
        if sim.cycle < total and sim.cycle % snapshot_every == 0:
            Snapshot.capture(sim, spec=spec, extras=extras).save(str(path))

    series = sim.telemetry.finish() if sim.telemetry is not None else None
    if scenario:
        from repro.analysis.store import ResultStore
        from repro.cluster.runner import (
            SIDECAR_KIND as SCENARIO_KIND,
            summarize_scenario,
        )
        from repro.cluster.schedule import compile_scenario

        compiled = compile_scenario(spec.scenario, sim.network.topo)
        result = summarize_scenario(sim, compiled, plan, extras["scenario"])
        ResultStore(store_root).put_sidecar(SCENARIO_KIND, spec, result.to_jsonable())
        point = result.total
    elif workload:
        from repro.workloads.runner import SIDECAR_KIND, _summarize

        result = _summarize(sim, _decode_baseline(extras["baseline"]))
        from repro.analysis.store import ResultStore

        ResultStore(store_root).put_sidecar(SIDECAR_KIND, spec, result.to_jsonable())
        point = result.total
    else:
        point = sim.metrics.load_point(spec.load, sim.cycle)
    if series is not None and telemetry_dir is not None:
        from repro.telemetry.export import write_jsonl

        fp = spec.fingerprint()
        write_jsonl(series, Path(telemetry_dir) / fp[:2] / f"{fp}.jsonl")
    clear_checkpoint(store_root, spec)
    return point


__all__ = [
    "CHECKPOINT_KIND",
    "Preempted",
    "checkpoint_path",
    "clear_checkpoint",
    "load_checkpoint",
    "run_spec_checkpointed",
]
