"""Deterministic checkpoint/restore for the simulation engine.

The codec (:mod:`repro.snapshot.codec`) serializes the *complete*
mutable simulator state to versioned, content-hashed JSON; restoring it
into a freshly built simulator resumes bit-identically — same grants,
same RNG draws, same LoadPoint bytes.  On top of it:

- :class:`Snapshot` — capture / save / load / :meth:`Snapshot.fork`
  (warm up once, branch N measurement variants);
- :mod:`repro.snapshot.checkpoint` — mid-run orchestrator checkpoints
  in the result store, so a killed worker resumes instead of replaying
  from cycle 0;
- :mod:`repro.snapshot.debug` — state digests and lockstep bisection of
  determinism divergences to the first differing cycle.
"""

from repro.snapshot.codec import (
    SNAPSHOT_FORMAT,
    SnapshotError,
    apply_state,
    digest_of,
    encode_state,
    state_digest,
)
from repro.snapshot.debug import diff_states, first_divergence
from repro.snapshot.snapshot import Snapshot

__all__ = [
    "SNAPSHOT_FORMAT",
    "Snapshot",
    "SnapshotError",
    "apply_state",
    "diff_states",
    "digest_of",
    "encode_state",
    "first_divergence",
    "state_digest",
]
