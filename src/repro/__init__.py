"""OFAR — On-the-Fly Adaptive Routing in high-radix hierarchical networks.

A full reproduction of García et al., *On-the-Fly Adaptive Routing in
High-Radix Hierarchical Networks* (ICPP 2012): a cycle-driven dragonfly
network simulator with virtual cut-through routers, credit flow control
and a separable LRS allocator; the MIN/VAL/UGAL-L/PB baselines with
ascending-VC deadlock avoidance; and the OFAR mechanism itself —
in-transit adaptive misrouting protected by a Hamiltonian escape ring
with bubble flow control (physical or embedded).

Quickstart::

    from repro import RunSpec, SimulationConfig, run_spec

    cfg = SimulationConfig.small(h=2, routing="ofar")
    point = run_spec(RunSpec(cfg, "ADV+2", load=0.3))
    print(point.throughput, point.avg_latency)

The engine executing a point is a per-spec detail: ``RunSpec(...,
backend="array")`` selects the numpy struct-of-arrays engine, proven
bit-for-bit identical to the default object engine (see
:mod:`repro.engine.backend`).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.engine.backend import (
    EngineBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.engine.config import SimulationConfig, ThresholdConfig
from repro.engine.metrics import LoadPoint, Metrics
from repro.engine.runner import (
    BurstResult,
    TransientResult,
    build_steady_sim,
    run_burst,
    run_load_sweep,
    run_spec,
    run_transient,
    run_transient_forked,
)
from repro.engine.runspec import RunSpec
from repro.engine.simulator import DeadlockError, Simulator
from repro.network.network import Network
from repro.snapshot import Snapshot
from repro.topology.dragonfly import Dragonfly
from repro.topology.hamiltonian import HamiltonianRing

__version__ = "1.0.0"

__all__ = [
    "SimulationConfig",
    "ThresholdConfig",
    "LoadPoint",
    "Metrics",
    "RunSpec",
    "Simulator",
    "DeadlockError",
    "EngineBackend",
    "Network",
    "Dragonfly",
    "HamiltonianRing",
    "Snapshot",
    "available_backends",
    "build_steady_sim",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "run_spec",
    "run_load_sweep",
    "run_transient",
    "run_transient_forked",
    "run_burst",
    "TransientResult",
    "BurstResult",
    "__version__",
]
