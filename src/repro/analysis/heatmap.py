"""Congestion heatmaps and settle times from telemetry series.

Renders :class:`~repro.telemetry.sampler.TelemetrySeries` data as ASCII
heatmaps (the repo is plot-free by design — tables and text renderings
everywhere), and extracts the quantities the paper argues about:

- **router × class over time** (:func:`render_router_heatmap`): one row
  per router, one column per sampling window.  Under ADV+h the paper's
  §III funneling is directly visible — the h routers holding the
  group-to-group global links saturate their local rows while the rest
  idle.
- **group × group** (:func:`render_group_heatmap` /
  :func:`group_matrix`): mean global-link utilization from group i to
  group j over a cycle range; compare a pre-switch and post-switch
  range of a Fig. 6 transient to watch the traffic matrix rotate.
- **settle time from utilization** (:func:`settle_from_utilization`):
  the first window after a disturbance from which a link-utilization
  statistic stays near its final level — an independent cross-check of
  the send-latency-based ``TransientResult.settle_cycle`` (Fig. 6's
  adaptation period), measured from a different signal.

Per-link renderings need series recorded with
``TelemetryConfig(per_link=True)``; class-level statistics work on any
series.
"""

from __future__ import annotations

from typing import Callable

from repro.telemetry.sampler import TelemetrySample, TelemetrySeries

#: Glyph ramp, darkest last; index = value / vmax scaled to the ramp.
GLYPHS = " .:-=+*#%@"


def _glyph(value: float, vmax: float) -> str:
    if vmax <= 0 or value != value or value <= 0:
        return GLYPHS[0]
    idx = int(value / vmax * (len(GLYPHS) - 1) + 0.5)
    return GLYPHS[min(idx, len(GLYPHS) - 1)]


def _per_link_samples(series: TelemetrySeries) -> list[TelemetrySample]:
    samples = [s for s in series.samples if s.router_util is not None]
    if not samples:
        raise ValueError(
            "series has no per-link detail — record with "
            "TelemetryConfig(per_link=True)"
        )
    return samples


# ----------------------------------------------------------------------
# Router × class over time
# ----------------------------------------------------------------------
def render_router_heatmap(
    series: TelemetrySeries,
    kind: str = "local",
    mark_cycle: int | None = None,
) -> str:
    """One row per router, one column per window, darkness = mean
    utilization of the router's ``kind`` links in that window.

    ``mark_cycle`` inserts a ``|`` column before the first window ending
    at or after that cycle (e.g. a transient's switch cycle).
    """
    samples = _per_link_samples(series)
    if kind not in samples[0].router_util:
        raise ValueError(
            f"no {kind!r} links in series "
            f"(have {sorted(samples[0].router_util)})"
        )
    grid = [s.router_util[kind] for s in samples]  # [sample][router]
    num_routers = len(grid[0])
    vmax = max((v for row in grid for v in row), default=0.0)
    mark_at = None
    if mark_cycle is not None:
        for i, s in enumerate(samples):
            if s.cycle >= mark_cycle:
                mark_at = i
                break
    lines = [
        f"{kind}-link utilization by router over time "
        f"(interval={series.config.interval}, max={vmax:.3f})"
    ]
    width = len(str(num_routers - 1))
    for rid in range(num_routers):
        cells = []
        for i, row in enumerate(grid):
            if i == mark_at:
                cells.append("|")
            cells.append(_glyph(row[rid], vmax))
        lines.append(f"r{rid:>{width}} {''.join(cells)}")
    first, last = samples[0].cycle, samples[-1].cycle
    tail = f"  ('|' = cycle {mark_cycle})" if mark_at is not None else ""
    lines.append(f"{'':>{width + 1}} cycles {first}..{last}{tail}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Group × group
# ----------------------------------------------------------------------
def group_matrix(
    series: TelemetrySeries,
    start: int | None = None,
    end: int | None = None,
) -> list[list[float]]:
    """Mean group→group global-link utilization over sample cycles in
    [start, end) (whole series by default)."""
    samples = [
        s for s in _per_link_samples(series)
        if s.group_util is not None
        and (start is None or s.cycle >= start)
        and (end is None or s.cycle < end)
    ]
    if not samples:
        raise ValueError(f"no per-link samples in cycle range [{start}, {end})")
    n = len(samples[0].group_util)
    acc = [[0.0] * n for _ in range(n)]
    for s in samples:
        for i, row in enumerate(s.group_util):
            for j, v in enumerate(row):
                acc[i][j] += v
    return [[v / len(samples) for v in row] for row in acc]


def render_group_heatmap(
    series: TelemetrySeries,
    start: int | None = None,
    end: int | None = None,
) -> str:
    """src-group × dst-group grid of mean global-link utilization."""
    matrix = group_matrix(series, start, end)
    n = len(matrix)
    vmax = max((v for row in matrix for v in row), default=0.0)
    lo = "start" if start is None else start
    hi = "end" if end is None else end
    width = len(str(n - 1))
    lines = [
        f"group→group global-link utilization, cycles [{lo}, {hi}) "
        f"(max={vmax:.3f})",
        f"{'':>{width + 1}} " + "".join(str(j % 10) for j in range(n)),
    ]
    for i, row in enumerate(matrix):
        lines.append(f"g{i:>{width}} " + "".join(_glyph(v, vmax) for v in row))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Settle time from utilization
# ----------------------------------------------------------------------
def settle_from_utilization(
    series: TelemetrySeries,
    after: int,
    kind: str = "local",
    stat: Callable[[TelemetrySample], float] | None = None,
    factor: float = 1.5,
    tail: int = 3,
) -> int | None:
    """First sample cycle >= ``after`` from which ``stat`` stays within
    ``factor`` × its settled level (the mean of the last ``tail``
    samples); None when it never settles.

    Defaults to per-window p99 ``kind``-link utilization — the signal
    the ISSUE's acceptance demo watches.  Mirrors the semantics of
    ``TransientResult.settle_cycle`` so the two settle times are
    directly comparable: latency and link load should agree on when the
    routing adapted (Fig. 6).
    """
    if stat is None:
        def stat(s: TelemetrySample) -> float:
            return s.link_util[kind].p99

    points = [(s.cycle, stat(s)) for s in series.samples]
    if len(points) < tail:
        raise ValueError(f"need at least tail={tail} samples, have {len(points)}")
    settled_level = sum(v for _, v in points[-tail:]) / tail
    target = factor * settled_level
    settled_from = None
    for cyc, v in points:
        if cyc < after:
            continue
        if v <= target:
            if settled_from is None:
                settled_from = cyc
        else:
            settled_from = None
    return settled_from


# ----------------------------------------------------------------------
# Scalar sparkline (CLI summaries)
# ----------------------------------------------------------------------
def render_series(
    points: list[tuple[int, float]],
    label: str,
    mark_cycle: int | None = None,
) -> str:
    """One-line glyph sparkline of (cycle, value) points."""
    if not points:
        return f"{label}: (no samples)"
    vmax = max(v for _, v in points)
    cells = []
    marked = False
    for cyc, v in points:
        if mark_cycle is not None and not marked and cyc >= mark_cycle:
            cells.append("|")
            marked = True
        cells.append(_glyph(v, vmax))
    return f"{label} [{''.join(cells)}] max={vmax:.3f}"
