"""Closed-form throughput bounds and cost models (§III and §VII).

All throughputs are in phits/(node·cycle), with every link carrying one
phit per cycle, as in the paper.
"""

from __future__ import annotations


def min_adversarial_bound(h: int) -> float:
    """Throughput of MIN under ADV+N traffic: ``1 / (2 h^2)``.

    All ``2h^2`` nodes of a group funnel through the single global link
    to the destination group (§III).  For h=16 this is below 0.2% of
    capacity.
    """
    return 1.0 / (2 * h * h)


def valiant_bound() -> float:
    """Valiant's global-link limit: 0.5 phit/(node·cycle).

    Each packet takes two global hops instead of one, doubling the
    average global-link utilization (§III).
    """
    return 0.5


def local_link_advh_bound(h: int) -> float:
    """The paper's key observation (§III, Fig. 2a): under ``ADV+n*h``
    all traffic misrouted into an intermediate group arrives on the
    ``h`` global links of one router and must leave over the ``h``
    global links of the *next* router, crossing a single local link —
    limiting Valiant throughput to ``1/h`` even with idle global links.
    """
    return 1.0 / h


def min_local_neighbor_bound(h: int) -> float:
    """MIN under ADV-LOCAL (all ``h`` nodes of a router target the next
    router of the group): the single local link bounds throughput at
    ``1/h`` (§III)."""
    return 1.0 / h


# ----------------------------------------------------------------------
# §VII: cost of the physical escape ring
# ----------------------------------------------------------------------
def total_links(h: int) -> int:
    """Links of the maximum-size dragonfly (each counted once)."""
    groups = 2 * h * h + 1
    local = groups * (h * (2 * h - 1))  # a(a-1)/2 per group with a = 2h
    global_ = groups * (groups - 1) // 2
    return local + global_


def ring_added_link_fraction(h: int) -> float:
    """Fraction of links added by a physical Hamiltonian ring.

    One wire per router (N wires on an N-router network) against the
    original link count; equals ``2 / (3h - 1)``, i.e. the paper's
    "order of 2/(3h)" (≈4% at h=16).
    """
    groups = 2 * h * h + 1
    added = groups * 2 * h  # one ring wire per router
    return added / total_links(h)


def original_global_wires(h: int) -> int:
    """Long (global) wires of the original topology: ``2h^4 + h^2``."""
    return 2 * h**4 + h**2


def ring_added_global_wires(h: int) -> int:
    """Long wires added by the physical ring: one per group crossing,
    ``2h^2 + 1`` (the paper: ≈0.3% more global wires at h=16)."""
    return 2 * h * h + 1


def ring_added_global_fraction(h: int) -> float:
    """``(2h^2+1) / (2h^4+h^2)`` — the §VII long-wire overhead."""
    return ring_added_global_wires(h) / original_global_wires(h)


def max_edge_disjoint_rings(h: int) -> int:
    """Upper bound on edge-disjoint embedded Hamiltonian rings (§VII).

    Bounded by the local links per group, ``h * (2h - 1)``, divided by
    the local hops a Hamiltonian path uses per group, ``2h - 1`` — i.e.
    ``h`` rings.  (Relevant for fault tolerance: the system survives as
    long as one embedded ring has fewer than two failures.)
    """
    return (h * (2 * h - 1)) // (2 * h - 1)
