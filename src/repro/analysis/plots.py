"""Terminal (ASCII) charts for experiment output.

The reproduction runs in terminal-only environments, so the figures are
rendered as text: multi-series line/scatter charts for the
latency/throughput sweeps, horizontal bars for the burst comparisons,
and sparklines for transients.  Pure functions over plain data — no
plotting dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass

_SPARK = "▁▂▃▄▅▆▇█"
_MARKERS = "ox+*#@%&"


@dataclass(frozen=True)
class ChartSeries:
    """One named series of (x, y) points."""

    name: str
    points: list[tuple[float, float]]


def sparkline(values: list[float]) -> str:
    """One-line intensity strip of a numeric series."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        return _SPARK[0] * len(values)
    return "".join(_SPARK[int((v - lo) / span * (len(_SPARK) - 1))] for v in values)


def bar_chart(
    labels: list[str],
    values: list[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart with aligned labels and values."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return "(empty)"
    top = max(max(values), 1e-12)
    label_w = max(len(s) for s in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / top)) if value > 0 else ""
        lines.append(f"{label.ljust(label_w)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def line_chart(
    series: list[ChartSeries],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Multi-series scatter chart on a character grid.

    Each series gets a marker from ``o x + * ...``; collisions show the
    later series' marker.  Axes are annotated with min/max values.
    """
    points = [(x, y) for s in series for x, y in s.points]
    if not points:
        return "(empty chart)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, s in enumerate(series):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in s.points:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker
    lines = []
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={s.name}" for i, s in enumerate(series)
    )
    lines.append(f"{y_label}  [{legend}]")
    lines.append(f"{y_hi:>10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.4g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(
        " " * 12 + f"{x_lo:<.4g}" + " " * max(1, width - 16) + f"{x_hi:>.4g}  ({x_label})"
    )
    return "\n".join(lines)


def throughput_chart(series_list, width: int = 64, height: int = 14) -> str:
    """Offered-load vs accepted-throughput chart for runner Series."""
    chart = [
        ChartSeries(s.name, [(p.offered_load, p.throughput) for p in s.points])
        for s in series_list
    ]
    return line_chart(chart, width, height, x_label="offered load", y_label="throughput")


def latency_chart(series_list, width: int = 64, height: int = 14, cap: float | None = None) -> str:
    """Offered-load vs latency chart (optionally capped for readability)."""
    chart = []
    for s in series_list:
        pts = [
            (p.offered_load, min(p.avg_latency, cap) if cap else p.avg_latency)
            for p in s.points
        ]
        chart.append(ChartSeries(s.name, pts))
    return line_chart(chart, width, height, x_label="offered load", y_label="latency")
