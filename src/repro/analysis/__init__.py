"""Analytical companions to the simulator.

- :mod:`repro.analysis.bounds` — closed-form throughput bounds and the
  §VII cost model of the physical escape ring;
- :mod:`repro.analysis.offsets` — static analysis of how ADV+N traffic
  concentrates on intermediate-group local links under Valiant routing
  (the Fig. 2a/2b mechanism);
- :mod:`repro.analysis.static_load` — Monte-Carlo per-link load
  prediction for arbitrary patterns under the MIN/VAL templates
  (predicts saturation without simulating);
- :mod:`repro.analysis.linkstats` — per-link utilization measured from
  a live simulation;
- :mod:`repro.analysis.plots` — terminal (ASCII) charts;
- :mod:`repro.analysis.results` — tabular result containers and
  CSV/markdown emission for the experiment drivers.
"""

from repro.analysis.bounds import (
    min_adversarial_bound,
    valiant_bound,
    local_link_advh_bound,
    ring_added_link_fraction,
    ring_added_global_wires,
    original_global_wires,
    max_edge_disjoint_rings,
)
from repro.analysis.offsets import (
    l2_link_concentration,
    max_l2_concentration,
    valiant_offset_bound,
    offset_bound_table,
)
from repro.analysis.results import Series, Table
from repro.analysis.static_load import analyze, predicted_saturation, StaticLoadReport
from repro.analysis.latency_model import LatencyModel
from repro.analysis.linkstats import LinkMonitor, LinkStats

__all__ = [
    "analyze",
    "predicted_saturation",
    "StaticLoadReport",
    "LatencyModel",
    "LinkMonitor",
    "LinkStats",
    "min_adversarial_bound",
    "valiant_bound",
    "local_link_advh_bound",
    "ring_added_link_fraction",
    "ring_added_global_wires",
    "original_global_wires",
    "max_edge_disjoint_rings",
    "l2_link_concentration",
    "max_l2_concentration",
    "valiant_offset_bound",
    "offset_bound_table",
    "Series",
    "Table",
]
