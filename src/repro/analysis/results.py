"""Result containers and emission helpers for experiment drivers.

Experiments produce :class:`Series` (one named curve of
:class:`~repro.engine.metrics.LoadPoint`) and :class:`Table` (rows of
flat dicts).  Both render to aligned text (for the bench output the
paper figures are compared against) and CSV.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field

from repro.engine.metrics import LoadPoint


@dataclass
class Series:
    """One named latency/throughput-vs-load curve."""

    name: str
    points: list[LoadPoint] = field(default_factory=list)

    def add(self, point: LoadPoint) -> None:
        self.points.append(point)

    def saturation_throughput(self) -> float:
        """Maximum accepted throughput over the sweep."""
        if not self.points:
            raise ValueError(f"series {self.name!r} is empty")
        return max(p.throughput for p in self.points)

    def latency_at(self, load: float) -> float:
        """Average latency at the sweep point closest to ``load``."""
        if not self.points:
            raise ValueError(f"series {self.name!r} is empty")
        best = min(self.points, key=lambda p: abs(p.offered_load - load))
        return best.avg_latency

    def saturation_load(self, latency_factor: float = 3.0) -> float:
        """Offered load at which latency exceeds ``latency_factor`` times
        the lowest-load latency (a simple saturation-point estimator)."""
        if not self.points:
            raise ValueError(f"series {self.name!r} is empty")
        base = self.points[0].avg_latency
        for p in self.points:
            if p.avg_latency > latency_factor * base:
                return p.offered_load
        return self.points[-1].offered_load

    # ------------------------------------------------------------------
    # Lossless JSON round-trip (result store, provenance files)
    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict:
        return {
            "name": self.name,
            "points": [p.to_jsonable() for p in self.points],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "Series":
        if not isinstance(data, dict) or set(data) != {"name", "points"}:
            raise ValueError("Series JSON must be {name, points}")
        return cls(
            name=data["name"],
            points=[LoadPoint.from_jsonable(p) for p in data["points"]],
        )

    def to_json(self) -> str:
        """NaN-safe JSON (NaN averages of empty windows become null)."""
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Series":
        return cls.from_jsonable(json.loads(text))


@dataclass
class Table:
    """Rows of flat dicts with aligned-text and CSV rendering."""

    title: str
    rows: list[dict] = field(default_factory=list)

    def add(self, **row) -> None:
        self.rows.append(row)

    def add_row(self, row: dict) -> None:
        self.rows.append(row)

    @property
    def columns(self) -> list[str]:
        cols: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def to_text(self) -> str:
        """Aligned plain-text rendering (what benches print)."""
        cols = self.columns
        if not cols:
            return f"== {self.title} ==\n(empty)\n"
        cells = [[str(r.get(c, "")) for c in cols] for r in self.rows]
        widths = [
            max(len(c), *(len(row[i]) for row in cells)) if cells else len(c)
            for i, c in enumerate(cols)
        ]
        out = [f"== {self.title} =="]
        out.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
        for row in cells:
            out.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(out) + "\n"

    def to_csv(self) -> str:
        cols = self.columns
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=cols)
        writer.writeheader()
        for row in self.rows:
            writer.writerow({c: row.get(c, "") for c in cols})
        return buf.getvalue()

    def save_csv(self, path: str) -> None:
        with open(path, "w", newline="") as f:
            f.write(self.to_csv())


def series_table(title: str, series: list[Series]) -> Table:
    """Tabulate several curves side by side (throughput + latency)."""
    table = Table(title)
    if not series:
        return table
    loads = [p.offered_load for p in series[0].points]
    for i, load in enumerate(loads):
        row: dict = {"load": round(load, 4)}
        for s in series:
            if i < len(s.points):
                row[f"{s.name}_thr"] = round(s.points[i].throughput, 4)
                row[f"{s.name}_lat"] = round(s.points[i].avg_latency, 1)
        table.add_row(row)
    return table
