"""Per-link utilization statistics from a simulated network.

§III's argument is about *where* phits flow: under ADV+n·h, a handful
of intermediate-group local links carry h times their fair share.  The
simulator's output channels count every phit they send
(``OutputChannel.sent_phits``), so after a run we can reconstruct the
utilization distribution per link class and find the funnels directly —
the dynamic counterpart of :mod:`repro.analysis.offsets`.

This is a single-window, end-of-run view.  For the same counters
sampled *over time* (per-window deltas, heatmaps, settle times), see
the telemetry subsystem (:mod:`repro.telemetry`), which diffs
``sent_phits`` exactly the way :meth:`LinkMonitor.loads` does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.network import Network
from repro.topology.dragonfly import PortKind


@dataclass(frozen=True)
class LinkLoad:
    """Utilization of one directed channel over a window."""

    router: int
    port: int
    kind: str
    utilization: float  # phits sent / window cycles, in [0, 1]


@dataclass
class LinkStats:
    """Utilization distribution of one link class."""

    kind: str
    count: int
    mean: float
    maximum: float
    p99: float

    @staticmethod
    def of(loads: list[float], kind: str) -> "LinkStats":
        if not loads:
            return LinkStats(kind=kind, count=0, mean=0.0, maximum=0.0, p99=0.0)
        ordered = sorted(loads)
        p99_idx = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return LinkStats(
            kind=kind,
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            maximum=ordered[-1],
            p99=ordered[p99_idx],
        )


class LinkMonitor:
    """Snapshot/diff per-channel phit counters around a window.

    Usage::

        monitor = LinkMonitor(sim.network)
        monitor.start(sim.cycle)
        sim.run(10_000)
        loads = monitor.loads(sim.cycle)
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self._baseline: dict[tuple[int, int], int] = {}
        self._start_cycle = 0
        self._started = False

    def start(self, cycle: int) -> None:
        """Mark the beginning of the measurement window."""
        self._start_cycle = cycle
        self._started = True
        self._baseline = {
            (rt.rid, ch.port): ch.sent_phits
            for rt in self.network.routers
            for ch in rt.out
            if ch is not None
        }

    def loads(self, cycle: int, kinds: tuple[PortKind, ...] = (PortKind.LOCAL, PortKind.GLOBAL)) -> list[LinkLoad]:
        """Per-channel utilization since :meth:`start`."""
        if not self._started:
            # Without a baseline this would silently report lifetime
            # counters over a bogus max(1, cycle) window — make the
            # misuse loud instead.
            raise RuntimeError(
                "LinkMonitor.start(cycle) must be called before reading "
                "loads/stats: no baseline window is defined yet"
            )
        window = max(1, cycle - self._start_cycle)
        out: list[LinkLoad] = []
        for rt in self.network.routers:
            for ch in rt.out:
                if ch is None or ch.kind not in kinds:
                    continue
                sent = ch.sent_phits - self._baseline.get((rt.rid, ch.port), 0)
                out.append(
                    LinkLoad(
                        router=rt.rid,
                        port=ch.port,
                        kind=ch.kind.value,
                        utilization=sent / window,
                    )
                )
        return out

    def stats(self, cycle: int) -> dict[str, LinkStats]:
        """Utilization distribution per link class."""
        loads = self.loads(cycle)
        by_kind: dict[str, list[float]] = {}
        for load in loads:
            by_kind.setdefault(load.kind, []).append(load.utilization)
        return {kind: LinkStats.of(vals, kind) for kind, vals in by_kind.items()}

    def hottest(self, cycle: int, n: int = 10) -> list[LinkLoad]:
        """The n most-utilized local/global channels."""
        return sorted(self.loads(cycle), key=lambda x: -x.utilization)[:n]

    def imbalance(self, cycle: int, kind: PortKind = PortKind.LOCAL) -> float:
        """max/mean utilization of a link class — the §III funnel factor.

        Uniform traffic gives ~1-2; ADV+n·h under Valiant routing gives
        ~h on local links.
        """
        loads = [x.utilization for x in self.loads(cycle, kinds=(kind,))]
        loads = [x for x in loads if x > 0]
        if not loads:
            return 0.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean > 0 else 0.0
