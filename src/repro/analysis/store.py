"""Content-addressed on-disk store of steady-state results.

Every completed :class:`~repro.engine.runspec.RunSpec` point can be
persisted as one JSON file keyed by the spec's
:meth:`~repro.engine.runspec.RunSpec.fingerprint`.  Because the key is
a content hash of the *complete* simulation input, the store doubles as

- a **cache** — re-running a sweep (or an overlapping one) hits
  existing entries instead of re-simulating, and the cached
  :class:`~repro.engine.metrics.LoadPoint` is bit-identical to a fresh
  run (the engine is deterministic in the spec; JSON round-trips Python
  floats exactly);
- a **checkpoint** — entries are written atomically the moment a point
  completes, so a killed sweep resumes at the first missing fingerprint
  with no separate checkpoint file to maintain.

Layout::

    <root>/objects/<fp[:2]>/<fp>.json

Each entry records the full spec (provenance + corruption guard), the
exact point, and bookkeeping metadata.  A corrupt, truncated, or
foreign entry is treated as a miss — the point re-runs and the entry is
overwritten — never as an error.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.metrics import LoadPoint
from repro.engine.runspec import RunSpec

STORE_FORMAT = 1


def write_json_atomic(path: Path, payload: dict) -> None:
    """Write ``payload`` as JSON via tmp file + rename.

    The store's one write primitive, shared by every layer that parks
    files under the store root (entries, sidecars, snapshot checkpoints
    via their own codec, fabric leases and worker stats): readers see
    the old file or the new file, never a partial one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    blob = json.dumps(payload, indent=1, sort_keys=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as f:
            f.write(blob)
        os.replace(tmp, path)  # atomic on POSIX: readers see old or new, never partial
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class StoreStats:
    """Read-side counters, for observability and tests."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0  # present but unreadable/foreign (counted as misses too)
    writes: int = 0


class ResultStore:
    """Fingerprint-keyed store of (RunSpec -> LoadPoint) entries."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    def path_for(self, fingerprint: str) -> Path:
        return self.root / "objects" / fingerprint[:2] / f"{fingerprint}.json"

    def __contains__(self, spec: RunSpec) -> bool:
        return self.path_for(spec.fingerprint()).exists()

    # ------------------------------------------------------------------
    # Existence probes: the store-access seam the fabric layer uses, so
    # a remote (coordinator-backed) store can answer the same questions
    # over a socket that this one answers with a stat.
    # ------------------------------------------------------------------
    def has(self, fingerprint: str) -> bool:
        """A result entry exists for ``fingerprint`` (no parse)."""
        return self.path_for(fingerprint).exists()

    def has_sidecar(self, kind: str, fingerprint: str) -> bool:
        """A ``kind`` sidecar exists for ``fingerprint`` (no parse)."""
        return self.sidecar_path(kind, fingerprint).exists()

    def resolved_many(
        self, fingerprints: list[str], failure_kind: str = "failures"
    ) -> dict[str, str | None]:
        """Batch resolution probe: fp -> ``"result"`` | ``"failure"`` | None.

        One call covers a whole grid scan; the remote store implements
        it as a single round trip where per-point :meth:`has` calls
        would each cost one.
        """
        out: dict[str, str | None] = {}
        for fp in fingerprints:
            if self.has(fp):
                out[fp] = "result"
            elif self.has_sidecar(failure_kind, fp):
                out[fp] = "failure"
            else:
                out[fp] = None
        return out

    def __len__(self) -> int:
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.json"))

    # ------------------------------------------------------------------
    def get(self, spec: RunSpec) -> LoadPoint | None:
        """Cached point for ``spec``, or None on any kind of miss.

        Corruption tolerance is deliberate: a truncated file (killed
        writer on a non-atomic filesystem), invalid JSON, a wrong
        format version, or an entry whose recorded spec does not match
        (hash collision, stale fingerprint scheme) all read as a miss,
        so the point simply re-runs.
        """
        path = self.path_for(spec.fingerprint())
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(text)
            if entry["format"] != STORE_FORMAT:
                raise ValueError(f"unknown store format {entry['format']!r}")
            if entry["spec"] != spec.to_jsonable():
                raise ValueError("stored spec does not match fingerprint")
            point = LoadPoint.from_jsonable(entry["point"])
        except (ValueError, KeyError, TypeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return point

    def put(self, spec: RunSpec, point: LoadPoint, wall_time: float | None = None) -> Path:
        """Persist one completed point atomically (tmp file + rename)."""
        fingerprint = spec.fingerprint()
        path = self.path_for(fingerprint)
        entry = {
            "format": STORE_FORMAT,
            "fingerprint": fingerprint,
            "spec": spec.to_jsonable(),
            "point": point.to_jsonable(),
            "wall_time": wall_time,
            "created": time.time(),
        }
        self._write_atomic(path, entry)
        self.stats.writes += 1
        return path

    # ------------------------------------------------------------------
    # Sidecars: auxiliary results keyed by the same fingerprint
    # ------------------------------------------------------------------
    def sidecar_path(self, kind: str, fingerprint: str) -> Path:
        """``<root>/<kind>/<fp[:2]>/<fp>.json`` — the main layout with
        the object class in place of ``objects``."""
        if not kind or kind == "objects" or "/" in kind:
            raise ValueError(f"invalid sidecar kind {kind!r}")
        return self.root / kind / fingerprint[:2] / f"{fingerprint}.json"

    def get_sidecar(self, kind: str, spec: RunSpec) -> dict | None:
        """Cached sidecar payload for ``spec``, or None on any miss.

        Same corruption tolerance as :meth:`get`: unreadable, foreign,
        or spec-mismatched sidecars read as misses and get overwritten
        by the next :meth:`put_sidecar`.
        """
        path = self.sidecar_path(kind, spec.fingerprint())
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(text)
            if entry["format"] != STORE_FORMAT:
                raise ValueError(f"unknown store format {entry['format']!r}")
            if entry["spec"] != spec.to_jsonable():
                raise ValueError("stored spec does not match fingerprint")
            payload = entry["payload"]
        except (ValueError, KeyError, TypeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put_sidecar(self, kind: str, spec: RunSpec, payload: dict) -> Path:
        """Persist one sidecar payload atomically under ``kind``."""
        fingerprint = spec.fingerprint()
        path = self.sidecar_path(kind, fingerprint)
        entry = {
            "format": STORE_FORMAT,
            "fingerprint": fingerprint,
            "spec": spec.to_jsonable(),
            "payload": payload,
            "created": time.time(),
        }
        self._write_atomic(path, entry)
        self.stats.writes += 1
        return path

    # ------------------------------------------------------------------
    @staticmethod
    def _write_atomic(path: Path, entry: dict) -> None:
        write_json_atomic(path, entry)

    # ------------------------------------------------------------------
    # Maintenance: verify / gc / stats (the ``repro store`` CLI)
    # ------------------------------------------------------------------
    #: Store subdirectories that are NOT fingerprint-keyed JSON entry
    #: kinds: leases are the fabric's live claims, workers its per-worker
    #: stats files, telemetry holds JSONL series, snapshots full
    #: simulator checkpoints (their own codec/format).
    _NON_ENTRY_KINDS = ("leases", "workers", "telemetry", "snapshots")

    def entry_kinds(self) -> list[str]:
        """Every fingerprint-keyed JSON entry kind present on disk
        (``objects`` plus sidecar kinds like ``workloads``/``failures``)."""
        if not self.root.is_dir():
            return []
        return sorted(
            child.name
            for child in self.root.iterdir()
            if child.is_dir() and child.name not in self._NON_ENTRY_KINDS
        )

    def verify(self) -> list[tuple[Path, str]]:
        """Re-hash every cached entry; the corrupt ones, with reasons.

        For each entry (``objects`` and every sidecar kind) the embedded
        spec is re-fingerprinted and compared against the filename — the
        same guard :meth:`get` applies lazily, applied eagerly to the
        whole store.  ``objects`` entries additionally prove their
        LoadPoint still parses.  A clean store returns ``[]``.
        """
        bad: list[tuple[Path, str]] = []
        for kind in self.entry_kinds():
            for path in sorted((self.root / kind).glob("*/*.json")):
                reason = self._verify_entry(kind, path)
                if reason is not None:
                    bad.append((path, reason))
        return bad

    def _verify_entry(self, kind: str, path: Path) -> str | None:
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return "unreadable or invalid JSON"
        try:
            if entry["format"] != STORE_FORMAT:
                return f"unknown store format {entry['format']!r}"
            spec = RunSpec.from_jsonable(entry["spec"])
            if spec.fingerprint() != path.stem:
                return "embedded spec does not hash to the filename"
            if kind == "objects":
                LoadPoint.from_jsonable(entry["point"])
        except (ValueError, KeyError, TypeError) as exc:
            return f"malformed entry: {exc}"
        return None

    def gc(self, dry_run: bool = False) -> "GCReport":
        """Delete orphaned snapshot checkpoints and telemetry sidecars.

        A *checkpoint* (``snapshots/<fp[:2]>/<fp>.json``) is mid-run
        state for a point still being executed; once its point has a
        result — or a recorded ``failures`` sidecar (retry budget
        exhausted) — the checkpoint is dead weight and is removed.
        Checkpoints for points with neither are potentially in flight
        and are kept (reported as such).

        A *telemetry series* (``telemetry/<fp[:2]>/<fp>.jsonl``) rides
        alongside its point's result; one whose result is absent is an
        orphan (the point was re-keyed, failed, or its entry was
        deleted) and is removed.
        """
        report = GCReport(dry_run=dry_run)
        fail_dir = self.root / "failures"
        for path in sorted((self.root / "snapshots").glob("*/*.json")):
            fp = path.stem
            resolved = (
                self.path_for(fp).exists()
                or (fail_dir / fp[:2] / f"{fp}.json").exists()
            )
            if resolved:
                report.remove_checkpoint(path, dry_run)
            else:
                report.kept_checkpoints += 1
        for path in sorted((self.root / "telemetry").glob("*/*.jsonl")):
            if not self.path_for(path.stem).exists():
                report.remove_telemetry(path, dry_run)
        return report

    def stats_by_kind(self) -> dict[str, tuple[int, int]]:
        """``{kind: (entry count, total bytes)}`` for every store dir."""
        stats: dict[str, tuple[int, int]] = {}
        if not self.root.is_dir():
            return stats
        for child in sorted(self.root.iterdir()):
            if not child.is_dir():
                continue
            files = [p for p in child.rglob("*") if p.is_file()]
            stats[child.name] = (len(files), sum(p.stat().st_size for p in files))
        return stats


@dataclass
class GCReport:
    """What :meth:`ResultStore.gc` removed (or would, with ``dry_run``)."""

    dry_run: bool = False
    removed_checkpoints: list[Path] = field(default_factory=list)
    removed_telemetry: list[Path] = field(default_factory=list)
    kept_checkpoints: int = 0  # potentially in-flight: result+failure absent
    bytes_reclaimed: int = 0

    def _remove(self, path: Path, dry_run: bool) -> None:
        try:
            self.bytes_reclaimed += path.stat().st_size
            if not dry_run:
                path.unlink()
        except OSError:
            pass

    def remove_checkpoint(self, path: Path, dry_run: bool) -> None:
        self.removed_checkpoints.append(path)
        self._remove(path, dry_run)

    def remove_telemetry(self, path: Path, dry_run: bool) -> None:
        self.removed_telemetry.append(path)
        self._remove(path, dry_run)
