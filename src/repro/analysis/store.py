"""Content-addressed on-disk store of steady-state results.

Every completed :class:`~repro.engine.runspec.RunSpec` point can be
persisted as one JSON file keyed by the spec's
:meth:`~repro.engine.runspec.RunSpec.fingerprint`.  Because the key is
a content hash of the *complete* simulation input, the store doubles as

- a **cache** — re-running a sweep (or an overlapping one) hits
  existing entries instead of re-simulating, and the cached
  :class:`~repro.engine.metrics.LoadPoint` is bit-identical to a fresh
  run (the engine is deterministic in the spec; JSON round-trips Python
  floats exactly);
- a **checkpoint** — entries are written atomically the moment a point
  completes, so a killed sweep resumes at the first missing fingerprint
  with no separate checkpoint file to maintain.

Layout::

    <root>/objects/<fp[:2]>/<fp>.json

Each entry records the full spec (provenance + corruption guard), the
exact point, and bookkeeping metadata.  A corrupt, truncated, or
foreign entry is treated as a miss — the point re-runs and the entry is
overwritten — never as an error.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.engine.metrics import LoadPoint
from repro.engine.runspec import RunSpec

STORE_FORMAT = 1


@dataclass
class StoreStats:
    """Read-side counters, for observability and tests."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0  # present but unreadable/foreign (counted as misses too)
    writes: int = 0


class ResultStore:
    """Fingerprint-keyed store of (RunSpec -> LoadPoint) entries."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.stats = StoreStats()

    # ------------------------------------------------------------------
    def path_for(self, fingerprint: str) -> Path:
        return self.root / "objects" / fingerprint[:2] / f"{fingerprint}.json"

    def __contains__(self, spec: RunSpec) -> bool:
        return self.path_for(spec.fingerprint()).exists()

    def __len__(self) -> int:
        objects = self.root / "objects"
        if not objects.is_dir():
            return 0
        return sum(1 for _ in objects.glob("*/*.json"))

    # ------------------------------------------------------------------
    def get(self, spec: RunSpec) -> LoadPoint | None:
        """Cached point for ``spec``, or None on any kind of miss.

        Corruption tolerance is deliberate: a truncated file (killed
        writer on a non-atomic filesystem), invalid JSON, a wrong
        format version, or an entry whose recorded spec does not match
        (hash collision, stale fingerprint scheme) all read as a miss,
        so the point simply re-runs.
        """
        path = self.path_for(spec.fingerprint())
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(text)
            if entry["format"] != STORE_FORMAT:
                raise ValueError(f"unknown store format {entry['format']!r}")
            if entry["spec"] != spec.to_jsonable():
                raise ValueError("stored spec does not match fingerprint")
            point = LoadPoint.from_jsonable(entry["point"])
        except (ValueError, KeyError, TypeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return point

    def put(self, spec: RunSpec, point: LoadPoint, wall_time: float | None = None) -> Path:
        """Persist one completed point atomically (tmp file + rename)."""
        fingerprint = spec.fingerprint()
        path = self.path_for(fingerprint)
        entry = {
            "format": STORE_FORMAT,
            "fingerprint": fingerprint,
            "spec": spec.to_jsonable(),
            "point": point.to_jsonable(),
            "wall_time": wall_time,
            "created": time.time(),
        }
        self._write_atomic(path, entry)
        self.stats.writes += 1
        return path

    # ------------------------------------------------------------------
    # Sidecars: auxiliary results keyed by the same fingerprint
    # ------------------------------------------------------------------
    def sidecar_path(self, kind: str, fingerprint: str) -> Path:
        """``<root>/<kind>/<fp[:2]>/<fp>.json`` — the main layout with
        the object class in place of ``objects``."""
        if not kind or kind == "objects" or "/" in kind:
            raise ValueError(f"invalid sidecar kind {kind!r}")
        return self.root / kind / fingerprint[:2] / f"{fingerprint}.json"

    def get_sidecar(self, kind: str, spec: RunSpec) -> dict | None:
        """Cached sidecar payload for ``spec``, or None on any miss.

        Same corruption tolerance as :meth:`get`: unreadable, foreign,
        or spec-mismatched sidecars read as misses and get overwritten
        by the next :meth:`put_sidecar`.
        """
        path = self.sidecar_path(kind, spec.fingerprint())
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            entry = json.loads(text)
            if entry["format"] != STORE_FORMAT:
                raise ValueError(f"unknown store format {entry['format']!r}")
            if entry["spec"] != spec.to_jsonable():
                raise ValueError("stored spec does not match fingerprint")
            payload = entry["payload"]
        except (ValueError, KeyError, TypeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put_sidecar(self, kind: str, spec: RunSpec, payload: dict) -> Path:
        """Persist one sidecar payload atomically under ``kind``."""
        fingerprint = spec.fingerprint()
        path = self.sidecar_path(kind, fingerprint)
        entry = {
            "format": STORE_FORMAT,
            "fingerprint": fingerprint,
            "spec": spec.to_jsonable(),
            "payload": payload,
            "created": time.time(),
        }
        self._write_atomic(path, entry)
        self.stats.writes += 1
        return path

    # ------------------------------------------------------------------
    @staticmethod
    def _write_atomic(path: Path, entry: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(entry, indent=1, sort_keys=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(blob)
            os.replace(tmp, path)  # atomic on POSIX: readers see old or new, never partial
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
