"""Closed-form zero-load latency model.

Under the simulator's semantics (store-and-forward at packet
granularity) an uncontended packet's latency is exactly::

    sum over router-to-router hops (link latency + packet size)
    + (ejection latency + packet size)

This module computes that number for minimal and Valiant paths, both
per pair and in expectation over a topology.  Two uses:

- **validation** — the model must match single-packet simulations
  *exactly* (tests do byte-for-byte comparisons), which pins down the
  engine's timing semantics against an independent derivation;
- **interpretation** — the low-load plateau of every latency curve in
  the figures is this number; deviations above it are pure queueing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine.config import SimulationConfig
from repro.topology.dragonfly import Dragonfly, PortKind


@dataclass(frozen=True)
class LatencyModel:
    """Zero-load latency calculator for one configuration."""

    config: SimulationConfig

    def _topo(self) -> Dragonfly:
        return Dragonfly(self.config.h)

    def hop_cost(self, kind: PortKind) -> int:
        """Cycles one uncontended hop adds (wire latency + tail)."""
        cfg = self.config
        if kind is PortKind.LOCAL:
            return cfg.local_latency + cfg.packet_size
        if kind is PortKind.GLOBAL:
            return cfg.global_latency + cfg.packet_size
        if kind is PortKind.NODE:
            return cfg.ejection_latency + cfg.packet_size
        raise ValueError(f"no hop cost for {kind}")

    def minimal(self, src: int, dst: int, topo: Dragonfly | None = None) -> int:
        """Exact zero-load latency of the minimal path ``src -> dst``."""
        if topo is None:
            topo = self._topo()
        total = 0
        for _, port in topo.min_route(src, dst):
            total += self.hop_cost(topo.port_kind(port))
        return total

    def valiant(self, src: int, dst: int, topo: Dragonfly | None = None) -> float:
        """Expected zero-load latency of VAL (uniform intermediate group
        != source, destination; intra-group traffic is minimal)."""
        if topo is None:
            topo = self._topo()
        src_g, dst_g = topo.node_group(src), topo.node_group(dst)
        if src_g == dst_g:
            return float(self.minimal(src, dst, topo))
        total = 0.0
        count = 0
        src_router = topo.node_router(src)
        for mid in range(topo.num_groups):
            if mid in (src_g, dst_g):
                continue
            cost = 0
            router = src_router
            while topo.router_group(router) != mid:
                port = topo.min_output_port_to_group(router, mid)
                cost += self.hop_cost(topo.port_kind(port))
                router, _ = topo.neighbor(router, port)
            cost += self.minimal_from_router(router, dst, topo)
            total += cost
            count += 1
        return total / count

    def minimal_from_router(self, router: int, dst: int, topo: Dragonfly) -> int:
        """Zero-load latency from a router (not a node) to ``dst``."""
        total = 0
        while True:
            port = topo.min_output_port(router, dst)
            total += self.hop_cost(topo.port_kind(port))
            if topo.port_kind(port) is PortKind.NODE:
                return total
            router, _ = topo.neighbor(router, port)

    def expected_uniform(self, routing: str = "min", samples: int = 2_000,
                         seed: int = 1) -> float:
        """Expected zero-load latency under uniform traffic."""
        topo = self._topo()
        rng = random.Random(seed)
        total = 0.0
        n = topo.num_nodes
        for _ in range(samples):
            src = rng.randrange(n)
            dst = rng.randrange(n - 1)
            dst = dst + 1 if dst >= src else dst
            if routing == "min":
                total += self.minimal(src, dst, topo)
            elif routing == "val":
                total += self.valiant(src, dst, topo)
            else:
                raise ValueError("routing must be 'min' or 'val'")
        return total / samples
