"""Static analysis of local-link concentration under Valiant + ADV+N.

This module derives, without simulation, the Fig. 2 mechanism: how many
source groups' misrouted flows share each intermediate-group local link
as a function of the group offset ``N``.

Model.  Under Valiant, a packet from group ``i`` to group ``i + N``
transits a uniformly chosen intermediate group ``m``.  It *arrives* in
``m`` over the global link with offset ``delta = (m - i) mod G``, which
by the palmtree arrangement lands on in-group router
``r_in = (2h^2 - delta) // h``; it *leaves* toward ``i + N`` over the
link with offset ``d2 = (N - delta) mod G``, owned by in-group router
``r_out = (d2 - 1) // h``.  When ``r_in != r_out`` the packet crosses
the single local link ``r_in -> r_out``.  The number of distinct
``delta`` values mapping onto one ordered router pair is the
*concentration* ``K`` of that link; since every flow has equal rate,
the most-loaded local link carries ``K`` flows and bounds network
throughput at roughly ``(G - 2) / (2 h^2 K)`` phits/(node·cycle).

For ``N = n*h`` the arithmetic aligns: all ``h`` offsets of one
arriving router map to a single departing router, so ``K = h`` and the
bound collapses to ``~1/h`` — the paper's Fig. 2a.  For most other
offsets ``K`` is 1 or 2 and the global-link Valiant limit (0.5)
dominates.

This closed form counts only the ``l2`` (intermediate-group) hops, so
it is an *upper* bound; the Monte-Carlo analyzer in
:mod:`repro.analysis.static_load` also accounts for the l1/l3 hops that
share the same local links and predicts simulator saturation more
tightly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.dragonfly import Dragonfly


def l2_link_concentration(topo: Dragonfly, offset: int) -> dict[tuple[int, int], int]:
    """Flows per intermediate-group local link for ADV+``offset``.

    Returns a map from ordered in-group router pairs ``(r_in, r_out)``
    (with ``r_in != r_out``) to the number of source-group offsets whose
    misrouted traffic crosses that local link.  By symmetry the map is
    identical for every intermediate group.
    """
    if not 1 <= offset < topo.num_groups:
        raise ValueError(f"offset must be in [1, {topo.num_groups - 1}]")
    h = topo.h
    G = topo.num_groups
    two_h2 = 2 * h * h
    counts: dict[tuple[int, int], int] = {}
    for delta in range(1, two_h2 + 1):
        # delta = (m - i) mod G; skip degenerate cases where the
        # intermediate group coincides with source or destination.
        if delta % G == 0 or (offset - delta) % G == 0:
            continue
        r_in = (two_h2 - delta) // h
        d2 = (offset - delta) % G
        r_out = (d2 - 1) // h
        if r_in == r_out:
            continue  # source and destination share the transit router
        key = (r_in, r_out)
        counts[key] = counts.get(key, 0) + 1
    return counts


def max_l2_concentration(topo: Dragonfly, offset: int) -> int:
    """Largest number of flows sharing one intermediate local link."""
    counts = l2_link_concentration(topo, offset)
    return max(counts.values(), default=0)


def valiant_offset_bound(topo: Dragonfly, offset: int) -> float:
    """Throughput bound of Valiant routing for ADV+``offset``.

    The minimum of the global-link limit (0.5) and the local-link
    concentration limit.  Each source group offers ``2h^2 * load`` phits
    per cycle split over ``G - 2`` intermediate groups; the busiest
    local link of an intermediate group carries ``K`` such flows from
    each of the ``G - 2`` usable source offsets... which telescopes to a
    per-link load of ``load * 2h^2 * K / (G - 2)`` and hence::

        load_max = (G - 2) / (2 h^2 * K)
    """
    k = max_l2_concentration(topo, offset)
    if k == 0:
        return 0.5
    local_limit = (topo.num_groups - 2) / (2 * topo.h * topo.h * k)
    return min(0.5, local_limit)


@dataclass
class OffsetBound:
    """One row of the Fig. 2b analytic companion table."""

    offset: int
    concentration: int
    bound: float
    is_worst_case: bool  # offset is a multiple of h


def offset_bound_table(topo: Dragonfly, offsets: list[int] | None = None) -> list[OffsetBound]:
    """Analytic throughput bound per ADV offset (Fig. 2b companion)."""
    if offsets is None:
        offsets = list(range(1, topo.num_groups))
    return [
        OffsetBound(
            offset=n,
            concentration=max_l2_concentration(topo, n),
            bound=valiant_offset_bound(topo, n),
            is_worst_case=(n % topo.h == 0),
        )
        for n in offsets
    ]
