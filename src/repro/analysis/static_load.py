"""Static (simulation-free) link-load analysis for arbitrary patterns.

Monte-Carlo estimate of per-link load: sample (source, destination)
pairs from a traffic pattern, walk the *routing template* (minimal, or
Valiant through a random intermediate group) link by link, and
accumulate how many phit-units each directed link would carry per
injected phit.  The most-loaded link then bounds the achievable
throughput:

    max load (phits/node/cycle)  ~  1 / (num_nodes * max_link_share)

where ``max_link_share`` is the busiest link's expected phits per
injected phit per node.  This generalizes the closed-form ADV+N
analysis of :mod:`repro.analysis.offsets` to any pattern (stencils,
permutations, mixes) and predicts simulator saturation without running
it — e.g. the Fig. 2b valleys or the stencil hotspots of the mapping
study.

Predictions ignore allocator/HOL inefficiency, so the simulator
typically reaches 60-85% of the predicted bound; *relative* predictions
(which pattern is worse, which link is hot) are exact in the limit of
samples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.topology.dragonfly import Dragonfly, PortKind
from repro.traffic.patterns import TrafficPattern


@dataclass
class StaticLoadReport:
    """Result of a static load analysis."""

    routing: str
    samples: int
    # Expected phits carried per injected phit, per directed link.
    link_share: dict[tuple[int, int], float]
    num_nodes: int

    @property
    def max_share(self) -> float:
        return max(self.link_share.values(), default=0.0)

    @property
    def predicted_saturation(self) -> float:
        """Predicted maximum phits/(node*cycle), capped at 1.0."""
        if self.max_share <= 0:
            return 1.0
        return min(1.0, 1.0 / (self.num_nodes * self.max_share))

    def hottest(self, n: int = 5) -> list[tuple[tuple[int, int], float]]:
        """The n most-loaded (router, port) -> share entries."""
        return sorted(self.link_share.items(), key=lambda kv: -kv[1])[:n]

    def imbalance(self, topo: Dragonfly, kind: PortKind) -> float:
        """max/mean share over *all* directed links of one class
        (unused links count as zero; 1.0 = perfectly even)."""
        shares = [
            v
            for (rid, port), v in self.link_share.items()
            if topo.port_kind(port) is kind
        ]
        if not shares:
            return 0.0
        if kind is PortKind.LOCAL:
            total_links = topo.num_routers * topo.local_ports
        elif kind is PortKind.GLOBAL:
            total_links = topo.num_routers * topo.global_ports
        else:
            raise ValueError("imbalance is defined for local/global links")
        mean = sum(shares) / total_links
        return max(shares) / mean if mean > 0 else 0.0


def _walk_minimal(topo: Dragonfly, router: int, dst: int, hops: list[tuple[int, int]]) -> int:
    """Append the minimal route's (router, port) links; return dst router."""
    guard = 0
    while True:
        port = topo.min_output_port(router, dst)
        if topo.port_kind(port) is PortKind.NODE:
            return router
        hops.append((router, port))
        router, _ = topo.neighbor(router, port)
        guard += 1
        if guard > 6:  # pragma: no cover - structural safety
            raise AssertionError("minimal walk exceeded the diameter")


def _walk_to_group(topo: Dragonfly, router: int, group: int, hops: list[tuple[int, int]]) -> int:
    """Append the minimal route toward ``group``; return the entry router."""
    while topo.router_group(router) != group:
        port = topo.min_output_port_to_group(router, group)
        hops.append((router, port))
        router, _ = topo.neighbor(router, port)
    return router


def analyze(
    topo: Dragonfly,
    pattern: TrafficPattern,
    routing: str = "min",
    samples: int = 20_000,
    seed: int = 1,
) -> StaticLoadReport:
    """Estimate per-link load shares for a pattern under a template.

    ``routing`` is ``"min"`` (the unique minimal path) or ``"val"``
    (uniform random intermediate group != source and destination, then
    minimal — the Valiant template of §III).
    """
    if routing not in ("min", "val"):
        raise ValueError("routing must be 'min' or 'val'")
    # Salt the sampling stream (same idiom as the run layer's pattern
    # RNG derivation): a plain Random(seed) runs in lockstep with a
    # pattern RNG built from the same integer, and a lockstepped UN
    # pattern echoes each drawn src straight back as dst.
    rng = random.Random((seed << 16) ^ 0x51AD)
    counts: dict[tuple[int, int], int] = {}
    n = topo.num_nodes
    for _ in range(samples):
        src = rng.randrange(n)
        dst = pattern.dest(src)
        hops: list[tuple[int, int]] = []
        router = topo.node_router(src)
        dst_group = topo.node_group(dst)
        src_group = topo.node_group(src)
        if routing == "val" and dst_group != src_group and topo.num_groups > 2:
            while True:
                mid = rng.randrange(topo.num_groups)
                if mid != src_group and mid != dst_group:
                    break
            router = _walk_to_group(topo, router, mid, hops)
        _walk_minimal(topo, router, dst, hops)
        for link in hops:
            counts[link] = counts.get(link, 0) + 1
    # Normalize: each sample represents one injected phit spread over
    # the whole network's injection (num_nodes nodes at 1 phit each).
    share = {link: c / (samples) for link, c in counts.items()}
    return StaticLoadReport(
        routing=routing, samples=samples, link_share=share, num_nodes=n
    )


def predicted_saturation(
    topo: Dragonfly,
    pattern: TrafficPattern,
    routing: str = "min",
    samples: int = 20_000,
    seed: int = 1,
) -> float:
    """Shorthand: just the predicted saturation load."""
    report = analyze(topo, pattern, routing, samples, seed)
    # One sample = one packet from a *random node*; per-node injection
    # of 1 phit/cycle puts num_nodes phits in flight, of which the
    # busiest link sees (share * num_nodes) -> capacity 1 bounds load.
    return report.predicted_saturation
