"""The dragonfly topology with the palmtree global-link arrangement.

Terminology and parameters follow Kim et al. (ISCA 2008) and the OFAR
paper (Garcia et al., ICPP 2012):

- ``h``  — global links per router,
- ``p``  — processing nodes per router (balanced network: ``p = h``),
- ``a``  — routers per group (balanced network: ``a = 2h``),
- ``G``  — number of groups; a maximum-size network has ``G = a*h + 1 =
  2h^2 + 1`` so that every pair of groups is joined by exactly one
  global link.

Routers inside a group are fully connected by local links; groups are
fully connected by global links.  The network diameter is 3 (local,
global, local).

Identifier conventions used across the whole code base:

- *router id* ``R`` in ``[0, num_routers)``; group ``g = R // a`` and
  in-group index ``r = R % a``.
- *node id* ``n`` in ``[0, num_nodes)``; attached router ``R = n // p``.
- *port index* within a router, laid out as::

      [0, p)                  node ports (injection in / ejection out)
      [p, p + a - 1)          local ports
      [p + a - 1, p + a - 1 + h)   global ports
      p + a - 1 + h           ring port (only when a physical escape
                              ring is attached)

Global-link arrangement ("palmtree"): global port ``k`` of router ``r``
in group ``g`` connects to group ``(g + r*h + k + 1) mod G``.  Each group
therefore reaches every offset ``d`` in ``[1, 2h^2]`` exactly once, and
consecutive offsets are wired to consecutive ports of consecutive
routers.  This consecutive wiring is what concentrates misrouted
``ADV+n*h`` traffic on single local links in the intermediate group
(paper, Fig. 2a).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator


class PortKind(Enum):
    """Classification of a router port."""

    NODE = "node"
    LOCAL = "local"
    GLOBAL = "global"
    RING = "ring"


@dataclass(frozen=True)
class GlobalEndpoint:
    """One end of a global link: group, in-group router index and port."""

    group: int
    router: int
    port: int  # global port index k in [0, h)


class Dragonfly:
    """A maximum-size balanced dragonfly parametrized by ``h``.

    Parameters
    ----------
    h:
        Number of global links per router.  Must be >= 1.  The balanced
        relations ``p = h``, ``a = 2h`` and ``G = 2h^2 + 1`` are applied.
    num_groups:
        Optional; if given it must equal the maximum ``2h^2 + 1`` (the
        only configuration the paper uses).  The parameter exists so
        configs can state the group count explicitly and have it
        validated.

    Notes
    -----
    All of the accessors are O(1) closed forms; nothing is tabulated,
    so even an ``h = 16`` (256K-node) instance is cheap to create.  The
    network *simulator* tabulates what it needs for speed.
    """

    def __init__(self, h: int, num_groups: int | None = None) -> None:
        if h < 1:
            raise ValueError(f"h must be >= 1, got {h}")
        self.h = h
        self.p = h
        self.a = 2 * h
        max_groups = 2 * h * h + 1
        if num_groups is None:
            num_groups = max_groups
        if num_groups != max_groups:
            raise ValueError(
                f"only maximum-size dragonflies are supported: "
                f"num_groups must be {max_groups} for h={h}, got {num_groups}"
            )
        self.num_groups = num_groups
        self.num_routers = self.num_groups * self.a
        self.num_nodes = self.num_routers * self.p
        # Port layout.
        self.node_ports = self.p
        self.local_ports = self.a - 1
        self.global_ports = self.h
        self.ports_per_router = self.node_ports + self.local_ports + self.global_ports
        # Link counts (each undirected link counted once).
        self.num_local_links = self.num_groups * (self.a * (self.a - 1) // 2)
        self.num_global_links = self.num_groups * (self.num_groups - 1) // 2

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    def router_group(self, router: int) -> int:
        """Group id of router ``router``."""
        return router // self.a

    def router_index(self, router: int) -> int:
        """In-group index of router ``router``."""
        return router % self.a

    def router_id(self, group: int, index: int) -> int:
        """Global router id for (group, in-group index)."""
        return group * self.a + index

    def node_router(self, node: int) -> int:
        """Router that node ``node`` is attached to."""
        return node // self.p

    def node_group(self, node: int) -> int:
        """Group that node ``node`` belongs to."""
        return node // (self.p * self.a)

    def node_port(self, node: int) -> int:
        """Port index on the attached router serving node ``node``."""
        return node % self.p

    def router_nodes(self, router: int) -> range:
        """Node ids attached to ``router``."""
        return range(router * self.p, (router + 1) * self.p)

    def group_nodes(self, group: int) -> range:
        """Node ids belonging to ``group``."""
        per_group = self.p * self.a
        return range(group * per_group, (group + 1) * per_group)

    def group_routers(self, group: int) -> range:
        """Router ids belonging to ``group``."""
        return range(group * self.a, (group + 1) * self.a)

    # ------------------------------------------------------------------
    # Port layout
    # ------------------------------------------------------------------
    def port_kind(self, port: int) -> PortKind:
        """Kind of a port index (ring ports are outside ``ports_per_router``)."""
        if port < 0:
            raise ValueError(f"negative port {port}")
        if port < self.node_ports:
            return PortKind.NODE
        if port < self.node_ports + self.local_ports:
            return PortKind.LOCAL
        if port < self.ports_per_router:
            return PortKind.GLOBAL
        if port == self.ports_per_router:
            return PortKind.RING
        raise ValueError(f"port {port} out of range")

    def local_port(self, from_index: int, to_index: int) -> int:
        """Port on router ``from_index`` (in-group) toward ``to_index``.

        The complete local graph is wired so that router ``r`` uses local
        slot ``j`` for peer ``j`` if ``j < r`` else peer ``j + 1``.
        """
        if from_index == to_index:
            raise ValueError("no local link from a router to itself")
        j = to_index if to_index < from_index else to_index - 1
        return self.node_ports + j

    def local_peer(self, from_index: int, port: int) -> int:
        """In-group index of the peer on local port ``port`` of ``from_index``."""
        j = port - self.node_ports
        if not 0 <= j < self.local_ports:
            raise ValueError(f"port {port} is not a local port")
        return j if j < from_index else j + 1

    def global_port(self, k: int) -> int:
        """Port index for global slot ``k`` in ``[0, h)``."""
        if not 0 <= k < self.h:
            raise ValueError(f"global slot {k} out of range [0, {self.h})")
        return self.node_ports + self.local_ports + k

    def global_slot(self, port: int) -> int:
        """Global slot ``k`` for a global port index."""
        k = port - self.node_ports - self.local_ports
        if not 0 <= k < self.h:
            raise ValueError(f"port {port} is not a global port")
        return k

    @property
    def ring_port(self) -> int:
        """Port index used for a physically attached escape ring."""
        return self.ports_per_router

    # ------------------------------------------------------------------
    # Palmtree global arrangement
    # ------------------------------------------------------------------
    def global_offset(self, router_index: int, k: int) -> int:
        """Group offset reached by global slot ``k`` of in-group router
        ``router_index``: ``d = r*h + k + 1``."""
        return router_index * self.h + k + 1

    def global_link_endpoint(self, group: int, router_index: int, k: int) -> GlobalEndpoint:
        """Far end of the global link on (group, router_index, slot k).

        Raises :class:`ValueError` when the port is unwired (only possible
        in a smaller-than-maximum network).
        """
        d = self.global_offset(router_index, k)
        dest_group = (group + d) % self.num_groups
        back = 2 * self.h * self.h - d  # r'*h + k' at the destination side
        return GlobalEndpoint(dest_group, back // self.h, back % self.h)

    def group_route(self, src_group: int, dst_group: int) -> tuple[int, int]:
        """(in-group router index, global slot) owning the link
        ``src_group -> dst_group``."""
        if src_group == dst_group:
            raise ValueError("groups are identical; no global link needed")
        d = (dst_group - src_group) % self.num_groups
        return (d - 1) // self.h, (d - 1) % self.h

    # ------------------------------------------------------------------
    # Minimal routing oracle
    # ------------------------------------------------------------------
    def min_output_port(self, router: int, dst_node: int) -> int:
        """First-hop output port of the minimal route from ``router`` to
        ``dst_node``.

        Minimal routes have at most 3 hops: local (to the router owning
        the right global link), global, local (to the destination
        router), then ejection.
        """
        dst_router = self.node_router(dst_node)
        if router == dst_router:
            return self.node_port(dst_node)
        g, r = self.router_group(router), self.router_index(router)
        dst_g = self.router_group(dst_router)
        if dst_g == g:
            return self.local_port(r, self.router_index(dst_router))
        owner_r, k = self.group_route(g, dst_g)
        if r == owner_r:
            return self.global_port(k)
        return self.local_port(r, owner_r)

    def min_output_port_to_group(self, router: int, dst_group: int) -> int:
        """Output port of the minimal route from ``router`` toward any
        router of ``dst_group`` (which must differ from the router's
        group)."""
        g, r = self.router_group(router), self.router_index(router)
        if dst_group == g:
            raise ValueError("router is already in the destination group")
        owner_r, k = self.group_route(g, dst_group)
        if r == owner_r:
            return self.global_port(k)
        return self.local_port(r, owner_r)

    def neighbor(self, router: int, port: int) -> tuple[int, int]:
        """(peer router id, peer input port index) across ``port``.

        Only valid for local and global ports; node ports do not lead to
        a router and ring ports are resolved by the escape-ring wiring.
        """
        kind = self.port_kind(port)
        g, r = self.router_group(router), self.router_index(router)
        if kind is PortKind.LOCAL:
            peer_idx = self.local_peer(r, port)
            return self.router_id(g, peer_idx), self.local_port(peer_idx, r)
        if kind is PortKind.GLOBAL:
            ep = self.global_link_endpoint(g, r, self.global_slot(port))
            return self.router_id(ep.group, ep.router), self.global_port(ep.port)
        raise ValueError(f"port {port} ({kind}) has no router neighbor")

    def min_route(self, src_node: int, dst_node: int) -> list[tuple[int, int]]:
        """Full minimal route as ``[(router, output port), ...]``.

        The final element ejects to the destination node.  Useful for
        tests and static analysis; the simulator routes hop by hop.
        """
        if src_node == dst_node:
            raise ValueError("source and destination nodes are identical")
        route: list[tuple[int, int]] = []
        router = self.node_router(src_node)
        for _ in range(5):  # diameter 3 + ejection, with margin
            port = self.min_output_port(router, dst_node)
            route.append((router, port))
            if self.port_kind(port) is PortKind.NODE:
                return route
            router, _in_port = self.neighbor(router, port)
        raise AssertionError("minimal route exceeded the topology diameter")

    def min_distance(self, src_node: int, dst_node: int) -> int:
        """Number of router-to-router hops on the minimal route."""
        return len(self.min_route(src_node, dst_node)) - 1

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------
    def routers(self) -> range:
        """All router ids."""
        return range(self.num_routers)

    def nodes(self) -> range:
        """All node ids."""
        return range(self.num_nodes)

    def global_links(self) -> Iterator[tuple[int, int, int, int]]:
        """Yield each global link once as (router_a, port_a, router_b, port_b)."""
        for g in range(self.num_groups):
            for r in range(self.a):
                for k in range(self.h):
                    d = self.global_offset(r, k)
                    # Count each link once from the lower-offset side
                    # (offsets d and 2h^2+1-d denote the same link; they
                    # are never equal because their sum is odd).
                    if d <= self.h * self.h:
                        ep = self.global_link_endpoint(g, r, k)
                        yield (
                            self.router_id(g, r),
                            self.global_port(k),
                            self.router_id(ep.group, ep.router),
                            self.global_port(ep.port),
                        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dragonfly(h={self.h}, groups={self.num_groups}, "
            f"routers={self.num_routers}, nodes={self.num_nodes})"
        )
