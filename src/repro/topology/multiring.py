"""Edge-disjoint Hamiltonian escape rings (§VII, "ongoing work").

The paper bounds the number of edge-disjoint embedded Hamiltonian rings
by ``h`` and proposes them for fault tolerance: the escape subnetwork
stays functional as long as one ring is intact.  This module constructs
up to ``h`` such rings over real dragonfly links.

Construction
------------
Ring ``j`` crosses groups with a fixed offset ``d_j`` chosen in
``[j*h + 1, (j+1)*h]`` with ``gcd(d_j, G) = 1`` (so the group sequence
``g, g+d_j, g+2*d_j, ...`` visits every group).  By the palmtree
arithmetic, *any* offset in that window enters each group at in-group
router ``2h - 1 - j`` and leaves from router ``j`` — the endpoints
depend only on ``j`` — so within every group, ring ``j`` needs a
Hamiltonian path from ``2h - 1 - j`` to ``j`` over local links, and the
``h`` rings need ``h`` pairwise edge-disjoint such paths.

That is exactly the classical decomposition of ``K_{2h}`` into ``h``
Hamiltonian paths (Walecki): the zigzag path
``B = [0, 1, 2h-1, 2, 2h-2, ...]`` and its translates ``B + j`` are
edge-disjoint, with endpoints ``j`` and ``j + h``.  Relabelling
vertices by ``sigma(v) = v`` for ``v < h`` and ``sigma(v) = 3h - 1 - v``
otherwise maps the endpoint pair ``{j, j+h}`` to ``{j, 2h-1-j}`` while
preserving edge-disjointness.  Global links are trivially disjoint
across rings (each ring uses a distinct offset window).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd

from repro.topology.dragonfly import Dragonfly, PortKind


def zigzag_paths(h: int) -> list[list[int]]:
    """``h`` pairwise edge-disjoint Hamiltonian paths of ``K_{2h}``.

    Path ``j`` runs from vertex ``2h - 1 - j`` to vertex ``j`` (the
    entry/exit routers ring ``j`` needs inside every group).
    """
    if h < 1:
        raise ValueError("h must be >= 1")
    n = 2 * h
    base = [0]
    for step in range(1, h + 1):
        base.append((base[-1] + (2 * step - 1)) % n if step else 0)
        if len(base) < n:
            base.append((base[-1] - 2 * step) % n)
    # The loop above builds [0, 1, 2h-1, 2, 2h-2, ...]; verify shape.
    assert len(base) == n and len(set(base)) == n

    def sigma(v: int) -> int:
        return v if v < h else 3 * h - 1 - v

    paths = []
    for j in range(h):
        translated = [(v + j) % n for v in base]
        relabeled = [sigma(v) for v in translated]
        # Orient from the entry router (2h-1-j) to the exit router (j).
        if relabeled[0] != 2 * h - 1 - j:
            relabeled.reverse()
        assert relabeled[0] == 2 * h - 1 - j and relabeled[-1] == j
        paths.append(relabeled)
    return paths


@dataclass
class RingSpec:
    """One Hamiltonian ring: cycle order and per-router successor."""

    ring_id: int
    offset: int  # group offset of its global hops
    order: list[int]
    succ: dict[int, int] = field(default_factory=dict)
    succ_port: dict[int, int] = field(default_factory=dict)

    def successor(self, router: int) -> int:
        return self.succ[router]

    def successor_port(self, router: int) -> int:
        return self.succ_port[router]


class MultiRing:
    """Up to ``h`` edge-disjoint Hamiltonian rings over a dragonfly."""

    def __init__(self, topo: Dragonfly, num_rings: int) -> None:
        if not 1 <= num_rings <= topo.h:
            raise ValueError(
                f"num_rings must be in [1, h={topo.h}], got {num_rings}"
            )
        self.topo = topo
        self.rings: list[RingSpec] = []
        paths = zigzag_paths(topo.h)
        for j in range(num_rings):
            self.rings.append(self._build_ring(j, paths[j]))
        self._check_edge_disjoint()

    # ------------------------------------------------------------------
    def _pick_offset(self, j: int) -> int:
        """Group offset for ring ``j``: q = j window, coprime with G."""
        topo = self.topo
        for s in range(topo.h):
            d = j * topo.h + s + 1
            if gcd(d, topo.num_groups) == 1:
                return d
        raise ValueError(
            f"no usable group offset for ring {j} "
            f"(h={topo.h}, G={topo.num_groups})"
        )

    def _build_ring(self, j: int, path: list[int]) -> RingSpec:
        topo = self.topo
        d = self._pick_offset(j)
        order: list[int] = []
        g = 0
        for _ in range(topo.num_groups):
            order.extend(topo.router_id(g, r) for r in path)
            g = (g + d) % topo.num_groups
        assert g == 0, "offset does not return to group 0"
        spec = RingSpec(ring_id=j, offset=d, order=order)
        n = len(order)
        for i, rid in enumerate(order):
            nxt = order[(i + 1) % n]
            spec.succ[rid] = nxt
            rg, rr = topo.router_group(rid), topo.router_index(rid)
            ng, nr = topo.router_group(nxt), topo.router_index(nxt)
            if rg == ng:
                port = topo.local_port(rr, nr)
            else:
                # Exit router j, global slot (d-1) % h.
                assert rr == j and (ng - rg) % topo.num_groups == d
                port = topo.global_port((d - 1) % topo.h)
                ep = topo.global_link_endpoint(rg, rr, (d - 1) % topo.h)
                assert (ep.group, ep.router) == (ng, nr)
            spec.succ_port[rid] = port
        return spec

    def _check_edge_disjoint(self) -> None:
        """No undirected link may carry more than one ring."""
        seen: set[frozenset] = set()
        for spec in self.rings:
            for rid, port in spec.succ_port.items():
                peer, peer_port = self.topo.neighbor(rid, port)
                key = frozenset(((rid, port), (peer, peer_port)))
                if key in seen:
                    raise AssertionError(
                        f"rings share link {rid}:{port} <-> {peer}:{peer_port}"
                    )
                seen.add(key)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rings)

    def validate(self) -> None:
        """Every ring visits every router exactly once over real links."""
        topo = self.topo
        for spec in self.rings:
            assert sorted(spec.order) == list(topo.routers()), (
                f"ring {spec.ring_id} does not cover all routers"
            )
            for rid in spec.order:
                port = spec.succ_port[rid]
                assert topo.port_kind(port) in (PortKind.LOCAL, PortKind.GLOBAL)
                peer, _ = topo.neighbor(rid, port)
                assert peer == spec.succ[rid]
        self._check_edge_disjoint()
