"""Topology substrate: the dragonfly graph and its Hamiltonian escape ring.

The dragonfly topology (Kim et al., ISCA 2008) is a two-level hierarchical
direct network: routers within a group form a complete graph over *local*
links, and groups form a complete graph over *global* links.  This package
provides:

- :class:`~repro.topology.dragonfly.Dragonfly` — the parametrized topology,
  the palmtree global-link arrangement and the minimal-path oracle;
- :class:`~repro.topology.hamiltonian.HamiltonianRing` — a Hamiltonian
  cycle over all routers built only from existing links, used as the OFAR
  escape subnetwork (physical or embedded).
"""

from repro.topology.dragonfly import Dragonfly, PortKind
from repro.topology.hamiltonian import HamiltonianRing

__all__ = ["Dragonfly", "PortKind", "HamiltonianRing"]
