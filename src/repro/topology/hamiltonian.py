"""A Hamiltonian cycle over all dragonfly routers.

The OFAR escape subnetwork is a Hamiltonian ring with bubble flow
control.  The paper considers two implementations:

- a **physical** ring: one extra input and one extra output port per
  router, plus one dedicated wire per router (N wires total);
- an **embedded** ring: the same cycle realized over *existing* links of
  the dragonfly, using one extra virtual channel on exactly the links
  the cycle traverses.

For the embedded variant the cycle must use only real dragonfly links.
The construction here exploits the palmtree arrangement: the global link
from group ``g`` to group ``g + 1`` (offset 1) is owned by in-group
router 0, slot 0, and lands on in-group router ``2h - 1`` of group
``g + 1``.  The cycle therefore descends through each group's routers
``2h-1, 2h-2, ..., 1, 0`` over local links (the local graph is complete,
so consecutive routers are adjacent) and hops to the next group over the
offset-1 global link.  Concatenating over all groups yields a single
Hamiltonian cycle through every router of the network.
"""

from __future__ import annotations

from repro.topology.dragonfly import Dragonfly, PortKind


class HamiltonianRing:
    """Hamiltonian cycle over the routers of a :class:`Dragonfly`.

    Attributes
    ----------
    order:
        Router ids in cycle order; ``order[0]`` is the router of group 0
        with in-group index ``a - 1`` and the successor of ``order[-1]``
        is ``order[0]``.
    """

    def __init__(self, topo: Dragonfly) -> None:
        self.topo = topo
        order: list[int] = []
        for g in range(topo.num_groups):
            for r in range(topo.a - 1, -1, -1):
                order.append(topo.router_id(g, r))
        self.order = order
        self._position = {router: i for i, router in enumerate(order)}
        # Precompute successor router and, for the embedded variant, the
        # dragonfly output port that realizes each ring hop.
        n = len(order)
        self._succ = [0] * topo.num_routers
        self._succ_port = [0] * topo.num_routers
        for i, router in enumerate(order):
            nxt = order[(i + 1) % n]
            self._succ[router] = nxt
            g, r = topo.router_group(router), topo.router_index(router)
            ng, nr = topo.router_group(nxt), topo.router_index(nxt)
            if g == ng:
                port = topo.local_port(r, nr)
            else:
                # Offset-1 global hop: owned by in-group router 0, slot 0.
                if r != 0 or (ng - g) % topo.num_groups != 1:
                    raise AssertionError("ring construction broke the palmtree invariant")
                port = topo.global_port(0)
            self._succ_port[router] = port

    def __len__(self) -> int:
        return len(self.order)

    def position(self, router: int) -> int:
        """Index of ``router`` along the cycle."""
        return self._position[router]

    def successor(self, router: int) -> int:
        """Next router along the (unidirectional) ring."""
        return self._succ[router]

    def successor_port(self, router: int) -> int:
        """Dragonfly output port that the embedded ring uses at ``router``."""
        return self._succ_port[router]

    def successor_port_kind(self, router: int) -> PortKind:
        """Kind (LOCAL or GLOBAL) of the embedded ring hop at ``router``."""
        return self.topo.port_kind(self._succ_port[router])

    def distance(self, src_router: int, dst_router: int) -> int:
        """Ring hops from ``src_router`` to ``dst_router`` going forward."""
        n = len(self.order)
        return (self._position[dst_router] - self._position[src_router]) % n

    def validate(self) -> None:
        """Check that the cycle visits every router once over real links.

        Raises :class:`AssertionError` on any violation.  Used by tests;
        cheap enough to call on construction in debugging sessions.
        """
        topo = self.topo
        seen = set(self.order)
        assert len(self.order) == topo.num_routers, "cycle misses routers"
        assert len(seen) == topo.num_routers, "cycle repeats a router"
        for router in self.order:
            port = self._succ_port[router]
            peer, _ = topo.neighbor(router, port)
            assert peer == self._succ[router], (
                f"ring hop at router {router} via port {port} lands on "
                f"{peer}, expected {self._succ[router]}"
            )
