"""Benchmarks: ablations of OFAR's design choices (run at small scale).

These go beyond the paper's figures: they audit the knobs §IV/§V fixed
empirically (threshold policy, allocator iterations, ring-exit bound)
and position the extension baselines (UGAL-L, PAR) on the worst-case
pattern.
"""

from conftest import run_once

from repro.experiments import ablations


def test_ablation_thresholds(benchmark, small):
    table = run_once(benchmark, ablations.run_thresholds, small)
    print()
    print(table.to_text())
    benchmark.extra_info["rows"] = table.rows
    rows = {
        (r["policy"], r["pattern"], r["load"]): r for r in table.rows
    }
    h = small.h
    # Under UN at moderate load, every policy keeps throughput ~= load
    # (misrouting must not hurt benign traffic).
    for name, _ in ablations.threshold_policies():
        r = rows[(name, "UN", 0.25)]
        assert r["throughput"] > 0.22, r
    # Under ADV+h at high load, the variable policies beat "never
    # misroute would collapse" — all must clear half the Valiant limit.
    for name in ("var-0.75", "var-0.9"):
        r = rows[(name, f"ADV+{h}", 0.45)]
        assert r["throughput"] > 0.25, r


def test_ablation_allocator_iterations(benchmark, small):
    table = run_once(benchmark, ablations.run_allocator_iterations, small)
    print()
    print(table.to_text())
    benchmark.extra_info["rows"] = table.rows
    by = {(r["iterations"], r["pattern"]): r["throughput"] for r in table.rows}
    # More iterations never hurt materially; 3 (the paper's choice)
    # must match or beat 1 on both patterns.
    for pattern in ("UN", f"ADV+{small.h}"):
        assert by[(3, pattern)] >= 0.95 * by[(1, pattern)]


def test_ablation_ring_exits(benchmark, small):
    table = run_once(benchmark, ablations.run_ring_exits, small)
    print()
    print(table.to_text())
    benchmark.extra_info["rows"] = table.rows
    # The mechanism stays functional across the whole range (the bound
    # exists for livelock, not performance).
    for row in table.rows:
        assert row["throughput"] > 0.2, row


def test_ablation_mechanism_family(benchmark, small):
    table = run_once(benchmark, ablations.run_mechanism_family, small)
    print()
    print(table.to_text())
    benchmark.extra_info["rows"] = table.rows
    thr = {r["routing"]: r["thr@0.4"] for r in table.rows}
    lat = {r["routing"]: r["lat@0.4"] for r in table.rows}
    # The paper's ladder on the worst pattern: MIN at the bottom; the
    # source-adaptive mechanisms (UGAL/PAR/PB) in between; the OFAR
    # family on top (full OFAR and OFAR-L are statistically tied at
    # h=2, where ADV+2 is also ADV+h — the h=3 Fig. 5 bench separates
    # them properly).
    assert thr["min"] < thr["val"]
    best_other = max(v for k, v in thr.items() if k not in ("ofar", "ofar-l"))
    assert thr["ofar"] > 1.1 * best_other
    assert thr["ofar"] >= 0.93 * thr["ofar-l"]
    # PAR's source-group-only adaptivity cannot beat full OFAR.
    assert thr["par"] < thr["ofar"]
    # And OFAR keeps the lowest latency of the family at this load.
    assert lat["ofar"] <= min(lat.values()) * 1.05
