"""Benchmark: the §VII congestion-management extension.

Closing the paper's future-work loop: without congestion control the
embedded-ring configurations collapse past saturation under ADV+h
(Fig. 9's phenomenon); with simple injection restriction they hold
near-saturation throughput and barely touch the escape ring.
"""

from conftest import run_once

from repro.experiments import congestion


def test_congestion_control_prevents_collapse(benchmark, medium):
    table = run_once(benchmark, congestion.run, medium, loads=[0.5])
    print()
    print(table.to_text())
    benchmark.extra_info["rows"] = table.rows
    for row in table.rows:
        # Without the mechanism: collapse (this IS the Fig. 9 story).
        assert row["none_thr"] < 0.2, row
        # With it: an order of magnitude recovered, back near the
        # saturation region...
        assert row["cc_thr"] > 10 * row["none_thr"], row
        assert row["cc_thr"] > 0.2, row
        # ...and the escape ring returns to last-resort duty.
        assert row["cc_ring"] < row["none_ring"], row
