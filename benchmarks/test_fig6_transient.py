"""Benchmark: regenerate Fig. 6 — latency evolution under transients.

Paper claims (§VI-B): on ADV+2 -> UN every mechanism converges almost
immediately; on UN -> ADV+2 and ADV+2 -> ADV+h OFAR adapts nearly
instantaneously while PB suffers an adaptation period (its remote flags
take time to propagate and its misrouting is decided only at
injection).
"""

from conftest import run_once

from repro.experiments import fig6_transient


def test_fig6_transients(benchmark, medium):
    table = run_once(benchmark, fig6_transient.run, medium)
    print()
    print(table.to_text())
    benchmark.extra_info["rows"] = table.rows
    rows = {(r["transition"], r["routing"]): r for r in table.rows}
    h = medium.h

    # ADV+2 -> UN: everyone settles fast (links suddenly uncongested).
    for routing in ("pb", "ofar", "ofar-l"):
        r = rows[("ADV+2->UN", routing)]
        assert r["settle_cycles"] is not None

    # The hard transition (ADV+2 -> ADV+h): OFAR's spike is no worse
    # than PB's and it settles at a latency level no higher than PB's.
    hard = f"ADV+2->ADV+{h}"
    pb, ofar = rows[(hard, "pb")], rows[(hard, "ofar")]
    assert ofar["settled_latency"] <= pb["settled_latency"] * 1.1
    assert ofar["spike_latency"] <= pb["spike_latency"] * 1.2
