"""Benchmark: regenerate Fig. 9 — congestion with reduced VCs.

Paper claim (§VII): with 2 local / 1 global VCs and an embedded ring
(no congestion management), the canonical network can congest under
high adversarial load: throughput degrades vs the fully-provisioned
configuration and the escape ring usage rises sharply.
"""

from conftest import run_once

from repro.experiments import fig9_reduced_vcs


def test_fig9_reduced_vcs(benchmark, medium):
    loads = [0.15, 0.3, 0.5]
    table = run_once(benchmark, fig9_reduced_vcs.run, medium, loads=loads)
    print()
    print(table.to_text())
    benchmark.extra_info["rows"] = table.rows
    # At low load the reduced configuration keeps up.
    for row in table.rows:
        if row["load"] <= 0.15:
            assert row["reduced_thr"] > 0.8 * row["full_thr"], row
    # Under high adversarial load, congestion shows: reduced throughput
    # drops measurably below the full configuration for ADV patterns.
    degraded = [
        r for r in table.rows
        if r["load"] >= 0.5 and r["pattern"].startswith("ADV")
    ]
    assert degraded
    assert any(r["reduced_thr"] < 0.8 * r["full_thr"] for r in degraded), degraded
    # ...and the escape ring works visibly harder.
    assert any(
        r["reduced_ring"] > 2 * r["full_ring"] + 0.01 for r in degraded
    ), degraded
