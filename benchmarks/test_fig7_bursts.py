"""Benchmark: regenerate Fig. 7 — burst consumption time vs PB.

Paper claims (§VI-C): OFAR consumes every burst faster than PB
(normalized time 0.43-0.82, mean ~0.70), and full OFAR always finishes
no later than OFAR-L.  The uniform burst is where the gap is smallest.
"""

from conftest import run_once

from repro.experiments import fig7_bursts


def test_fig7_bursts(benchmark, medium):
    table = run_once(benchmark, fig7_bursts.run, medium)
    print()
    print(table.to_text())
    mean = fig7_bursts.ofar_speedup(table)
    print(f"mean OFAR normalized time: {mean:.3f} (paper: 0.695)")
    benchmark.extra_info["rows"] = table.rows
    benchmark.extra_info["ofar_mean_norm"] = mean

    adversarial = [r for r in table.rows if r["pattern"].startswith("ADV")]
    # OFAR finishes adversarial bursts faster than PB.
    for row in adversarial:
        assert row["ofar_norm"] < 1.0, f"{row['pattern']}: OFAR {row['ofar_norm']}x PB"
    # Full OFAR is never meaningfully slower than OFAR-L.
    for row in table.rows:
        assert row["ofar_norm"] <= row["ofar-l_norm"] * 1.05, (
            f"{row['pattern']}: OFAR {row['ofar_norm']} vs OFAR-L {row['ofar-l_norm']}"
        )
    # Mean speedup in the paper's ballpark (<= ~0.9 given smaller bursts).
    assert mean < 0.95
