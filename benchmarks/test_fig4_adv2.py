"""Benchmark: regenerate Fig. 4 — latency/throughput under ADV+2.

Paper claims (§VI-A): OFAR saturates above PB (0.45 vs 0.38 at h=6);
VAL is the latency reference but saturates below the adaptive schemes;
OFAR vs OFAR-L differ only slightly at this mild offset.
"""

from conftest import run_once

from repro.experiments import fig4_adv2


def test_fig4_adv2(benchmark, medium):
    loads = [0.1, 0.2, 0.3, 0.4, 0.5]
    table, series = run_once(benchmark, fig4_adv2.run, medium, loads=loads)
    print()
    print(table.to_text())
    print(fig4_adv2.summary(series).to_text())
    benchmark.extra_info["rows"] = table.rows
    by_name = {s.name: s for s in series}
    sat = {name: s.saturation_throughput() for name, s in by_name.items()}
    # OFAR beats PB and VAL at saturation.
    assert sat["ofar"] > sat["pb"], f"OFAR {sat['ofar']} vs PB {sat['pb']}"
    assert sat["ofar"] > sat["val"], f"OFAR {sat['ofar']} vs VAL {sat['val']}"
    # OFAR-L is close to OFAR at ADV+2 (local links not yet the
    # bottleneck at this offset for h=3: K=2 < h).
    assert sat["ofar-l"] > sat["pb"] * 0.9
    # OFAR latency below saturation beats VAL's (fewer wasted hops).
    assert by_name["ofar"].latency_at(0.2) < by_name["val"].latency_at(0.2)
