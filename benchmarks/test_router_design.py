"""Benchmark: the §VIII router-design conjecture, quantified.

"Input buffers with 2 or 3 read ports could provide a more scalable and
efficient design" — possible only because OFAR's deadlock freedom does
not come from VCs.  At equal total buffering:

- single-VC + 1 read port (control) loses throughput/latency to HOL
  blocking under adversarial load;
- single-VC + 2-3 read ports matches the classic 3-VC design's
  throughput at equal or better latency.
"""

from conftest import run_once

from repro.experiments import router_design


def test_router_designs(benchmark, small):
    table = run_once(benchmark, router_design.run, small)
    print()
    print(table.to_text())
    benchmark.extra_info["rows"] = table.rows
    rows = {
        (r["design"], r["pattern"], r["load"]): r for r in table.rows
    }
    adv = f"ADV+{small.h}"
    hi = 0.45
    classic = rows[("classic-3vc", adv, hi)]
    lean1 = rows[("lean-1R", adv, hi)]
    lean2 = rows[("lean-2R", adv, hi)]
    lean3 = rows[("lean-3R", adv, hi)]
    # The control shows HOL blocking: worse latency than classic.
    assert lean1["latency"] > 1.3 * classic["latency"]
    # 2-3 read ports recover the classic design's throughput...
    assert lean2["throughput"] > 0.97 * classic["throughput"]
    assert lean3["throughput"] > 0.97 * classic["throughput"]
    # ...at equal or better latency (the §VIII "more efficient").
    assert lean2["latency"] <= 1.05 * classic["latency"]
    assert lean3["latency"] <= lean2["latency"] * 1.1
