"""Micro-benchmarks of the simulation engine itself.

These are conventional pytest-benchmark timings (multiple rounds) of
the hot paths, useful to track simulator performance over time; they
make no claims about the paper.
"""

import random

from repro.engine.config import SimulationConfig
from repro.engine.runner import _pattern_rng
from repro.engine.simulator import Simulator
from repro.topology.dragonfly import Dragonfly
from repro.topology.hamiltonian import HamiltonianRing
from repro.traffic.generators import BernoulliTraffic
from repro.traffic.patterns import make_pattern


def _loaded_sim(routing: str, load: float, pattern: str = "UN") -> Simulator:
    cfg = SimulationConfig.small(h=2, routing=routing)
    sim = Simulator(cfg)
    topo = sim.network.topo
    p = make_pattern(topo, _pattern_rng(cfg, 2), pattern)
    sim.generator = BernoulliTraffic(p, load, 8, topo.num_nodes, 5)
    sim.run(200)  # reach steady occupancy before timing
    return sim


def test_perf_cycles_min_uniform(benchmark):
    sim = _loaded_sim("min", 0.3)
    benchmark(sim.run, 100)


def test_perf_cycles_ofar_adversarial(benchmark):
    sim = _loaded_sim("ofar", 0.4, "ADV+2")
    benchmark(sim.run, 100)


def test_perf_topology_construction(benchmark):
    benchmark(Dragonfly, 16)


def test_perf_network_construction(benchmark):
    cfg = SimulationConfig.small(h=3, routing="ofar")
    from repro.network.network import Network

    benchmark(Network, cfg)


def test_perf_hamiltonian_h8(benchmark):
    topo = Dragonfly(8)
    benchmark(HamiltonianRing, topo)


def test_perf_min_route_oracle(benchmark):
    topo = Dragonfly(6)
    rng = random.Random(1)
    pairs = [
        (rng.randrange(topo.num_nodes), rng.randrange(topo.num_nodes))
        for _ in range(1000)
    ]
    pairs = [(s, d) for s, d in pairs if s != d]

    def probe():
        for s, d in pairs:
            topo.min_output_port(topo.node_router(s), d)

    benchmark(probe)
