"""Benchmark: §IV-A misroute-type policy (starvation study).

The paper's local-first policy for in-transit packets is justified as
starvation avoidance.  Measured at this scale, the dominant effect is
latency: global-first floods the h-1 cold global ports of the hot
router and every packet queues behind the flood (+30-40% latency);
per-node fairness stays high for both because the escape ring backstops
true starvation, with the worst node's share degrading for
global-first as load rises.
"""

from conftest import run_once

from repro.experiments import starvation


def test_transit_misroute_policy(benchmark, medium):
    table = run_once(benchmark, starvation.run, medium, loads=[0.45])
    print()
    print(table.to_text())
    benchmark.extra_info["rows"] = table.rows
    rows = {r["policy"]: r for r in table.rows}
    local = rows["local-first"]
    glob = rows["global-first"]
    # The paper's policy: no throughput cost...
    assert local["throughput"] >= 0.97 * glob["throughput"]
    # ...clearly better latency...
    assert local["latency"] < 0.92 * glob["latency"]
    # ...and no node starves outright under either (the escape ring
    # backstop), with the paper's policy at least as protective.
    assert local["worst_share"] > 0.3
    assert local["worst_share"] >= glob["worst_share"] - 0.05
