"""Benchmark: the §III mapping-vs-network argument, quantified.

The paper (discussing Bhatele et al., SC 2011) argues that randomizing
the task mapping removes dragonfly hotspots but "breaks the benefits of
locality", and that "a proper solution should be applied at the network
level".  With a 2-D stencil halo exchange:

- MIN + sequential mapping is throttled by hot local links;
- MIN + random mapping trades the hotspot for lost locality (more
  global hops, higher latency at low load);
- OFAR + sequential mapping must beat both: hotspots routed around,
  locality preserved.
"""

from conftest import run_once

from repro.experiments import mapping_study


def test_mapping_vs_network_level(benchmark, medium):
    table = run_once(benchmark, mapping_study.run, medium, load=0.5)
    print()
    print(table.to_text())
    benchmark.extra_info["rows"] = table.rows
    rows = {(r["routing"], r["mapping"]): r for r in table.rows}
    min_seq = rows[("min", "sequential")]
    min_rnd = rows[("min", "random")]
    ofar_seq = rows[("ofar", "sequential")]
    ofar_rnd = rows[("ofar", "random")]
    # Sequential mapping keeps exchanges local (the locality signature).
    assert min_seq["global_hops"] < 0.7 * min_rnd["global_hops"]
    # OFAR at the network level beats MIN with either mapping.
    assert ofar_seq["throughput"] >= min_seq["throughput"]
    assert ofar_seq["throughput"] >= 0.95 * min_rnd["throughput"]
    # ...while keeping the locality that random mapping destroys.
    assert ofar_seq["global_hops"] < 0.8 * ofar_rnd["global_hops"]
    assert ofar_seq["latency"] < min_seq["latency"]
