"""Benchmark: regenerate Fig. 3 — latency/throughput under UN traffic.

Paper claims (§VI-A): OFAR's low-load latency is competitive with MIN
and it saturates later than PB; PB pays extra latency for unnecessary
misrouting; OFAR vs OFAR-L differ negligibly under UN.
"""

from conftest import run_once

from repro.experiments import fig3_uniform


def test_fig3_uniform(benchmark, medium):
    loads = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]
    table, series = run_once(benchmark, fig3_uniform.run, medium, loads=loads)
    print()
    print(table.to_text())
    print(fig3_uniform.summary(series).to_text())
    benchmark.extra_info["rows"] = table.rows
    by_name = {s.name: s for s in series}
    # OFAR latency at low load is competitive with MIN (within 40%).
    assert by_name["ofar"].latency_at(0.1) < 1.4 * by_name["min"].latency_at(0.1)
    # OFAR saturation throughput at least matches MIN and PB.
    assert (
        by_name["ofar"].saturation_throughput()
        >= 0.95 * by_name["min"].saturation_throughput()
    )
    assert (
        by_name["ofar"].saturation_throughput()
        >= 0.95 * by_name["pb"].saturation_throughput()
    )
    # Local misrouting makes no significant difference under UN.
    delta = abs(
        by_name["ofar"].saturation_throughput()
        - by_name["ofar-l"].saturation_throughput()
    )
    assert delta < 0.08
