"""Shared fixtures for the figure-regeneration benchmarks.

Every benchmark regenerates one figure of the paper at the ``medium``
scale (h=3, 342 nodes) unless noted, prints the rows it produced (run
pytest with ``-s`` to see them; they are also attached to the benchmark
``extra_info``), and asserts the paper's qualitative claims — who wins,
by roughly what factor, where the crossovers fall.  Absolute numbers
differ from the paper (different substrate scale; see EXPERIMENTS.md).
"""

import pytest

from repro.experiments.common import MEDIUM, SMALL, TINY


@pytest.fixture(scope="session")
def medium():
    return MEDIUM


@pytest.fixture(scope="session")
def small():
    return SMALL


@pytest.fixture(scope="session")
def tiny():
    return TINY


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive figure driver exactly once under timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
