"""Benchmark: regenerate Fig. 5 — the worst case, ADV+h.

The paper's centrepiece claim: VAL, PB and OFAR-L collapse toward the
1/h local-link bound, while full OFAR (local misrouting) clearly
exceeds it, heading toward the 0.5 global limit (paper at h=6:
OFAR 0.36 vs 0.166 for the rest).
"""

from conftest import run_once

from repro.analysis.bounds import local_link_advh_bound
from repro.experiments import fig5_advh


def test_fig5_advh(benchmark, medium):
    loads = [0.1, 0.2, 0.3, 0.4, 0.5]
    table, series = run_once(benchmark, fig5_advh.run, medium, loads=loads)
    print()
    print(table.to_text())
    print(fig5_advh.summary(medium, series).to_text())
    benchmark.extra_info["rows"] = table.rows
    by_name = {s.name: s for s in series}
    sat = {name: s.saturation_throughput() for name, s in by_name.items()}
    bound = local_link_advh_bound(medium.h)  # 1/3 at h=3
    # OFAR clearly exceeds the local-link bound...
    assert sat["ofar"] > bound * 1.1, f"OFAR {sat['ofar']} vs bound {bound}"
    # ...and clearly beats every mechanism without local misrouting.
    for other in ("val", "pb", "ofar-l"):
        assert sat["ofar"] > 1.1 * sat[other], (
            f"OFAR {sat['ofar']} should beat {other} {sat[other]} by >10%"
        )
    # The non-local-misroute mechanisms sit near or below the bound.
    for other in ("val", "ofar-l"):
        assert sat[other] < bound * 1.25, (
            f"{other} {sat[other]} should be capped by the 1/h bound {bound}"
        )
