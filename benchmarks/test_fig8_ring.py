"""Benchmark: regenerate Fig. 8 — physical vs embedded escape ring.

Paper claim (§VII): the two implementations are indistinguishable,
because the escape network resolves deadlocks instead of carrying
traffic (ring usage stays marginal below saturation).
"""

from conftest import run_once

from repro.experiments import fig8_ring


def test_fig8_ring_equivalence(benchmark, medium):
    loads = [0.1, 0.25, 0.4, 0.5]
    table = run_once(benchmark, fig8_ring.run, medium, loads=loads)
    print()
    print(table.to_text())
    benchmark.extra_info["rows"] = table.rows
    for row in table.rows:
        if row["load"] <= 0.4:
            # At and below saturation the implementations are
            # equivalent (the paper's Fig. 8 claim).  Past saturation
            # at this scale the physical ring's dedicated bandwidth
            # shows — the §VII congestion caveat; see EXPERIMENTS.md.
            assert abs(row["physical_thr"] - row["embedded_thr"]) < 0.02, row
            lo, hi = sorted((row["physical_lat"], row["embedded_lat"]))
            assert hi < 1.25 * lo, row
        else:
            assert row["physical_thr"] > 0.3 and row["embedded_thr"] > 0.3, row
    # The ring is rarely used below saturation.
    below = [r for r in table.rows if r["load"] <= 0.25]
    for row in below:
        assert row["physical_ring"] < 0.05
        assert row["embedded_ring"] < 0.05
