"""Benchmark: regenerate Fig. 2b — VAL throughput vs ADV offset.

Paper claim: deep throughput valleys at offsets N = n*h (local-link
concentration), high plateaus elsewhere; the valley floor tracks the
1/h law.  The analytic companion column must agree with simulation on
*where* the valleys are.
"""

from conftest import run_once

from repro.experiments import fig2_offsets


def test_fig2b_offset_valleys(benchmark, medium):
    h = medium.h
    offsets = list(range(1, 2 * h + 1))  # two h-multiples + the points between
    table = run_once(
        benchmark, fig2_offsets.run, medium, load=0.5, offsets=offsets
    )
    print()
    print(table.to_text())
    benchmark.extra_info["rows"] = table.rows
    thr = {row["offset"]: row["throughput"] for row in table.rows}
    bound = {row["offset"]: row["l2_bound"] for row in table.rows}
    predicted = {row["offset"]: row["predicted"] for row in table.rows}
    # Valleys at multiples of h: measured throughput at n*h must be
    # below every non-multiple offset's throughput.
    valley = max(thr[n] for n in offsets if n % h == 0)
    plateau = min(thr[n] for n in offsets if n % h != 0 and bound[n] >= 0.45)
    assert valley < plateau, (
        f"ADV+n*h valleys ({valley}) should undercut benign offsets ({plateau})"
    )
    # The analytic bound is an upper bound on measured throughput
    # (allowing a little measurement slack).
    for n in offsets:
        assert thr[n] <= bound[n] * 1.15 + 0.02
        # The Monte-Carlo prediction is the tighter companion: measured
        # throughput tracks it (it can overshoot a little — flows that
        # avoid the hottest link keep delivering past its fair share).
        assert thr[n] <= predicted[n] * 1.4 + 0.02
        assert thr[n] >= predicted[n] * 0.45
