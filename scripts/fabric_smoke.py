#!/usr/bin/env python
"""Fabric smoke: a small fleet drains one campaign, one worker is shot.

The end-to-end check CI runs for :mod:`repro.fabric`:

1. drain ``campaigns/tiny.yaml`` single-host into store A (reference);
2. start N fabric worker *processes* against a fresh shared store B
   (short lease ttl, mid-run checkpointing enabled), SIGKILL one of
   them about a second in, and let the survivors finish;
3. assert the campaign completed anyway: every point resolved, zero
   failure records, zero leases left, and store B's entries identical
   to store A's modulo the wall-clock metadata (``created`` /
   ``wall_time``) — the spec and point blobs must match byte for byte;
4. assert a plain single-host ``campaign run`` against store B reports
   100% cache hits (the orchestrator accepts the fleet's results as
   its own).

Exit status 0 when every check passes; the first failed check prints
what broke and exits 1.

Usage::

    PYTHONPATH=src python scripts/fabric_smoke.py [--workers 3] [--keep]
"""

import argparse
import json
import os
import signal
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
CAMPAIGN = str(REPO / "campaigns" / "tiny.yaml")
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def run_campaign(store: Path) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "campaign", "run", CAMPAIGN,
         "--store", str(store)],
        env=ENV, capture_output=True, text=True, timeout=600,
    )
    if proc.returncode != 0:
        fail(f"campaign run exited {proc.returncode}:\n{proc.stderr}")
    return proc.stdout


def entries(store: Path) -> dict:
    """fingerprint -> (spec, point), the wall-clock metadata dropped."""
    out = {}
    for path in sorted((store / "objects").glob("*/*.json")):
        entry = json.loads(path.read_text())
        out[path.stem] = (entry["spec"], entry["point"])
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=3,
                        help="fabric worker processes to start (default 3)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch stores for inspection")
    args = parser.parse_args()

    scratch = Path(tempfile.mkdtemp(prefix="fabric-smoke-"))
    store_a, store_b = scratch / "single", scratch / "fleet"
    try:
        print(f"[1/4] single-host reference run -> {store_a}")
        out = run_campaign(store_a)
        if "8 points: 8 run, 0 cached, 0 failed" not in out:
            fail(f"reference run did not execute all 8 points:\n{out}")

        print(f"[2/4] {args.workers} fabric workers -> {store_b} "
              "(one gets SIGKILLed)")
        procs = []
        for i in range(args.workers):
            procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro", "fabric", "work", CAMPAIGN,
                 "--store", str(store_b), "--worker-id", f"smoke-w{i}",
                 "--lease-ttl", "2", "--poll", "0.1", "--snapshot-every", "64"],
                env=ENV, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True,
            ))
        time.sleep(1.0)
        victim = procs[0]
        try:
            victim.send_signal(signal.SIGKILL)
            print(f"      killed worker pid {victim.pid}")
        except ProcessLookupError:
            print("      victim already exited (fast machine); "
                  "survivors still prove the drain")
        for proc in procs:
            try:
                proc.wait(timeout=600)
            except subprocess.TimeoutExpired:
                proc.kill()
                fail(f"worker pid {proc.pid} wedged (drain never finished)")
        for proc in procs[1:]:
            if proc.returncode != 0:
                fail(f"surviving worker pid {proc.pid} exited "
                     f"{proc.returncode}:\n{proc.stdout.read()}")

        print("[3/4] store checks: complete, clean, identical to single-host")
        got, ref = entries(store_b), entries(store_a)
        if set(got) != set(ref):
            fail(f"fleet store has {len(got)}/{len(ref)} points")
        if got != ref:
            bad = [fp for fp in ref if got[fp] != ref[fp]]
            fail(f"{len(bad)} entries differ from single-host: {bad}")
        leases = list((store_b / "leases").glob("*.json"))
        if leases:
            fail(f"leases left behind: {[p.name for p in leases]}")
        failures = list((store_b / "failures").glob("*/*.json"))
        if failures:
            fail(f"failure records present: {[p.name for p in failures]}")
        checkpoints = list((store_b / "snapshots").glob("*/*.json"))
        if checkpoints:
            fail(f"orphaned checkpoints left: {[p.name for p in checkpoints]}")

        print("[4/4] single-host resume over the fleet store is 100% cached")
        out = run_campaign(store_b)
        if "8 points: 0 run, 8 cached, 0 failed" not in out:
            fail(f"resume over the fleet store re-ran points:\n{out}")

        print("OK: fleet survived SIGKILL; store identical; no leases; "
              "100% cache-hit resume")
    finally:
        if args.keep:
            print(f"scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    main()
