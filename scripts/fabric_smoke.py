#!/usr/bin/env python
"""Fabric smoke: a small fleet drains one campaign, one worker is shot.

The end-to-end check CI runs for :mod:`repro.fabric`, in two modes.

``--mode file`` (shared-directory leases, the default):

1. drain ``campaigns/tiny.yaml`` single-host into store A (reference);
2. start N fabric worker *processes* against a fresh shared store B
   (short lease ttl, mid-run checkpointing enabled), SIGKILL one of
   them about a second in, and let the survivors finish;
3. assert the campaign completed anyway: every point resolved, zero
   failure records, zero leases left, and store B's entries identical
   to store A's modulo the wall-clock metadata (``created`` /
   ``wall_time``) — the spec and point blobs must match byte for byte;
4. assert a plain single-host ``campaign run`` against store B reports
   100% cache hits (the orchestrator accepts the fleet's results as
   its own).

``--mode coordinator`` (HTTP leases, no shared filesystem):

1. same single-host reference run into store A;
2. ``repro fabric serve`` in a subprocess owning store C, then N
   worker processes pointed at it via ``--coordinator`` with private
   spool directories — no worker ever touches store C's disk;
3. mid-drain, SIGKILL one worker *and* SIGKILL + restart the
   coordinator on the same port (state recovers from disk; the
   survivors retry through the outage);
4. assert store C passes ``repro store verify``, matches store A byte
   for byte, holds zero leases / failures / checkpoints, and that a
   single-host ``campaign run`` over it is 100% cached.

Exit status 0 when every check passes; the first failed check prints
what broke and exits 1.

Usage::

    PYTHONPATH=src python scripts/fabric_smoke.py [--mode file|coordinator]
        [--workers 3] [--keep]
"""

import argparse
import json
import os
import signal
import shutil
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
CAMPAIGN = str(REPO / "campaigns" / "tiny.yaml")
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}


def fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def run_campaign(store: Path) -> str:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "campaign", "run", CAMPAIGN,
         "--store", str(store)],
        env=ENV, capture_output=True, text=True, timeout=600,
    )
    if proc.returncode != 0:
        fail(f"campaign run exited {proc.returncode}:\n{proc.stderr}")
    return proc.stdout


def entries(store: Path) -> dict:
    """fingerprint -> (spec, point), the wall-clock metadata dropped."""
    out = {}
    for path in sorted((store / "objects").glob("*/*.json")):
        entry = json.loads(path.read_text())
        out[path.stem] = (entry["spec"], entry["point"])
    return out


def reference_run(store: Path) -> dict:
    out = run_campaign(store)
    if "8 points: 8 run, 0 cached, 0 failed" not in out:
        fail(f"reference run did not execute all 8 points:\n{out}")
    return entries(store)


def wait_drained(procs: list, survivors_from: int = 1) -> None:
    for proc in procs:
        try:
            proc.wait(timeout=600)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail(f"worker pid {proc.pid} wedged (drain never finished)")
    for proc in procs[survivors_from:]:
        if proc.returncode != 0:
            fail(f"surviving worker pid {proc.pid} exited "
                 f"{proc.returncode}:\n{proc.stdout.read()}")


def check_store(store: Path, ref: dict) -> None:
    got = entries(store)
    if set(got) != set(ref):
        fail(f"fleet store has {len(got)}/{len(ref)} points")
    if got != ref:
        bad = [fp for fp in ref if got[fp] != ref[fp]]
        fail(f"{len(bad)} entries differ from single-host: {bad}")
    leases = list((store / "leases").glob("*.json"))
    if leases:
        fail(f"leases left behind: {[p.name for p in leases]}")
    failures = list((store / "failures").glob("*/*.json"))
    if failures:
        fail(f"failure records present: {[p.name for p in failures]}")
    checkpoints = list((store / "snapshots").glob("*/*.json"))
    if checkpoints:
        fail(f"orphaned checkpoints left: {[p.name for p in checkpoints]}")


def check_cached_resume(store: Path) -> None:
    out = run_campaign(store)
    if "8 points: 0 run, 8 cached, 0 failed" not in out:
        fail(f"resume over the fleet store re-ran points:\n{out}")


def file_smoke(scratch: Path, workers: int) -> None:
    store_a, store_b = scratch / "single", scratch / "fleet"
    print(f"[1/4] single-host reference run -> {store_a}")
    ref = reference_run(store_a)

    print(f"[2/4] {workers} fabric workers -> {store_b} "
          "(one gets SIGKILLed)")
    procs = []
    for i in range(workers):
        procs.append(subprocess.Popen(
            [sys.executable, "-m", "repro", "fabric", "work", CAMPAIGN,
             "--store", str(store_b), "--worker-id", f"smoke-w{i}",
             "--lease-ttl", "2", "--poll", "0.1", "--snapshot-every", "64"],
            env=ENV, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        ))
    time.sleep(1.0)
    victim = procs[0]
    try:
        victim.send_signal(signal.SIGKILL)
        print(f"      killed worker pid {victim.pid}")
    except ProcessLookupError:
        print("      victim already exited (fast machine); "
              "survivors still prove the drain")
    wait_drained(procs)

    print("[3/4] store checks: complete, clean, identical to single-host")
    check_store(store_b, ref)

    print("[4/4] single-host resume over the fleet store is 100% cached")
    check_cached_resume(store_b)

    print("OK: fleet survived SIGKILL; store identical; no leases; "
          "100% cache-hit resume")


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def spawn_coordinator(store: Path, port: int) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "fabric", "serve",
         "--store", str(store), "--port", str(port)],
        env=ENV, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 15.0
    url = f"http://127.0.0.1:{port}/api/v1/ping"
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url, timeout=1.0):
                return proc
        except OSError:
            if proc.poll() is not None:
                fail(f"coordinator exited {proc.returncode} on startup:\n"
                     f"{proc.stdout.read()}")
            time.sleep(0.05)
    proc.kill()
    fail("coordinator never answered ping")


def coordinator_smoke(scratch: Path, workers: int) -> None:
    store_a, store_c = scratch / "single", scratch / "coord"
    print(f"[1/5] single-host reference run -> {store_a}")
    ref = reference_run(store_a)

    port = free_port()
    url = f"http://127.0.0.1:{port}"
    print(f"[2/5] coordinator on {url} -> {store_c}, "
          f"{workers} HTTP workers with private spools")
    server = spawn_coordinator(store_c, port)
    procs = []
    for i in range(workers):
        procs.append(subprocess.Popen(
            [sys.executable, "-m", "repro", "fabric", "work", CAMPAIGN,
             "--coordinator", url, "--store", str(scratch / f"spool{i}"),
             "--worker-id", f"smoke-c{i}",
             "--lease-ttl", "2", "--poll", "0.1", "--snapshot-every", "64"],
            env=ENV, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        ))
    time.sleep(1.0)
    victim = procs[0]
    try:
        victim.send_signal(signal.SIGKILL)
        print(f"      killed worker pid {victim.pid}")
    except ProcessLookupError:
        print("      victim already exited (fast machine); "
              "survivors still prove the drain")

    print("[3/5] SIGKILL the coordinator mid-drain, restart on the "
          "same port (state recovers from disk)")
    server.send_signal(signal.SIGKILL)
    server.wait(timeout=30)
    time.sleep(1.0)  # let the survivors hit the outage and back off
    server = spawn_coordinator(store_c, port)
    wait_drained(procs)
    server.terminate()
    server.wait(timeout=30)

    print("[4/5] store checks: verify clean, identical to single-host")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "store", "verify", str(store_c)],
        env=ENV, capture_output=True, text=True, timeout=120,
    )
    if proc.returncode != 0:
        fail(f"store verify failed over the coordinator store:\n"
             f"{proc.stdout}{proc.stderr}")
    check_store(store_c, ref)

    print("[5/5] single-host resume over the coordinator store is "
          "100% cached")
    check_cached_resume(store_c)

    print("OK: fleet survived worker SIGKILL + coordinator restart; "
          "store identical; no leases; 100% cache-hit resume")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("file", "coordinator"),
                        default="file",
                        help="lease backend to exercise (default file)")
    parser.add_argument("--workers", type=int, default=3,
                        help="fabric worker processes to start (default 3)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch stores for inspection")
    args = parser.parse_args()

    scratch = Path(tempfile.mkdtemp(prefix="fabric-smoke-"))
    try:
        if args.mode == "file":
            file_smoke(scratch, args.workers)
        else:
            coordinator_smoke(scratch, args.workers)
    finally:
        if args.keep:
            print(f"scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    main()
