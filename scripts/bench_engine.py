#!/usr/bin/env python
"""Benchmark the simulation engine: cycles/sec on a fixed workload.

The workload is pinned — ``h = 3``, OFAR, uniform (UN) and adversarial
(ADV+h) phases at fixed loads and seeds — so numbers are comparable
across engine versions on the same machine.  Two loads per pattern
cover the engine's operating regimes:

* a low load (0.05), where the active-set scheduler pays off most
  (few routers hold work on any given cycle);
* a load just below each pattern's saturation point (0.25 UN /
  0.20 ADV+3), where per-grant semantic work dominates.

Results are written to ``BENCH_engine.json`` (see docs/architecture.md,
section "Performance & benchmarking"); keep the previous file around to
track the perf trajectory PR over PR.

Usage::

    PYTHONPATH=src python scripts/bench_engine.py                # full run
    PYTHONPATH=src python scripts/bench_engine.py --check        # CI smoke
    PYTHONPATH=src python scripts/bench_engine.py --out out.json
    PYTHONPATH=src python scripts/bench_engine.py \
        --compare-tree /tmp/seed_tree/src                        # A/B vs seed
    PYTHONPATH=src python scripts/bench_engine.py --telemetry    # sampler cost
    PYTHONPATH=src python scripts/bench_engine.py --snapshot     # codec + fork
    PYTHONPATH=src python scripts/bench_engine.py --backend array  # engine A/B

``--check`` runs a few hundred cycles per phase only — enough to catch
a broken or pathologically slow engine in the tier-1 suite without
turning the test run into a benchmark session.

``--telemetry`` measures the in-run telemetry sampler
(:mod:`repro.telemetry`) on the same pinned workload: sampling off vs
on at interval 100, alternating in-process like ``--compare-tree``, and
cross-checking ejected counts (sampling must never perturb the run).
Writes ``BENCH_telemetry.json``; the *off* numbers double as the proof
that the dormant hook costs nothing beyond noise vs
``BENCH_engine.json``.

``--snapshot`` measures the checkpoint/restore subsystem
(:mod:`repro.snapshot`) on the same pinned workload: wall cost of each
codec operation (capture, digest, save, load, restore — restore
digest-checked against the original) plus the fork-after-warmup speedup
of a 3-variant transient sweep (one shared warm-up vs one warm-up per
variant, series cross-checked for exact equality).  Writes
``BENCH_snapshot.json``.

``--backend NAME`` benchmarks a registered engine backend
(:mod:`repro.engine.backend`) against the reference object engine,
alternating in-process like ``--compare-tree`` and cross-checking the
end-of-window ``state_digest()`` of every phase — the backends'
bit-for-bit contract; a mismatch exits non-zero, which is what CI
gates on (``--backend array --check``).  Writes
``BENCH_engine_<name>.json``.

``--compare-tree PATH`` measures a second source tree (e.g. a ``git
archive`` of the pre-optimization commit, unpacked so that ``PATH``
contains the ``repro`` package) in the *same process*, alternating
baseline/current rounds with module purging in between.  Alternation is
the only reliable protocol on shared machines: separate runs minutes
apart see ±30 % wall-clock drift from co-tenancy, which swamps the
effect being measured.  Best-of-N per engine per phase discards the
slow outliers both engines suffer equally.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import platform
import sys
import time

# The fixed benchmark workload.  h=3 is the largest size the tier-1
# suite exercises; loads sit below each pattern's saturation point so
# the run measures the engine, not an ever-growing source-queue backlog.
BENCH_H = 3
BENCH_ROUTING = "ofar"
BENCH_SEED = 1
PHASES = (
    ("UN", 0.05),
    ("UN", 0.25),
    ("ADV+3", 0.05),
    ("ADV+3", 0.20),
)


def _load_engine(tree: str | None) -> dict:
    """(Re-)import the ``repro`` package, optionally from ``tree``.

    Purges any previously imported ``repro`` modules first so two
    source trees can be exercised alternately in one process.  All
    ``repro`` imports are module-level, so importing the entry modules
    below pulls the whole engine in while ``tree`` is on ``sys.path``.
    """
    for name in [n for n in sys.modules if n == "repro" or n.startswith("repro.")]:
        del sys.modules[name]
    if tree is not None:
        sys.path.insert(0, tree)
    try:
        mods = {
            "config": importlib.import_module("repro.engine.config"),
            "runner": importlib.import_module("repro.engine.runner"),
            "simulator": importlib.import_module("repro.engine.simulator"),
            "generators": importlib.import_module("repro.traffic.generators"),
            "patterns": importlib.import_module("repro.traffic.patterns"),
        }
    finally:
        if tree is not None:
            sys.path.remove(tree)
    return mods


def _build_sim(eng: dict, pattern_spec: str, load: float, backend: str = "object"):
    cfg = eng["config"].SimulationConfig.small(
        h=BENCH_H, routing=BENCH_ROUTING, seed=BENCH_SEED
    )
    if backend == "object":
        # Constructed directly (not via the registry) so --compare-tree
        # still works against baseline trees predating the backend layer.
        sim = eng["simulator"].Simulator(cfg)
    else:
        backend_mod = importlib.import_module("repro.engine.backend")
        sim = backend_mod.get_backend(backend).simulator(cfg)
    topo = sim.network.topo
    pattern = eng["patterns"].make_pattern(
        topo, eng["runner"]._pattern_rng(cfg, 2), pattern_spec
    )
    sim.generator = eng["generators"].BernoulliTraffic(
        pattern, load, cfg.packet_size, topo.num_nodes, BENCH_SEED ^ 0x5A5A
    )
    return sim


def _time_phase(
    eng: dict, pattern_spec: str, load: float, warmup: int, cycles: int
) -> tuple[float, int]:
    """One timed measurement: fresh sim, warm up, time ``cycles``.

    Returns ``(elapsed_seconds, ejected_packets)``.  The ejected count
    is a cheap behavioral fingerprint: two engines claiming
    bit-identical semantics must agree on it exactly.
    """
    sim = _build_sim(eng, pattern_spec, load)
    sim.run(warmup)
    start = time.perf_counter()
    sim.run(cycles)
    elapsed = time.perf_counter() - start
    return elapsed, sim.network.ejected_packets


def run_benchmark(warmup: int, cycles: int, repeats: int) -> dict:
    """Measure the current engine only (normal and ``--check`` modes)."""
    eng = _load_engine(None)
    phases = []
    for pattern_spec, load in PHASES:
        best = float("inf")
        ejected = 0
        for _ in range(repeats):
            elapsed, ejected = _time_phase(eng, pattern_spec, load, warmup, cycles)
            best = min(best, elapsed)
        phases.append(
            {
                "pattern": pattern_spec,
                "load": load,
                "warmup": warmup,
                "cycles": cycles,
                "repeats": repeats,
                "best_seconds": round(best, 4),
                "cycles_per_sec": round(cycles / best, 1),
                "ejected_packets": ejected,
            }
        )
    total_cycles = sum(ph["cycles"] for ph in phases)
    total_seconds = sum(ph["best_seconds"] for ph in phases)
    return {
        "workload": _workload_stanza(),
        "machine": _machine_stanza(),
        "phases": phases,
        "combined_cycles_per_sec": round(total_cycles / total_seconds, 1),
    }


def _time_phase_backend(
    eng: dict, pattern_spec: str, load: float, warmup: int, cycles: int,
    backend: str,
) -> tuple[float, int, str]:
    """:func:`_time_phase` on a named engine backend, plus the state
    digest at the end of the timed window — the bit-for-bit cross-check
    between backends (an ejected-count match is necessary; a digest
    match is the full claim)."""
    sim = _build_sim(eng, pattern_spec, load, backend=backend)
    sim.run(warmup)
    start = time.perf_counter()
    sim.run(cycles)
    elapsed = time.perf_counter() - start
    return elapsed, sim.network.ejected_packets, sim.state_digest()


def run_backend_bench(backend: str, warmup: int, cycles: int, rounds: int) -> dict:
    """Alternating A/B: the reference object engine vs ``backend``.

    Same protocol as ``--compare-tree`` (alternating rounds, best-of-N
    per engine per phase), with a stronger behavioral check: both
    engines must finish every phase with the identical ``state_digest()``
    — the backends' bit-for-bit contract — not just identical ejected
    counts.  A digest mismatch aborts with a non-zero exit, which is
    what CI gates on.
    """
    eng = _load_engine(None)
    keys = [f"{p}@{load:.2f}" for p, load in PHASES]
    labels = ("object", backend)
    best = {lab: dict.fromkeys(keys, float("inf")) for lab in labels}
    ejected: dict[str, dict[str, int]] = {lab: {} for lab in labels}
    digests: dict[str, dict[str, str]] = {lab: {} for lab in labels}
    for rnd in range(rounds):
        for label in labels:
            for (pattern_spec, load), key in zip(PHASES, keys):
                elapsed, ej, dg = _time_phase_backend(
                    eng, pattern_spec, load, warmup, cycles, label
                )
                best[label][key] = min(best[label][key], elapsed)
                ejected[label][key] = ej
                digests[label][key] = dg
        print(f"[round {rnd + 1}/{rounds} done]", file=sys.stderr)
    phases = []
    for (pattern_spec, load), key in zip(PHASES, keys):
        if digests["object"][key] != digests[backend][key]:
            raise SystemExit(
                f"backend {backend!r} diverged from the object engine on "
                f"{key}: state digests differ at the end of the timed window"
            )
        if ejected["object"][key] != ejected[backend][key]:
            raise SystemExit(
                f"behavioral mismatch on {key}: object ejected "
                f"{ejected['object'][key]}, {backend} {ejected[backend][key]}"
            )
        b, c = best["object"][key], best[backend][key]
        phases.append(
            {
                "pattern": pattern_spec,
                "load": load,
                "warmup": warmup,
                "cycles": cycles,
                "rounds": rounds,
                "object_cycles_per_sec": round(cycles / b, 1),
                "cycles_per_sec": round(cycles / c, 1),
                "speedup": round(b / c, 2),
                "ejected_packets": ejected[backend][key],
                "state_digest": digests[backend][key],
            }
        )
    total_cycles = len(PHASES) * cycles
    obj_seconds = sum(best["object"][k] for k in keys)
    back_seconds = sum(best[backend][k] for k in keys)
    return {
        "workload": _workload_stanza(),
        "machine": _machine_stanza(),
        "backend": backend,
        "method": (
            "alternating same-process A/B vs the object engine, best of "
            f"{rounds} rounds per engine per phase; end-of-window state "
            "digests cross-checked (backends must be bit-for-bit identical)"
        ),
        "notes": (
            "Honest numbers: the array backend's vectorized pre-pass only "
            "replaces the RNG-free route() evaluations; bit-exactness (same "
            "digests, same snapshot bytes) requires the Python object graph "
            "to stay canonical, so every grant/event still mutates it and "
            "the mirror upkeep is pure overhead at this radix. The 10x "
            "target is unachievable under the bit-exact contract; measured "
            "speedup grows with radix (h=3 worst case, ~0.9x at h>=4) but "
            "does not cross 1x on this workload. See docs/architecture.md, "
            "'Engine backends'."
        ),
        "phases": phases,
        "object_combined_cycles_per_sec": round(total_cycles / obj_seconds, 1),
        "combined_cycles_per_sec": round(total_cycles / back_seconds, 1),
        "combined_speedup": round(obj_seconds / back_seconds, 2),
    }


def run_compare(tree: str, warmup: int, cycles: int, rounds: int) -> dict:
    """Alternating A/B: baseline tree vs the current tree, best-of-N."""
    if not os.path.isdir(os.path.join(tree, "repro")):
        # Without this check a bad path would silently fall through to
        # the ambient sys.path and benchmark the engine against itself.
        raise SystemExit(f"--compare-tree: no 'repro' package under {tree!r}")
    keys = [f"{p}@{load:.2f}" for p, load in PHASES]
    best = {
        "baseline": dict.fromkeys(keys, float("inf")),
        "current": dict.fromkeys(keys, float("inf")),
    }
    ejected: dict[str, dict[str, int]] = {"baseline": {}, "current": {}}
    for rnd in range(rounds):
        for label, path in (("baseline", tree), ("current", None)):
            eng = _load_engine(path)
            for (pattern_spec, load), key in zip(PHASES, keys):
                elapsed, ej = _time_phase(eng, pattern_spec, load, warmup, cycles)
                best[label][key] = min(best[label][key], elapsed)
                ejected[label][key] = ej
        print(f"[round {rnd + 1}/{rounds} done]", file=sys.stderr)
    phases = []
    for (pattern_spec, load), key in zip(PHASES, keys):
        if ejected["baseline"][key] != ejected["current"][key]:
            raise SystemExit(
                f"behavioral mismatch on {key}: baseline ejected "
                f"{ejected['baseline'][key]}, current {ejected['current'][key]}"
            )
        b, c = best["baseline"][key], best["current"][key]
        phases.append(
            {
                "pattern": pattern_spec,
                "load": load,
                "warmup": warmup,
                "cycles": cycles,
                "rounds": rounds,
                "baseline_cycles_per_sec": round(cycles / b, 1),
                "cycles_per_sec": round(cycles / c, 1),
                "speedup": round(b / c, 2),
                "ejected_packets": ejected["current"][key],
            }
        )
    total_cycles = len(PHASES) * cycles
    base_seconds = sum(best["baseline"][k] for k in keys)
    cur_seconds = sum(best["current"][k] for k in keys)
    return {
        "workload": _workload_stanza(),
        "machine": _machine_stanza(),
        "method": (
            "alternating same-process A/B vs baseline tree, "
            f"best of {rounds} rounds per engine per phase; "
            "combined = total cycles / total best-seconds"
        ),
        "baseline_tree": tree,
        "phases": phases,
        "baseline_combined_cycles_per_sec": round(total_cycles / base_seconds, 1),
        "combined_cycles_per_sec": round(total_cycles / cur_seconds, 1),
        "combined_speedup": round(base_seconds / cur_seconds, 2),
    }


def _time_phase_telemetry(
    eng, pattern_spec: str, load: float, warmup: int, cycles: int, interval: int
) -> tuple[float, int, int]:
    """Like :func:`_time_phase` but with a telemetry sampler attached
    for the timed window; also returns the sample count."""
    sampler_mod = importlib.import_module("repro.telemetry.sampler")
    config_mod = importlib.import_module("repro.telemetry.config")
    sim = _build_sim(eng, pattern_spec, load)
    sim.run(warmup)
    sampler = sampler_mod.TelemetrySampler(
        sim, config_mod.TelemetryConfig(interval=interval)
    )
    sampler.attach()
    start = time.perf_counter()
    sim.run(cycles)
    elapsed = time.perf_counter() - start
    series = sampler.finish()
    return elapsed, sim.network.ejected_packets, len(series.samples)


def run_telemetry_bench(
    warmup: int, cycles: int, rounds: int, interval: int = 100
) -> dict:
    """Sampling-off vs sampling-on (interval ``interval``), alternating.

    Measures the telemetry subsystem's two cost claims on the pinned
    workload: *off* must be within noise of the plain engine (the hook
    is one attribute check per cycle — compare against
    ``BENCH_engine.json``), and *on* must stay a small, bounded
    per-window cost.  The ejected-packet cross-check enforces the
    stronger claim: sampling does not change the simulation at all.
    """
    eng = _load_engine(None)
    keys = [f"{p}@{load:.2f}" for p, load in PHASES]
    best = {
        "off": dict.fromkeys(keys, float("inf")),
        "on": dict.fromkeys(keys, float("inf")),
    }
    ejected: dict[str, dict[str, int]] = {"off": {}, "on": {}}
    samples: dict[str, int] = {}
    for rnd in range(rounds):
        for (pattern_spec, load), key in zip(PHASES, keys):
            elapsed, ej = _time_phase(eng, pattern_spec, load, warmup, cycles)
            best["off"][key] = min(best["off"][key], elapsed)
            ejected["off"][key] = ej
            elapsed, ej, ns = _time_phase_telemetry(
                eng, pattern_spec, load, warmup, cycles, interval
            )
            best["on"][key] = min(best["on"][key], elapsed)
            ejected["on"][key] = ej
            samples[key] = ns
        print(f"[round {rnd + 1}/{rounds} done]", file=sys.stderr)
    phases = []
    for (pattern_spec, load), key in zip(PHASES, keys):
        if ejected["off"][key] != ejected["on"][key]:
            raise SystemExit(
                f"telemetry perturbed the simulation on {key}: "
                f"{ejected['off'][key]} ejected without vs "
                f"{ejected['on'][key]} with sampling"
            )
        off, on = best["off"][key], best["on"][key]
        phases.append(
            {
                "pattern": pattern_spec,
                "load": load,
                "warmup": warmup,
                "cycles": cycles,
                "rounds": rounds,
                "interval": interval,
                "samples": samples[key],
                "off_cycles_per_sec": round(cycles / off, 1),
                "cycles_per_sec": round(cycles / on, 1),
                "overhead": round(on / off - 1.0, 4),
                "ejected_packets": ejected["on"][key],
            }
        )
    total_cycles = len(PHASES) * cycles
    off_seconds = sum(best["off"][k] for k in keys)
    on_seconds = sum(best["on"][k] for k in keys)
    return {
        "workload": _workload_stanza(),
        "machine": _machine_stanza(),
        "method": (
            "alternating same-process off/on rounds, best of "
            f"{rounds} per mode per phase; overhead = on/off - 1; "
            "ejected counts cross-checked (sampling must not perturb)"
        ),
        "phases": phases,
        "off_combined_cycles_per_sec": round(total_cycles / off_seconds, 1),
        "combined_cycles_per_sec": round(total_cycles / on_seconds, 1),
        "combined_overhead": round(on_seconds / off_seconds - 1.0, 4),
    }


def run_snapshot_bench(warmup: int, cycles: int, rounds: int) -> dict:
    """Snapshot codec wall costs + the fork-after-warmup speedup.

    Part 1 warms the pinned h=3 workload (ADV+3 @ 0.20) to
    ``warmup + cycles`` and times each codec operation — capture,
    digest, save, load, restore-into-a-fresh-simulator — best of
    ``rounds``, cross-checking that the restored simulator's state
    digest matches the original's.

    Part 2 measures what the snapshot subsystem buys: a 3-variant
    transient sweep (one warm-up per variant vs one shared warm-up +
    :func:`~repro.engine.runner.run_transient_forked`), on the
    warm-up-dominated protocol the fork API exists for.  The per-variant
    series are cross-checked for exact equality — the speedup is only
    worth reporting if the fork path is bit-identical.
    """
    import tempfile

    eng = _load_engine(None)
    snapmod = importlib.import_module("repro.snapshot")
    pattern_spec, load = "ADV+3", 0.20

    sim = _build_sim(eng, pattern_spec, load)
    sim.run(warmup + cycles)
    ops = ("capture", "digest", "save", "load", "restore")
    best = dict.fromkeys(ops, float("inf"))
    size = 0
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench_snapshot.json")
        for _ in range(rounds):
            start = time.perf_counter()
            snap = snapmod.Snapshot.capture(sim)
            best["capture"] = min(best["capture"], time.perf_counter() - start)
            start = time.perf_counter()
            snap.digest()
            best["digest"] = min(best["digest"], time.perf_counter() - start)
            start = time.perf_counter()
            snap.save(path)
            best["save"] = min(best["save"], time.perf_counter() - start)
            size = os.path.getsize(path)
            start = time.perf_counter()
            loaded = snapmod.Snapshot.load(path)
            best["load"] = min(best["load"], time.perf_counter() - start)
            fresh = _build_sim(eng, pattern_spec, load)
            start = time.perf_counter()
            loaded.restore_into(fresh)
            best["restore"] = min(best["restore"], time.perf_counter() - start)
            if fresh.state_digest() != sim.state_digest():
                raise SystemExit("restored simulator diverged from the original")
    codec = {
        "pattern": pattern_spec,
        "load": load,
        "at_cycle": warmup + cycles,
        "rounds": rounds,
        "snapshot_bytes": size,
        **{f"{op}_ms": round(best[op] * 1e3, 2) for op in ops},
    }

    # Fork-after-warmup: N variants branched off one warmed state.
    afters = ["ADV+3", "ADV+1", "MIX1"]
    fw, fp, fd = 4 * cycles, max(cycles // 3, 60), max(cycles // 3, 60)
    runner, config_mod = eng["runner"], eng["config"]
    cfg = config_mod.SimulationConfig.small(
        h=BENCH_H, routing=BENCH_ROUTING, seed=BENCH_SEED
    )
    kwargs = dict(warmup=fw, post=fp, drain_margin=fd, bucket=20)
    best_ind = best_fork = float("inf")
    for rnd in range(rounds):
        start = time.perf_counter()
        individual = [
            runner.run_transient(cfg, "UN", a, load, **kwargs) for a in afters
        ]
        best_ind = min(best_ind, time.perf_counter() - start)
        start = time.perf_counter()
        forked = runner.run_transient_forked(cfg, "UN", afters, load, **kwargs)
        best_fork = min(best_fork, time.perf_counter() - start)
        for after, ind, frk in zip(afters, individual, forked):
            if ind.series != frk.series:
                raise SystemExit(f"forked transient diverged on {after}")
        print(f"[round {rnd + 1}/{rounds} done]", file=sys.stderr)
    fork = {
        "after_patterns": afters,
        "load": load,
        "warmup": fw,
        "post": fp,
        "drain_margin": fd,
        "rounds": rounds,
        "individual_cycles": len(afters) * (fw + fp + fd),
        "forked_cycles": fw + len(afters) * (fp + fd),
        "individual_seconds": round(best_ind, 4),
        "forked_seconds": round(best_fork, 4),
        "speedup": round(best_ind / best_fork, 2),
    }
    return {
        "workload": _workload_stanza(),
        "machine": _machine_stanza(),
        "method": (
            "codec ops timed on a warmed simulator, best of "
            f"{rounds}, restore digest-checked against the original; "
            "fork sweep = N individually-warmed transients vs one shared "
            "warm-up + run_transient_forked, series cross-checked for "
            "exact equality"
        ),
        "codec": codec,
        "fork": fork,
    }


def _workload_stanza() -> dict:
    return {
        "h": BENCH_H,
        "routing": BENCH_ROUTING,
        "seed": BENCH_SEED,
        "phases": [{"pattern": p, "load": load} for p, load in PHASES],
    }


def _machine_stanza() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "processor": platform.processor() or platform.machine(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="smoke mode: a few hundred cycles per phase, no file written "
        "unless --out is given (keeps the bench harness exercised in CI)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="benchmark a registered engine backend against the object "
        "engine, alternating in-process with per-phase state-digest "
        "cross-checks; writes BENCH_engine_<name>.json",
    )
    parser.add_argument(
        "--compare-tree",
        default=None,
        metavar="PATH",
        help="path to an alternate source tree (containing the repro "
        "package) to benchmark against, alternating in-process",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="measure telemetry overhead: sampling off vs on (interval "
        "100), alternating in-process; writes BENCH_telemetry.json",
    )
    parser.add_argument(
        "--snapshot",
        action="store_true",
        help="measure the snapshot subsystem: codec wall costs (capture/"
        "digest/save/load/restore) plus the fork-after-warmup speedup on "
        "a 3-variant transient sweep; writes BENCH_snapshot.json",
    )
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--cycles", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--rounds", type=int, default=5, help="A/B rounds")
    args = parser.parse_args(argv)

    if args.check:
        warmup = args.warmup if args.warmup is not None else 100
        cycles = args.cycles if args.cycles is not None else 300
        repeats = args.repeats if args.repeats is not None else 1
    else:
        warmup = args.warmup if args.warmup is not None else 300
        cycles = args.cycles if args.cycles is not None else 1500
        repeats = args.repeats if args.repeats is not None else 3

    if args.backend is not None:
        rounds = args.rounds if not args.check else 1
        result = run_backend_bench(args.backend, warmup, cycles, rounds)
    elif args.compare_tree is not None:
        result = run_compare(args.compare_tree, warmup, cycles, args.rounds)
    elif args.telemetry:
        rounds = args.rounds if not args.check else 1
        result = run_telemetry_bench(warmup, cycles, rounds)
    elif args.snapshot:
        rounds = args.rounds if not args.check else 1
        result = run_snapshot_bench(warmup, cycles, rounds)
    else:
        result = run_benchmark(warmup, cycles, repeats)
    out = args.out
    if out is None and not args.check:
        if args.backend is not None:
            out = f"BENCH_engine_{args.backend}.json"
        elif args.telemetry:
            out = "BENCH_telemetry.json"
        elif args.snapshot:
            out = "BENCH_snapshot.json"
        else:
            out = "BENCH_engine.json"
    if out is not None:
        with open(out, "w") as f:
            json.dump(result, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"[saved {out}]", file=sys.stderr)
    if args.snapshot:
        c, fk = result["codec"], result["fork"]
        print(
            f"codec @ cycle {c['at_cycle']} ({c['snapshot_bytes']} bytes): "
            f"capture {c['capture_ms']:.1f} ms, digest {c['digest_ms']:.1f} ms, "
            f"save {c['save_ms']:.1f} ms, load {c['load_ms']:.1f} ms, "
            f"restore {c['restore_ms']:.1f} ms"
        )
        print(
            f"fork sweep ({len(fk['after_patterns'])} variants): "
            f"{fk['individual_seconds']:.2f}s individual vs "
            f"{fk['forked_seconds']:.2f}s forked  "
            f"(speedup {fk['speedup']:.2f}x, simulated cycles "
            f"{fk['individual_cycles']} -> {fk['forked_cycles']})"
        )
        return 0
    for ph in result["phases"]:
        line = (
            f"{ph['pattern']:>6s} @ {ph['load']:.2f}: "
            f"{ph['cycles_per_sec']:>10.1f} cycles/sec"
        )
        if "baseline_cycles_per_sec" in ph:
            line += (
                f"  (baseline {ph['baseline_cycles_per_sec']:.1f}, "
                f"speedup {ph['speedup']:.2f}x)"
            )
        elif "object_cycles_per_sec" in ph:
            line += (
                f"  (object {ph['object_cycles_per_sec']:.1f}, "
                f"speedup {ph['speedup']:.2f}x)"
            )
        if "overhead" in ph:
            line += (
                f"  (off {ph['off_cycles_per_sec']:.1f}, "
                f"sampling overhead {100 * ph['overhead']:+.1f}%)"
            )
        print(line)
    line = f"combined: {result['combined_cycles_per_sec']:.1f} cycles/sec"
    if "combined_speedup" in result:
        line += f"  (speedup {result['combined_speedup']:.2f}x)"
    if "combined_overhead" in result:
        line += f"  (sampling overhead {100 * result['combined_overhead']:+.1f}%)"
    print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
