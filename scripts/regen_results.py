#!/usr/bin/env python
"""Regenerate every figure's data and save CSVs under results/.

This is the long-form companion to the benchmark suite: it runs each
experiment at a chosen scale, writes one CSV per figure plus the exact
SimulationConfig JSON used, and prints the tables as it goes.

The fig2/fig3/fig4/fig5/fig6 jobs are declarative: they load the checked-in
campaign files under ``campaigns/`` and save the campaign's emitted
tables, so the reproduce-a-figure recipe lives in reviewable YAML
rather than in this script.  (Their replicated-seed ``aggregate``
tables land next to the legacy single-seed CSVs.)  The remaining jobs
still call their drivers directly.

Usage::

    python scripts/regen_results.py --scale medium --out results/
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.campaign import load_campaign, run_campaign
from repro.campaign import emit as emit_campaign
from repro.engine.config import SimulationConfig
from repro.experiments import (
    ablations,
    congestion,
    fig7_bursts,
    fig8_ring,
    fig9_reduced_vcs,
    get_scale,
    mapping_study,
)

CAMPAIGN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "campaigns")


def _router_design(scale):
    from repro.experiments import router_design

    return router_design.run(scale)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="medium")
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--only", default=None,
        help="comma-separated subset, e.g. fig5,fig7,mapping",
    )
    args = parser.parse_args()
    scale = get_scale(args.scale)
    os.makedirs(args.out, exist_ok=True)

    def save(name: str, table) -> None:
        path = os.path.join(args.out, f"{name}.csv")
        table.save_csv(path)
        print(table.to_text())
        print(f"[saved {path}]")

    def campaign_job(stem: str, csv_name: str, primary: str):
        """Run a checked-in campaign; save ``primary``'s table under the
        legacy CSV name and every other emission as ``<name>_<emitter>``."""
        def job() -> None:
            campaign = load_campaign(
                os.path.join(CAMPAIGN_DIR, f"{stem}.yaml"), scale=scale.name
            )
            run = run_campaign(campaign)
            for emitter, table in emit_campaign(run):
                save(csv_name if emitter == primary else f"{csv_name}_{emitter}",
                     table)
        return job

    jobs = {
        "fig2": campaign_job("fig2", "fig2_offsets", "table"),
        "fig3": campaign_job("fig3", "fig3_uniform", "series_table"),
        "fig4": campaign_job("fig4", "fig4_adv2", "series_table"),
        "fig5": campaign_job("fig5", "fig5_advh", "series_table"),
        "fig6": campaign_job("fig6", "fig6_transient", "table"),
        "fig7": lambda: save("fig7_bursts", fig7_bursts.run(scale)),
        "fig8": lambda: save("fig8_ring", fig8_ring.run(scale)),
        "fig9": lambda: save("fig9_reduced_vcs", fig9_reduced_vcs.run(scale)),
        "thresholds": lambda: save("ablation_thresholds", ablations.run_thresholds(scale)),
        "iterations": lambda: save(
            "ablation_iterations", ablations.run_allocator_iterations(scale)
        ),
        "family": lambda: save("ablation_family", ablations.run_mechanism_family(scale)),
        "congestion": lambda: save("ext_congestion", congestion.run(scale)),
        "mapping": lambda: save("ext_mapping", mapping_study.run(scale)),
        "design": lambda: save("ext_router_design", _router_design(scale)),
    }
    selected = args.only.split(",") if args.only else list(jobs)
    config_path = os.path.join(args.out, "config.json")
    with open(config_path, "w") as f:
        meta = {
            "scale": scale.name,
            "base_config": json.loads(scale.config("ofar").to_json()),
        }
        json.dump(meta, f, indent=2)
    print(f"[saved {config_path}]")
    for name in selected:
        if name not in jobs:
            raise SystemExit(f"unknown job {name!r}; choose from {sorted(jobs)}")
        t0 = time.time()
        print(f"=== {name} (scale {scale.name}) ===")
        jobs[name]()
        print(f"[{name} took {time.time() - t0:.1f}s]\n")


if __name__ == "__main__":
    main()
