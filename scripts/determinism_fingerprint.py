#!/usr/bin/env python
"""Fingerprint the engine's observable behavior for regression checks.

Runs a grid of small simulations spanning every routing mechanism,
escape mode and a few edge configurations, and emits a JSON document of
exact (unrounded) LoadPoint fields plus network counters.  Two engine
versions are behaviorally identical iff their fingerprints are equal —
use this before/after any engine refactor that claims to be
bit-for-bit behavior-preserving::

    PYTHONPATH=src python scripts/determinism_fingerprint.py > before.json
    # ... apply the refactor ...
    PYTHONPATH=src python scripts/determinism_fingerprint.py > after.json
    diff before.json after.json

``--orchestrated`` routes every steady-state point through a
store-backed :class:`~repro.engine.orchestrator.Orchestrator` (process
pool + content-addressed cache in a temp dir), runs the grid twice —
fresh, then resumed entirely from cache — asserts the two passes agree,
and emits the same document.  ``diff`` against a plain run must come
back empty; that is the cache-hit/resume bit-identity check.

``--telemetry`` attaches an in-run telemetry sampler
(:mod:`repro.telemetry`, interval 50, per-link detail on) to every
steady-state point and the transient, and emits the same document from
the telemetered runs.  ``diff`` against a plain run must come back
empty; that is the observation-never-perturbs check — the sampler reads
counters and chains the ejection hook, so every LoadPoint, series value
and network counter must be bit-identical with it attached.

``--snapshot`` routes every steady-state point, the transient and the
workload through the checkpoint/restore subsystem
(:mod:`repro.snapshot`): each run stops mid-measurement, captures a
snapshot, JSON round-trips it, forks a *fresh* simulator from it and
finishes on the fork.  ``diff`` against a plain run must come back
empty; that is the save/restore bit-identity check.

``--backend NAME`` executes the whole grid on the named engine
backend (:mod:`repro.engine.backend`).  Backends are required to be
bit-for-bit identical, so ``--backend array`` must diff clean against a
plain (object-backend) run — that is the cross-engine equivalence
check, over every mechanism the grid covers.

Every mode also fingerprints one multi-job workload spec
(:mod:`repro.workloads`: three jobs with staggered lifetimes, one of
them a burst) down to its per-job LoadPoints and interference matrix.
In ``--orchestrated`` mode the workload runs once through a
store-backed orchestrator (the worker persists the WorkloadResult
sidecar) and is then resolved again purely from the sidecar cache — the
two must agree, and both must diff clean against the plain and
``--telemetry`` documents.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile

from repro.engine.backend import available_backends, get_backend
from repro.engine.config import SimulationConfig
from repro.engine.runner import run_burst, run_spec, run_transient
from repro.engine.runspec import RunSpec

#: Engine backend executing every run in this process (--backend).
BACKEND = "object"


def _point_dict(pt) -> dict:
    return {k: repr(v) for k, v in dataclasses.asdict(pt).items()}


def plain_runner():
    """The default runner: one :func:`run_spec` call per point."""

    def run(config, pattern, load, warmup, measure):
        return run_spec(
            RunSpec(config, pattern, load, warmup, measure, backend=BACKEND)
        )

    return run


def orchestrated_runner(store, workers: int = 2):
    """A drop-in for ``run_steady_state`` that routes each point through
    a store-backed orchestrator (worker processes + cache).

    ``store`` is a :class:`~repro.analysis.store.ResultStore` or a
    directory path for one.
    """
    from repro.analysis.store import ResultStore
    from repro.engine.orchestrator import Orchestrator

    if not isinstance(store, ResultStore):
        store = ResultStore(store)
    orch = Orchestrator(workers=workers, store=store, retries=0)

    def run(config, pattern, load, warmup, measure):
        spec = RunSpec(config, pattern, load, warmup, measure, backend=BACKEND)
        return orch.run_points([spec])[0]

    return run


def telemetry_runner():
    """A drop-in for ``run_steady_state`` that runs each point with a
    telemetry sampler attached (and discards the series: only the
    LoadPoint enters the fingerprint, and it must not change)."""
    from repro.engine.runner import run_spec_with_telemetry
    from repro.telemetry.config import TelemetryConfig

    tcfg = TelemetryConfig(interval=50, per_link=True)

    def run(config, pattern, load, warmup, measure):
        point, series = run_spec_with_telemetry(
            RunSpec(config, pattern, load, warmup, measure, backend=BACKEND),
            tcfg,
        )
        assert series is not None and series.samples, "sampler produced nothing"
        return point

    return run


def snapshot_runner():
    """A drop-in for ``run_steady_state`` that exercises the snapshot
    codec on every point: stop mid-measurement, capture a snapshot, JSON
    round-trip it, fork a *fresh* simulator from it, and finish the
    measurement on the fork.  The LoadPoint must be bit-identical to a
    straight-through run — that is the save/restore bit-identity check.
    """
    from repro.engine.runner import build_steady_sim
    from repro.snapshot import Snapshot

    def run(config, pattern, load, warmup, measure):
        spec = RunSpec(config, pattern, load, warmup, measure, backend=BACKEND)
        sim = build_steady_sim(spec)
        sim.warm_up(warmup)
        sim.run(measure // 2)
        snap = Snapshot.from_jsonable(
            json.loads(json.dumps(Snapshot.capture(sim, spec=spec).to_jsonable()))
        )
        fork = snap.fork()
        assert fork.state_digest() == sim.state_digest(), "restore diverged"
        fork.run(measure - measure // 2)
        return fork.metrics.load_point(load, fork.cycle)

    return run


def steady_grid(run=None) -> dict:
    if run is None:
        run = plain_runner()
    out = {}
    for routing in ("min", "val", "ugal", "pb", "par", "ofar", "ofar-l"):
        for pattern in ("UN", "ADV+1"):
            for load in (0.1, 0.35):
                overrides = {"local_vcs": 4} if routing == "par" else {}
                cfg = SimulationConfig.small(h=2, routing=routing, seed=7, **overrides)
                pt = run(cfg, pattern, load, warmup=300, measure=300)
                out[f"{routing}/{pattern}/{load}"] = _point_dict(pt)
    # A larger instance and the embedded-ring / multiring / read-port /
    # congestion-control variants, OFAR only.
    variants = {
        "h3": SimulationConfig.small(h=3, routing="ofar", seed=3),
        "embedded": SimulationConfig.small(h=2, routing="ofar", escape="embedded", seed=5),
        "rings2": SimulationConfig.small(h=2, routing="ofar", escape_rings=2, seed=5),
        "readports2": SimulationConfig.small(
            h=2, routing="ofar", input_read_ports=2, seed=5
        ),
        "congestion": SimulationConfig.small(
            h=2, routing="ofar", congestion_control=True, seed=5
        ),
    }
    for name, cfg in variants.items():
        pt = run(cfg, "ADV+2", 0.3, warmup=300, measure=300)
        out[f"variant/{name}"] = _point_dict(pt)
    return out


def drain_and_counters(telemetry: bool = False, snapshot: bool = False) -> dict:
    out = {}
    cfg = SimulationConfig.small(h=2, routing="ofar", seed=11)
    burst = run_burst(cfg, "ADV+2", packets_per_node=4, backend=BACKEND)
    out["burst"] = {k: repr(v) for k, v in dataclasses.asdict(burst).items()}
    tcfg = None
    if telemetry:
        from repro.telemetry.config import TelemetryConfig

        tcfg = TelemetryConfig(interval=50, per_link=True)
    if snapshot:
        # Snapshot-path transient: warm up once, fork the measurement
        # off the snapshot (run_transient's forked sibling).  The series
        # must match the straight-through run exactly.
        from repro.engine.runner import run_transient_forked

        tr = run_transient_forked(
            SimulationConfig.small(h=2, routing="ofar", seed=13),
            "UN",
            ["ADV+2"],
            0.3,
            warmup=400,
            post=400,
            drain_margin=600,
            bucket=20,
            backend=BACKEND,
        )[0]
    else:
        tr = run_transient(
            SimulationConfig.small(h=2, routing="ofar", seed=13),
            "UN",
            "ADV+2",
            0.3,
            warmup=400,
            post=400,
            drain_margin=600,
            bucket=20,
            telemetry=tcfg,
            backend=BACKEND,
        )
    if telemetry:
        assert tr.telemetry is not None and tr.telemetry.samples
    out["transient"] = [(c, repr(v)) for c, v in tr.series]
    sim = get_backend(BACKEND).simulator(
        SimulationConfig.small(h=2, routing="min", seed=2)
    )
    for i in range(8):
        sim.create_packet(i, 71 - i)
    end = sim.run_until_drained(100_000)
    net = sim.network
    out["drain"] = {
        "end": end,
        "cycle": sim.cycle,
        "movements": net.movements,
        "injected": net.injected_packets,
        "ejected": net.ejected_packets,
    }
    return out


def workload_spec():
    """The multi-job spec every mode fingerprints: three jobs with
    staggered lifetimes (one arrives late, one is a finite burst) spread
    round-robin over the groups of an h=2 machine."""
    from repro.workloads.spec import JobSpec, WorkloadSpec

    workload = WorkloadSpec(
        jobs=(
            JobSpec(name="steady", nodes=24, pattern="UN", load=0.15),
            JobSpec(name="bully", nodes=24, pattern="ADV+2", load=0.3,
                    start=150, stop=450),
            JobSpec(name="burst", nodes=8, traffic="burst",
                    packets_per_node=2),
        ),
        placement="round-robin-groups",
    )
    cfg = SimulationConfig.small(h=2, routing="ofar", seed=17)
    return RunSpec.for_workload(cfg, workload, warmup=300, measure=300,
                                backend=BACKEND)


def _workload_doc(result) -> dict:
    return {
        "total": _point_dict(result.total),
        "jobs": {
            jr.name: {"num_nodes": jr.num_nodes, **_point_dict(jr.point)}
            for jr in result.jobs
        },
        "jain_across_jobs": repr(result.jain_across_jobs),
        "interference": [[repr(x) for x in row] for row in result.interference],
    }


def workload_section(mode: str, workers: int = 2) -> dict:
    """Fingerprint the multi-job spec under ``mode`` ("plain",
    "orchestrated" or "telemetry"); all three must emit the same dict."""
    from repro.workloads.runner import (
        SIDECAR_KIND, WorkloadResult, run_workload, run_workload_cached,
        run_workload_with_telemetry,
    )

    spec = workload_spec()
    if mode == "orchestrated":
        from repro.analysis.store import ResultStore
        from repro.engine.orchestrator import Orchestrator

        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore(tmp)
            orch = Orchestrator(workers=workers, store=store, retries=0)
            total = orch.run_points([spec])[0]
            payload = store.get_sidecar(SIDECAR_KIND, spec)
            assert payload is not None, "worker did not persist the sidecar"
            fresh = WorkloadResult.from_jsonable(payload)
            if _point_dict(total) != _point_dict(fresh.total):
                sys.exit("orchestrated total diverged from the sidecar total")
            resumed = run_workload_cached(spec, store)
            if _workload_doc(fresh) != _workload_doc(resumed):
                sys.exit("cache-hit workload result diverged from fresh run")
            result = resumed
    elif mode == "telemetry":
        from repro.telemetry.config import TelemetryConfig

        result, series = run_workload_with_telemetry(
            spec, TelemetryConfig(interval=50, per_link=True)
        )
        assert series is not None and series.samples, "sampler produced nothing"
        assert any(s.job_flow for s in series.samples), "no per-job flow sampled"
    elif mode == "snapshot":
        # Capture mid-measurement with the phit baseline riding in
        # extras (the one piece of summarization state outside the
        # simulator), JSON round-trip, fork, finish on the fork.
        from repro.snapshot import Snapshot
        from repro.snapshot.checkpoint import _decode_baseline, _encode_baseline
        from repro.workloads.runner import (
            _job_phit_baseline, _summarize, build_workload_sim,
        )

        sim = build_workload_sim(spec)
        sim.warm_up(spec.warmup)
        baseline = _job_phit_baseline(sim.network)
        sim.run(spec.measure // 2)
        snap = Snapshot.from_jsonable(json.loads(json.dumps(
            Snapshot.capture(
                sim, spec=spec, extras={"baseline": _encode_baseline(baseline)}
            ).to_jsonable()
        )))
        fork = snap.fork()
        assert fork.state_digest() == sim.state_digest(), "restore diverged"
        fork.run(spec.measure - spec.measure // 2)
        result = _summarize(fork, _decode_baseline(snap.extras["baseline"]))
    else:
        result = run_workload(spec)
    return _workload_doc(result)


def scenario_spec():
    """The cluster scenario every mode fingerprints: five Poisson jobs
    through EASY backfill over random-nodes placement, two random link
    failures (repaired 300 cycles later) on an h=2 OFAR machine."""
    from repro.cluster.spec import (
        ArrivalSpec, FaultScheduleSpec, JobMix, ScenarioSpec,
    )

    scenario = ScenarioSpec(
        arrivals=ArrivalSpec(kind="poisson", rate=0.01, jobs=5),
        mix=JobMix(sizes=((4, 1.0), (8, 1.0)), durations=((400, 1.0),),
                   loads=((0.25, 1.0),)),
        scheduler="easy",
        placement="random-nodes",
        faults=FaultScheduleSpec(rate=0.004, count=2, repair=300, seed=3),
        horizon=1200,
        seed=9,
        blast_window=150,
    )
    cfg = SimulationConfig.small(h=2, routing="ofar", seed=19)
    return RunSpec.for_scenario(cfg, scenario, backend=BACKEND)


def _scenario_doc(result) -> str:
    """Canonical JSON of the full ScenarioResult (NaN-preserving)."""
    return json.dumps(result.to_jsonable(), sort_keys=True)


def scenario_section(mode: str, workers: int = 2) -> str:
    """Fingerprint the cluster scenario under ``mode``; every mode must
    emit the identical string (scheduling, per-job points, blast table
    and all)."""
    from repro.cluster.runner import (
        SIDECAR_KIND, ScenarioResult, run_scenario, run_scenario_cached,
        run_scenario_with_telemetry,
    )

    spec = scenario_spec()
    if mode == "orchestrated":
        from repro.analysis.store import ResultStore
        from repro.engine.orchestrator import Orchestrator

        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore(tmp)
            orch = Orchestrator(workers=workers, store=store, retries=0)
            total = orch.run_points([spec])[0]
            payload = store.get_sidecar(SIDECAR_KIND, spec)
            assert payload is not None, "worker did not persist the sidecar"
            fresh = ScenarioResult.from_jsonable(payload)
            if _point_dict(total) != _point_dict(fresh.total):
                sys.exit("orchestrated scenario total diverged from the sidecar")
            resumed = run_scenario_cached(spec, store)
            if _scenario_doc(fresh) != _scenario_doc(resumed):
                sys.exit("cache-hit scenario result diverged from fresh run")
            result = resumed
    elif mode == "telemetry":
        from repro.telemetry.config import TelemetryConfig

        result, series = run_scenario_with_telemetry(
            spec, TelemetryConfig(interval=50, per_link=True)
        )
        assert series is not None and series.samples, "sampler produced nothing"
        assert any(s.job_flow for s in series.samples), "no per-job flow sampled"
    elif mode == "snapshot":
        # The checkpoint path: run the scenario through periodic
        # mid-run snapshots (saved + reloaded from disk), then read the
        # result back from the persisted sidecar.
        from repro.analysis.store import ResultStore
        from repro.snapshot.checkpoint import run_spec_checkpointed

        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore(tmp)
            total = run_spec_checkpointed(spec, store.root, snapshot_every=150)
            payload = store.get_sidecar(SIDECAR_KIND, spec)
            assert payload is not None, "checkpointed run did not persist the sidecar"
            result = ScenarioResult.from_jsonable(payload)
            if _point_dict(total) != _point_dict(result.total):
                sys.exit("checkpointed scenario total diverged from the sidecar")
    else:
        result = run_scenario(spec)
    return _scenario_doc(result)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="emit the engine behavior fingerprint as JSON"
    )
    parser.add_argument(
        "--orchestrated", action="store_true",
        help="run the steady grid through a store-backed orchestrator, "
             "twice (fresh + resumed from cache), asserting both passes "
             "agree; the output must diff clean against a plain run",
    )
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes in --orchestrated mode")
    parser.add_argument(
        "--telemetry", action="store_true",
        help="attach a telemetry sampler (interval 50, per-link) to every "
             "steady point and the transient; the output must diff clean "
             "against a plain run (observation never perturbs)",
    )
    parser.add_argument(
        "--snapshot", action="store_true",
        help="route every steady point, the transient, and the workload "
             "through a mid-run snapshot: capture, JSON round-trip, fork a "
             "fresh simulator, finish on the fork; the output must diff "
             "clean against a plain run (save/restore is bit-identical)",
    )
    parser.add_argument(
        "--scenario", action="store_true",
        help="emit only the cluster-scenario section (job churn, EASY "
             "backfill and link faults through the selected mode); the "
             "output must diff clean across plain, --orchestrated, "
             "--telemetry and --snapshot runs",
    )
    parser.add_argument(
        "--backend", choices=available_backends(), default="object",
        help="engine backend executing every run; backends are bit-for-bit "
             "identical, so any choice must emit the same fingerprint",
    )
    args = parser.parse_args(argv)
    global BACKEND
    BACKEND = args.backend
    if sum((args.orchestrated, args.telemetry, args.snapshot)) > 1:
        sys.exit("--orchestrated, --telemetry and --snapshot are separate "
                 "checks; pick one")

    if args.scenario:
        mode = ("orchestrated" if args.orchestrated else
                "telemetry" if args.telemetry else
                "snapshot" if args.snapshot else "plain")
        doc = {"scenario": scenario_section(mode, args.workers)}
        json.dump(doc, sys.stdout, indent=1, sort_keys=True)
        sys.stdout.write("\n")
        return

    if args.orchestrated:
        from repro.analysis.store import ResultStore

        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore(tmp)
            fresh = steady_grid(run=orchestrated_runner(store, args.workers))
            resumed = steady_grid(run=orchestrated_runner(store, args.workers))
            if fresh != resumed:
                sys.exit("resumed sweep diverged from the fresh orchestrated sweep")
            steady = resumed
        mode = "orchestrated"
    elif args.telemetry:
        steady = steady_grid(run=telemetry_runner())
        mode = "telemetry"
    elif args.snapshot:
        steady = steady_grid(run=snapshot_runner())
        mode = "snapshot"
    else:
        steady = steady_grid()
        mode = "plain"

    doc = {
        "steady": steady,
        "drain": drain_and_counters(telemetry=args.telemetry,
                                    snapshot=args.snapshot),
        "workload": workload_section(mode, args.workers),
        "scenario": scenario_section(mode, args.workers),
    }
    json.dump(doc, sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
