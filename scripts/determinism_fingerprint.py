#!/usr/bin/env python
"""Fingerprint the engine's observable behavior for regression checks.

Runs a grid of small simulations spanning every routing mechanism,
escape mode and a few edge configurations, and emits a JSON document of
exact (unrounded) LoadPoint fields plus network counters.  Two engine
versions are behaviorally identical iff their fingerprints are equal —
use this before/after any engine refactor that claims to be
bit-for-bit behavior-preserving::

    PYTHONPATH=src python scripts/determinism_fingerprint.py > before.json
    # ... apply the refactor ...
    PYTHONPATH=src python scripts/determinism_fingerprint.py > after.json
    diff before.json after.json
"""

from __future__ import annotations

import dataclasses
import json
import sys

from repro.engine.config import SimulationConfig
from repro.engine.runner import run_burst, run_steady_state, run_transient
from repro.engine.simulator import Simulator


def _point_dict(pt) -> dict:
    return {k: repr(v) for k, v in dataclasses.asdict(pt).items()}


def steady_grid() -> dict:
    out = {}
    for routing in ("min", "val", "ugal", "pb", "par", "ofar", "ofar-l"):
        for pattern in ("UN", "ADV+1"):
            for load in (0.1, 0.35):
                overrides = {"local_vcs": 4} if routing == "par" else {}
                cfg = SimulationConfig.small(h=2, routing=routing, seed=7, **overrides)
                pt = run_steady_state(cfg, pattern, load, warmup=300, measure=300)
                out[f"{routing}/{pattern}/{load}"] = _point_dict(pt)
    # A larger instance and the embedded-ring / multiring / read-port /
    # congestion-control variants, OFAR only.
    variants = {
        "h3": SimulationConfig.small(h=3, routing="ofar", seed=3),
        "embedded": SimulationConfig.small(h=2, routing="ofar", escape="embedded", seed=5),
        "rings2": SimulationConfig.small(h=2, routing="ofar", escape_rings=2, seed=5),
        "readports2": SimulationConfig.small(
            h=2, routing="ofar", input_read_ports=2, seed=5
        ),
        "congestion": SimulationConfig.small(
            h=2, routing="ofar", congestion_control=True, seed=5
        ),
    }
    for name, cfg in variants.items():
        pt = run_steady_state(cfg, "ADV+2", 0.3, warmup=300, measure=300)
        out[f"variant/{name}"] = _point_dict(pt)
    return out


def drain_and_counters() -> dict:
    out = {}
    cfg = SimulationConfig.small(h=2, routing="ofar", seed=11)
    burst = run_burst(cfg, "ADV+2", packets_per_node=4)
    out["burst"] = {k: repr(v) for k, v in dataclasses.asdict(burst).items()}
    tr = run_transient(
        SimulationConfig.small(h=2, routing="ofar", seed=13),
        "UN",
        "ADV+2",
        0.3,
        warmup=400,
        post=400,
        drain_margin=600,
        bucket=20,
    )
    out["transient"] = [(c, repr(v)) for c, v in tr.series]
    sim = Simulator(SimulationConfig.small(h=2, routing="min", seed=2))
    for i in range(8):
        sim.create_packet(i, 71 - i)
    end = sim.run_until_drained(100_000)
    net = sim.network
    out["drain"] = {
        "end": end,
        "cycle": sim.cycle,
        "movements": net.movements,
        "injected": net.injected_packets,
        "ejected": net.ejected_packets,
    }
    return out


def main() -> None:
    doc = {"steady": steady_grid(), "drain": drain_and_counters()}
    json.dump(doc, sys.stdout, indent=1, sort_keys=True)
    sys.stdout.write("\n")


if __name__ == "__main__":
    main()
