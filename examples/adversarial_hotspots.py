#!/usr/bin/env python
"""The §III motivation: local links, not global ones, can be the bottleneck.

Scenario: an HPC application with near-neighbour communication mapped
sequentially onto a dragonfly.  Three workloads of increasing nastiness:

1. ADV+1 — adversarial for *global* links only; Valiant fixes it.
2. ADV+h — all misrouted traffic funnels through single *local* links
   in the intermediate groups; Valiant collapses to ~1/h.
3. ADV-LOCAL — all h nodes of each router target the next router of
   the group; minimal routing collapses to 1/h without any global
   traffic at all.

For each workload we compare MIN, VAL, PB and OFAR at a load above the
1/h bound, next to the closed-form limits of repro.analysis.
"""

from repro import RunSpec, SimulationConfig, run_spec
from repro.analysis.bounds import (
    local_link_advh_bound,
    min_adversarial_bound,
    valiant_bound,
)
from repro.analysis.offsets import valiant_offset_bound
from repro.topology.dragonfly import Dragonfly

H = 2
LOAD = 0.45
ROUTINGS = ("min", "val", "pb", "ofar")


def main() -> None:
    topo = Dragonfly(H)
    print(f"dragonfly h={H}: {topo.num_nodes} nodes, load {LOAD} phits/(node*cycle)")
    print(f"analytic limits: MIN@ADV={min_adversarial_bound(H):.3f}  "
          f"VAL={valiant_bound():.2f}  local-link@ADV+h={local_link_advh_bound(H):.3f}")
    print()
    header = f"{'workload':10s}" + "".join(f"{r:>9s}" for r in ROUTINGS) + f"{'val-bound':>11s}"
    print(header)
    for pattern in ("ADV+1", f"ADV+{H}", "ADV-LOCAL"):
        row = f"{pattern:10s}"
        for routing in ROUTINGS:
            cfg = SimulationConfig.small(h=H, routing=routing)
            pt = run_spec(RunSpec(cfg, pattern, LOAD, warmup=800, measure=800))
            row += f"{pt.throughput:9.3f}"
        if pattern.startswith("ADV+"):
            bound = valiant_offset_bound(topo, int(pattern[4:]))
            row += f"{bound:11.3f}"
        else:
            row += f"{'-':>11s}"
        print(row)
    print()
    print("reading: VAL fixes ADV+1 but not ADV+h (the local-link funnel);")
    print("OFAR's in-transit local misrouting is the only mechanism that")
    print("stays above the 1/h law on every row.")


if __name__ == "__main__":
    main()
