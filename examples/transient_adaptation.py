#!/usr/bin/env python
"""Transient adaptation (Fig. 6 scenario): how fast does routing react?

An application switches from an all-to-all phase (uniform traffic) to a
neighbour exchange (adversarial) mid-run.  We track the average latency
of the packets *sent* in each cycle around the switch, for PB and OFAR,
and render the two timelines as ASCII strips.
"""

from repro import SimulationConfig, run_transient

H = 2
LOAD = 0.14
WARMUP = 1200
POST = 1600
BARS = " .:-=+*#%@"


def strip(series, lo, hi, width=72):
    """Render (cycle, latency) points as one ASCII intensity strip."""
    if not series:
        return "(no data)"
    step = max(1, len(series) // width)
    cells = []
    for i in range(0, len(series), step):
        _, lat = series[i]
        frac = min(1.0, max(0.0, (lat - lo) / (hi - lo + 1e-9)))
        cells.append(BARS[int(frac * (len(BARS) - 1))])
    return "".join(cells)


def main() -> None:
    print(f"transient UN -> ADV+{H} at load {LOAD}; switch at cycle {WARMUP}")
    print()
    results = {}
    for routing in ("pb", "ofar"):
        cfg = SimulationConfig.small(h=H, routing=routing)
        results[routing] = run_transient(
            cfg, "UN", f"ADV+{H}", LOAD, warmup=WARMUP, post=POST, bucket=20
        )
    all_lat = [lat for r in results.values() for _, lat in r.series]
    lo, hi = min(all_lat), max(all_lat)
    print(f"latency scale: '{BARS[0]}'={lo:.0f} cycles ... '{BARS[-1]}'={hi:.0f} cycles")
    print(f"(the switch happens at the midpoint of each strip)")
    print()
    for routing, res in results.items():
        print(f"{routing:7s} |{strip(res.series, lo, hi)}|")
        pre = res.average_latency(WARMUP - 400, WARMUP)
        post = res.average_latency(WARMUP, WARMUP + 400)
        tail = res.average_latency(WARMUP + POST - 400, WARMUP + POST)
        print(f"        pre-switch {pre:6.1f}   just after {post:6.1f}   "
              f"settled {tail:6.1f}")
    print()
    print("OFAR re-routes in transit, so the post-switch spike is absorbed")
    print("within the switch bucket; PB must wait for its broadcast flags")
    print("and only adapts packets at injection time.")


if __name__ == "__main__":
    main()
