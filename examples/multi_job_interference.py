#!/usr/bin/env python
"""Multi-job interference: an adversarial bully next to a shift victim.

Two applications share one h=2 dragonfly, spread across every group by
the round-robin-groups placement:

- "bully"  — ADV+2 at high load, saturating each group's offset-2
  global link (the paper's worst case);
- "victim" — a modest SHIFT exchange whose minimal routes need exactly
  those links.

Under MIN the victim has nowhere to go and its latency explodes; OFAR
misroutes around the hot links and the victim barely notices.  The
workloads subsystem attributes every number per job, so the comparison
is three calls: run the shared workload, run each job alone on the same
nodes, divide.

Runs in well under a minute on a laptop; ``--tiny`` shrinks the
windows for smoke runs (CI) where the numbers only need to exist, not
to be publication-stable.
"""

import sys

from repro import SimulationConfig
from repro.engine.runspec import RunSpec
from repro.workloads import (
    JobSpec,
    WorkloadSpec,
    isolated_spec,
    job_slowdowns,
    run_workload,
)


def main(tiny: bool = False) -> None:
    warmup, measure = (200, 300) if tiny else (800, 1_200)
    workload = WorkloadSpec(
        jobs=(
            # 36 nodes each: half the h=2 machine per job, one node of
            # each router thanks to the round-robin deal.
            JobSpec(name="bully", nodes=36, pattern="ADV+2", load=0.7),
            # Rank shift 8 = 2 groups under this placement = the bully's
            # saturated global offset.
            JobSpec(name="victim", nodes=36, pattern="SHIFT+8", load=0.2),
        ),
        placement="round-robin-groups",
    )

    print("per-job points (shared machine):")
    print(f"{'routing':8s} {'job':8s} {'thr':>7s} {'latency':>9s} {'slowdown':>9s}")
    for routing in ("min", "ofar"):
        cfg = SimulationConfig.small(h=2, routing=routing, seed=7)
        spec = RunSpec.for_workload(cfg, workload, warmup=warmup, measure=measure)
        shared = run_workload(spec)
        isolated = {
            job.name: run_workload(isolated_spec(spec, job.name))
            for job in workload.jobs
        }
        slowdowns = job_slowdowns(shared, isolated)
        for jr in shared.jobs:
            print(f"{routing:8s} {jr.name:8s} {jr.point.throughput:7.4f} "
                  f"{jr.point.avg_latency:9.1f} {slowdowns[jr.name]:8.2f}x")
        print(f"{'':8s} fairness across jobs (Jain): "
              f"{shared.jain_across_jobs:.3f}")
    print()
    print("MIN lets the bully starve the victim's shared links; OFAR")
    print("spreads both jobs and the victim's slowdown collapses.")


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv[1:])
