#!/usr/bin/env python
"""Follow individual packets hop by hop with the tracer.

Three journeys, printed as `group:hop-kind` chains:

1. a MIN packet on the canonical `l - g - l` minimal path;
2. an OFAR packet whose minimal global link is saturated — watch the
   in-transit global misroute pick an intermediate group on the fly;
3. an OFAR packet that finds everything blocked and rides the escape
   ring for a while.
"""

import random

from repro import SimulationConfig, Simulator
from repro.engine.tracing import Tracer, describe_route
from repro.topology.dragonfly import PortKind

H = 2


def minimal_journey() -> None:
    sim = Simulator(SimulationConfig.small(h=H, routing="min"))
    pkt = sim.create_packet(0, sim.network.topo.num_nodes - 1)
    with Tracer(sim.network, pids={pkt.pid}) as tracer:
        sim.run_until_drained(50_000)
    trace = tracer.trace(pkt.pid)
    print("1. MIN, empty network:")
    print(f"   {describe_route(sim.network, trace)}")
    print(f"   {pkt.hops} hops, latency {pkt.latency} cycles")
    print()


def misrouted_journey() -> None:
    sim = Simulator(SimulationConfig.small(h=H, routing="ofar"))
    net = sim.network
    topo = net.topo
    dst = topo.num_nodes - 1
    # Saturate the minimal route's global link before injecting.
    owner_r, k = topo.group_route(0, topo.node_group(dst))
    ch = net.routers[topo.router_id(0, owner_r)].out[topo.global_port(k)]
    for vc in ch.data_vcs:
        ch.credits[vc] = 0
    pkt = sim.create_packet(0, dst)
    with Tracer(net, pids={pkt.pid}) as tracer:
        # Run a handful of cycles, then release the link so the network
        # drains (the misroute decision happens immediately).
        sim.run(60)
        for vc in ch.data_vcs:
            ch.credits[vc] = ch.capacity
        sim.run_until_drained(50_000)
    trace = tracer.trace(pkt.pid)
    print("2. OFAR, minimal global link saturated at injection:")
    print(f"   {describe_route(net, trace)}")
    print(f"   misroutes: {trace.misroutes()} "
          f"(global={pkt.misroutes_global}, local={pkt.misroutes_local})")
    print()


def ring_journey() -> None:
    cfg = SimulationConfig.small(
        h=H, routing="ofar", escape="physical", escape_patience=0,
        local_vcs=1, global_vcs=1, injection_vcs=1,
        local_buffer=16, global_buffer=16, injection_buffer=16,
    )
    sim = Simulator(cfg)
    net = sim.network
    topo = net.topo
    rng = random.Random(0)
    # Saturate the network with an adversarial burst, then trace one
    # straggler injected into the thick of it.
    npg = topo.p * topo.a
    for node in range(topo.num_nodes):
        g = node // npg
        for _ in range(4):
            sim.create_packet(
                node, ((g + H) % topo.num_groups) * npg + rng.randrange(npg)
            )
    with Tracer(net) as tracer:  # trace everything, then pick a ring rider
        sim.run_until_drained(2_000_000)
    print("3. OFAR under heavy congestion (starved buffers):")
    ringed = [t for t in tracer.traces.values() if t.used_ring()]
    print(f"   {len(ringed)} of {sim.created_packets} packets escaped via "
          f"the ring; one of their journeys:")
    trace = max(ringed, key=lambda t: len(t.hops))
    print(f"   {describe_route(net, trace)}")


def main() -> None:
    minimal_journey()
    misrouted_journey()
    ring_journey()


if __name__ == "__main__":
    main()
