#!/usr/bin/env python
"""Anatomy of the escape subnetwork (§IV-C and §VII).

Three short experiments on the Hamiltonian escape ring:

1. its construction — the cycle embeds on real dragonfly links (local
   descents inside each group, one offset-1 global hop per group);
2. physical vs embedded implementation — equivalent performance, per
   Fig. 8, because the ring only breaks deadlocks;
3. a starved configuration (Fig. 9 style) — with 1 VC everywhere the
   canonical network clogs and the ring visibly takes over, yet every
   packet is still delivered: deadlock freedom without VC ordering.
"""

from repro import Dragonfly, HamiltonianRing, RunSpec, SimulationConfig, Simulator, run_spec
from repro.analysis.bounds import (
    max_edge_disjoint_rings,
    ring_added_global_fraction,
    ring_added_link_fraction,
)
from repro.topology.dragonfly import PortKind

H = 2


def show_construction() -> None:
    topo = Dragonfly(H)
    ring = HamiltonianRing(topo)
    ring.validate()
    kinds = [ring.successor_port_kind(r) for r in ring.order]
    print(f"1. Hamiltonian ring over {len(ring)} routers:")
    print(f"   local hops: {kinds.count(PortKind.LOCAL)}, "
          f"global hops: {kinds.count(PortKind.GLOBAL)} "
          f"(= {topo.num_groups} groups, one crossing each)")
    print(f"   first 12 routers on the cycle: {ring.order[:12]}")
    print(f"   cost of a *physical* ring at h=16: "
          f"{100 * ring_added_link_fraction(16):.1f}% more wires, "
          f"{100 * ring_added_global_fraction(16):.2f}% more long wires")
    print(f"   up to {max_edge_disjoint_rings(16)} edge-disjoint rings "
          f"could be embedded at h=16 (fault tolerance, §VII)")
    print()


def show_equivalence() -> None:
    print("2. physical vs embedded ring under ADV+2, load 0.4:")
    for escape in ("physical", "embedded"):
        cfg = SimulationConfig.small(h=H, routing="ofar", escape=escape)
        pt = run_spec(RunSpec(cfg, "ADV+2", 0.4, warmup=800, measure=800))
        print(f"   {escape:9s} thr={pt.throughput:.3f} lat={pt.avg_latency:6.1f} "
              f"ring usage={100 * pt.ring_fraction:.2f}% of packets")
    print()


def show_starved() -> None:
    print("3. starved resources (1 VC everywhere, 16-phit buffers):")
    cfg = SimulationConfig.small(
        h=H, routing="ofar", escape="embedded",
        local_vcs=1, global_vcs=1, injection_vcs=1,
        local_buffer=16, global_buffer=16, injection_buffer=16,
    )
    sim = Simulator(cfg)
    rng = __import__("random").Random(1)
    topo = sim.network.topo
    npg = topo.p * topo.a
    for node in range(topo.num_nodes):
        g = node // npg
        for _ in range(6):
            dst = ((g + H) % topo.num_groups) * npg + rng.randrange(npg)
            sim.create_packet(node, dst)
    done = sim.run_until_drained(2_000_000)
    net = sim.network
    print(f"   burst of {sim.created_packets} ADV+{H} packets drained by "
          f"cycle {done} — zero deadlocks")
    print(f"   ring entries: {net.ring_entries} "
          f"({100 * net.ring_entries / sim.created_packets:.1f}% of packets "
          f"needed the escape path)")
    print(f"   local misroutes: {net.local_misroutes}, "
          f"global misroutes: {net.global_misroutes}")


def main() -> None:
    show_construction()
    show_equivalence()
    show_starved()


if __name__ == "__main__":
    main()
