#!/usr/bin/env python
"""Warm-state forking: pay for one warm-up, measure many variants.

A Fig. 6-style study often sweeps the *after*-pattern of a transient —
"the network is humming under uniform traffic; which incoming phase
hurts the most?"  Everything before the switch cycle is identical
across variants, so the snapshot subsystem (repro.snapshot) lets us
warm up once, freeze the state, and fork one independent simulator per
variant.  Each forked measurement is bit-identical to a run that paid
for its own warm-up; this script checks that claim live by re-running
one variant the slow way and comparing the series exactly.
"""

import time

from repro import SimulationConfig, run_transient, run_transient_forked

H = 2
ROUTING = "pb"
LOAD = 0.14
WARMUP = 1200
POST = 800
DRAIN = 1000
AFTERS = ["ADV+1", "ADV+2", "MIX1"]


def main() -> None:
    cfg = SimulationConfig.small(h=H, routing=ROUTING, seed=1)
    print(f"{ROUTING} at load {LOAD}: warm up under UN for {WARMUP} cycles,")
    print(f"then fork {len(AFTERS)} after-patterns off the snapshot\n")

    start = time.perf_counter()
    forked = run_transient_forked(
        cfg, "UN", AFTERS, LOAD,
        warmup=WARMUP, post=POST, drain_margin=DRAIN, bucket=20,
    )
    forked_secs = time.perf_counter() - start

    print(f"{'after':>7s}  {'spike':>7s}  {'settled':>7s}")
    for after, res in zip(AFTERS, forked):
        spike = max(lat for cyc, lat in res.series if cyc >= WARMUP)
        tail = res.average_latency(WARMUP + POST - 300, WARMUP + POST)
        print(f"{after:>7s}  {spike:7.1f}  {tail:7.1f}")

    # The honesty check: one variant, individually warmed, must match
    # its forked sibling sample for sample.
    start = time.perf_counter()
    solo = run_transient(
        cfg, "UN", AFTERS[0], LOAD,
        warmup=WARMUP, post=POST, drain_margin=DRAIN, bucket=20,
    )
    solo_secs = time.perf_counter() - start
    assert solo.series == forked[0].series, "fork diverged from a fresh warm-up"

    shared = WARMUP + len(AFTERS) * (POST + DRAIN)
    individual = len(AFTERS) * (WARMUP + POST + DRAIN)
    print(f"\nforked sweep: {forked_secs:.2f}s for {len(AFTERS)} variants "
          f"({shared} simulated cycles)")
    print(f"one individually-warmed run: {solo_secs:.2f}s "
          f"(x{len(AFTERS)} = {individual} simulated cycles the slow way)")
    print("bit-identity check passed: forked series == fresh-warm-up series")


if __name__ == "__main__":
    main()
