#!/usr/bin/env python
"""Cluster churn: one scheduled cluster history, two routings.

A small h=2 dragonfly lives through a busy stretch: jobs arrive by a
seeded Poisson process, draw their size/duration/pattern from a
weighted mix, queue under EASY backfill over random-nodes placement,
and two links fail mid-run (each repaired later).  The schedule is
compiled *before* the network runs, so MIN and OFAR replay the exact
same cluster history — same arrivals, same placements, same faults at
the same cycles hitting the same jobs — and every difference in the
output is the routing algorithm.

Two things to watch:

- the scheduling columns (wait, slowdown, fairness) are identical
  across routings by construction;
- the blast-radius table prices each link failure per routing: mean
  packet latency of the concurrent jobs in the window before vs after.
  MIN pays a multiple; OFAR routes around the failure.

Runs in a few seconds; ``--tiny`` shrinks the horizon for smoke runs
(CI) where the numbers only need to exist, not to be stable.
"""

import math
import sys

from repro import SimulationConfig
from repro.cluster import (
    ArrivalSpec,
    FaultScheduleSpec,
    JobMix,
    ScenarioSpec,
    compile_scenario,
    run_scenario,
)
from repro.engine.runspec import RunSpec
from repro.topology.dragonfly import Dragonfly


def main(tiny: bool = False) -> None:
    horizon = 1_500 if tiny else 5_000
    scenario = ScenarioSpec(
        arrivals=ArrivalSpec(kind="poisson", rate=0.01, jobs=4 if tiny else 10),
        mix=JobMix(
            sizes=((4, 2.0), (8, 1.0), (16, 1.0)),
            durations=((800, 2.0), (1_600, 1.0)),
            patterns=(("UN", 3.0), ("ADV+2", 1.0)),
            loads=((0.3, 1.0),),
        ),
        scheduler="easy",
        placement="random-nodes",
        faults=FaultScheduleSpec(rate=0.002, count=3, repair=600, seed=5),
        horizon=horizon,
        seed=11,
        blast_window=300,
    )

    # The schedule is a pure function of (scenario, topology): no
    # network involved, identical for every routing below.
    compiled = compile_scenario(scenario, Dragonfly(2))
    print("compiled schedule (routing-independent):")
    print(f"{'job':8s} {'size':>4s} {'arrive':>7s} {'start':>7s} "
          f"{'finish':>7s} {'wait':>5s}")
    for j in compiled.jobs:
        start = "-" if j.start is None else str(j.start)
        finish = "-" if j.finish is None else str(j.finish)
        wait = "-" if j.wait is None else str(j.wait)
        print(f"{j.name:8s} {j.size:4d} {j.arrival:7d} {start:>7s} "
              f"{finish:>7s} {wait:>5s}")
    print(f"makespan {compiled.makespan}, "
          f"mean utilization {compiled.mean_utilization:.3f}")

    for routing in ("min", "ofar"):
        cfg = SimulationConfig.small(h=2, routing=routing, seed=1)
        result = run_scenario(RunSpec.for_scenario(cfg, scenario))
        print()
        print(f"{routing}: avg latency {result.total.avg_latency:.1f}, "
              f"throughput {result.total.throughput:.4f}, "
              f"fairness {result.fairness:.3f}")
        if result.blast:
            print(f"  {'fault@':>7s} {'job':8s} {'before':>8s} "
                  f"{'after':>8s} {'ratio':>7s}")
            for row in result.blast:
                ratio = "-" if math.isnan(row.ratio) else f"{row.ratio:6.2f}x"
                print(f"  {row.cycle:7d} {row.job:8s} {row.before:8.1f} "
                      f"{row.after:8.1f} {ratio:>7s}")

    print()
    print("Same schedule, same faults: MIN's latency multiplies when a")
    print("loaded link dies; OFAR spreads around the failure.")


if __name__ == "__main__":
    main(tiny="--tiny" in sys.argv[1:])
