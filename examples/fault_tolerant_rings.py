#!/usr/bin/env python
"""Fault tolerance with multiple escape rings (§VII "ongoing work").

A single Hamiltonian escape ring is a single point of failure: lose one
of its links and OFAR loses its deadlock-freedom guarantee.  §VII
proposes embedding up to h edge-disjoint Hamiltonian rings so the
system survives while any one ring is intact.  This example:

1. builds the h edge-disjoint rings (Walecki zigzag decomposition of
   each group's complete local graph + one coprime group offset per
   ring) and verifies they share no link;
2. runs an adversarial burst with two embedded rings while ring 0 is
   *disabled* (our fault model: a faulted ring stops accepting
   escapees) — everything still drains;
3. compares steady-state performance with 1 vs 2 rings: the extra ring
   costs nothing measurable, exactly like Fig. 8's physical/embedded
   equivalence, because escape capacity is not the bottleneck.
"""

import random

from repro import RunSpec, SimulationConfig, Simulator, run_spec
from repro.topology.dragonfly import Dragonfly
from repro.topology.multiring import MultiRing

H = 2


def show_rings() -> None:
    topo = Dragonfly(H)
    rings = MultiRing(topo, H)
    rings.validate()
    print(f"1. {len(rings)} edge-disjoint Hamiltonian rings on {topo}:")
    for spec in rings.rings:
        print(f"   ring {spec.ring_id}: group offset {spec.offset}, "
              f"first routers {spec.order[:8]} ...")
    print("   validate(): no shared links, every ring covers every router")
    print()


def survive_fault() -> None:
    cfg = SimulationConfig.small(
        h=H, routing="ofar", escape="embedded", escape_rings=2,
        escape_patience=0,
        # Starve the canonical network so the escape path really works.
        local_vcs=1, global_vcs=1, injection_vcs=1,
        local_buffer=16, global_buffer=16, injection_buffer=16,
    )
    sim = Simulator(cfg)
    sim.network.disable_ring(0)  # the fault
    topo = sim.network.topo
    rng = random.Random(3)
    npg = topo.p * topo.a
    for node in range(topo.num_nodes):
        g = node // npg
        for _ in range(6):
            sim.create_packet(
                node, ((g + H) % topo.num_groups) * npg + rng.randrange(npg)
            )
    done = sim.run_until_drained(2_000_000)
    net = sim.network
    print(f"2. ring 0 disabled, ADV+{H} burst of {sim.created_packets} packets:")
    print(f"   all delivered by cycle {done}; escapes taken: {net.ring_entries} "
          f"(all onto ring 1) — deadlock freedom survives the fault")
    print()


def compare_ring_counts() -> None:
    print("3. steady state ADV+2 at load 0.4, embedded rings:")
    for rings in (1, 2):
        cfg = SimulationConfig.small(h=H, routing="ofar", escape="embedded",
                                     escape_rings=rings)
        pt = run_spec(RunSpec(cfg, "ADV+2", 0.4, warmup=800, measure=800))
        print(f"   {rings} ring(s): thr={pt.throughput:.3f} "
              f"lat={pt.avg_latency:6.1f} ring usage={100 * pt.ring_fraction:.2f}%")
    print("   (the second ring is pure insurance — §VII's point)")


def main() -> None:
    show_rings()
    survive_fault()
    compare_ring_counts()


if __name__ == "__main__":
    main()
