#!/usr/bin/env python
"""Quickstart: build a dragonfly, run OFAR, read the numbers.

Runs in a few seconds on a laptop.  Shows the three core objects most
users need: SimulationConfig, RunSpec/run_spec, and LoadPoint.
"""

from repro import Dragonfly, RunSpec, SimulationConfig, run_spec
from repro.analysis.bounds import local_link_advh_bound, valiant_bound

def main() -> None:
    # A scaled-down dragonfly: h=2 -> 9 groups, 36 routers, 72 nodes.
    # SimulationConfig.paper() gives the full h=6 network of the paper.
    cfg = SimulationConfig.small(h=2, routing="ofar")
    topo = Dragonfly(cfg.h)
    print(f"network: {topo}")
    print(f"routing: {cfg.routing} with escape={cfg.escape}")
    print()

    print(f"{'pattern':10s} {'load':>5s} {'thr':>6s} {'latency':>8s} "
          f"{'hops':>5s} {'ring%':>6s}")
    for pattern in ("UN", "ADV+2"):
        for load in (0.1, 0.3, 0.5):
            pt = run_spec(RunSpec(cfg, pattern, load, warmup=800, measure=800))
            print(f"{pattern:10s} {load:5.2f} {pt.throughput:6.3f} "
                  f"{pt.avg_latency:8.1f} {pt.avg_hops:5.2f} "
                  f"{100 * pt.ring_fraction:5.2f}%")
    print()
    print("reference bounds:")
    print(f"  Valiant global-link limit : {valiant_bound():.3f} phits/(node*cycle)")
    print(f"  ADV+h local-link limit    : {local_link_advh_bound(cfg.h):.3f} "
          f"(what OFAR's local misrouting overcomes)")


if __name__ == "__main__":
    main()
