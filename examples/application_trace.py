#!/usr/bin/env python
"""Trace-driven evaluation: replay one application trace under several
routings.

The workflow the paper's motivation (Bhatele et al.) uses: capture an
application's communication trace once, then replay the *identical*
packet sequence under each candidate routing.  Here the "application"
is synthesized — a BSP code alternating 2-D stencil halo exchanges with
all-to-all-ish collective phases — but the machinery (record → CSV →
replay) is exactly what a real trace would use.
"""

import random

from repro import SimulationConfig, Simulator
from repro.topology.dragonfly import Dragonfly
from repro.traffic.applications import StencilPattern
from repro.traffic.patterns import UniformPattern
from repro.traffic.trace import TraceTraffic, synthesize_phases

H = 2
ROUTINGS = ("min", "pb", "ofar")


def build_trace(topo: Dragonfly) -> list:
    rng = random.Random(7)
    stencil = StencilPattern(topo, rng, mapping="sequential")
    collective = UniformPattern(topo, rng)
    # Three BSP supersteps: heavy halo exchange, then a collective.
    phases = []
    for _ in range(3):
        phases.append((stencil, 0.7, 400))
        phases.append((collective, 0.3, 200))
    return synthesize_phases(phases, packet_size=8, num_nodes=topo.num_nodes, seed=13)


def replay(events, routing: str) -> tuple[int, float]:
    cfg = SimulationConfig.small(h=H, routing=routing)
    sim = Simulator(cfg)
    sim.generator = TraceTraffic(events)
    completion = sim.run_until_drained(5_000_000)
    n = max(1, sim.metrics.ejected_packets)
    return completion, sim.metrics.latency_sum / n


def main() -> None:
    topo = Dragonfly(H)
    events = build_trace(topo)
    span = events[-1].cycle + 1
    print(f"synthetic application trace: {len(events)} packets over "
          f"{span} cycles on {topo}")
    print(f"(3 supersteps: stencil halo exchange at load 0.5, then a "
          f"uniform collective at 0.25)")
    print()
    print(f"{'routing':8s} {'completion':>11s} {'overrun':>8s} {'avg latency':>12s}")
    for routing in ROUTINGS:
        completion, latency = replay(events, routing)
        overrun = completion / span
        print(f"{routing:8s} {completion:>11d} {overrun:>7.2f}x {latency:>12.1f}")
    print()
    print("'overrun' is completion time over the trace's own span: 1.0x")
    print("means the network kept pace with the application; MIN falls")
    print("behind on the sequentially-mapped stencil phases (§III), the")
    print("adaptive mechanisms keep up.")


if __name__ == "__main__":
    main()
