#!/usr/bin/env python
"""Post-barrier traffic bursts (Fig. 7 scenario).

In bulk-synchronous HPC applications, computation and communication
alternate: after each barrier, every node dumps a backlog of packets at
once.  The metric that matters is how long the network takes to consume
the whole burst.  We replay the paper's protocol with a mixture of
uniform and adversarial destinations and compare VAL, PB, OFAR and
OFAR-L, normalized to PB (lower is better).
"""

from repro import SimulationConfig, run_burst

H = 2
PACKETS_PER_NODE = 16
ROUTINGS = ("val", "pb", "ofar", "ofar-l")
PATTERNS = ("UN", f"ADV+{H}", "MIX1", "MIX3")


def main() -> None:
    print(f"burst: {PACKETS_PER_NODE} packets/node on an h={H} dragonfly")
    print(f"MIX1 = 80% UN / 10% ADV+1 / 10% ADV+h;  MIX3 = 20/40/40")
    print()
    print(f"{'pattern':9s}" + "".join(f"{r:>10s}" for r in ROUTINGS)
          + f"{'pb cycles':>12s}")
    means = {r: [] for r in ROUTINGS}
    for pattern in PATTERNS:
        cycles = {}
        for routing in ROUTINGS:
            cfg = SimulationConfig.small(h=H, routing=routing)
            cycles[routing] = run_burst(cfg, pattern, PACKETS_PER_NODE).completion_cycle
        row = f"{pattern:9s}"
        for routing in ROUTINGS:
            norm = cycles[routing] / cycles["pb"]
            means[routing].append(norm)
            row += f"{norm:10.3f}"
        print(row + f"{cycles['pb']:12d}")
    print()
    for routing in ROUTINGS:
        avg = sum(means[routing]) / len(means[routing])
        print(f"mean normalized time {routing:7s}: {avg:.3f}")
    print()
    print("the paper reports OFAR consuming bursts in 0.43-0.82x PB's time")
    print("(mean 0.695); the gap grows with the adversarial fraction.")


if __name__ == "__main__":
    main()
