"""Tests for running workloads: attribution, determinism, integration.

The description layer is covered by ``test_workloads.py``; here the
composite actually drives the engine.  The two determinism-under-
composition guarantees the subsystem rests on:

- a single job spanning the whole machine through ``CompositeTraffic``
  produces a **bit-identical** LoadPoint to running that job's derived
  generator directly (composition adds nothing);
- per-job metrics are a **partition** of the global ones — counts sum
  exactly, throughputs sum after node-count weighting.
"""

import dataclasses
import math

import pytest

from repro.analysis.store import ResultStore
from repro.engine.config import SimulationConfig
from repro.engine.runner import run_spec, run_spec_with_telemetry
from repro.engine.runspec import RunSpec
from repro.engine.simulator import Simulator
from repro.topology.dragonfly import Dragonfly
from repro.workloads.composite import build_job_generator
from repro.workloads.runner import (
    SIDECAR_KIND,
    WorkloadResult,
    isolated_spec,
    jain_across_jobs,
    job_slowdowns,
    run_workload,
    run_workload_cached,
    run_workload_with_telemetry,
)
from repro.workloads.spec import JobSpec, WorkloadSpec


def cfg(seed=9, routing="ofar"):
    return SimulationConfig.small(h=2, routing=routing, seed=seed)


def two_job_spec(seed=9, warmup=100, measure=200, routing="ofar"):
    workload = WorkloadSpec(
        jobs=(
            JobSpec(name="a", nodes=36, pattern="UN", load=0.2),
            JobSpec(name="b", nodes=36, pattern="ADV+2", load=0.3),
        ),
        placement="round-robin-groups",
    )
    return RunSpec.for_workload(cfg(seed, routing), workload,
                                warmup=warmup, measure=measure)


class TestRunSpecWorkload:
    def test_fingerprint_round_trip(self):
        s = two_job_spec()
        back = RunSpec.from_json(s.to_json())
        assert back == s
        assert back.fingerprint() == s.fingerprint()

    def test_workload_key_omitted_when_none(self):
        """Single-tenant fingerprints must not change: the JSON form of
        a plain spec has no "workload" key at all."""
        plain = RunSpec(cfg(), "UN", 0.2, 100, 100)
        assert "workload" not in plain.to_jsonable()

    def test_sentinel_fields_enforced(self):
        w = two_job_spec().workload
        with pytest.raises(ValueError):
            RunSpec(cfg(), "UN", 0.2, 100, 100, workload=w)
        with pytest.raises(ValueError):
            RunSpec(cfg(), "workload", 0.1, 100, 100, workload=w)

    def test_label_counts_jobs(self):
        assert "workload[2 jobs]" in two_job_spec().label()

    def test_distinct_workloads_distinct_fingerprints(self):
        a = two_job_spec()
        jobs = a.workload.jobs
        b = dataclasses.replace(
            a, workload=WorkloadSpec(
                jobs=(jobs[0], dataclasses.replace(jobs[1], load=0.4)),
                placement=a.workload.placement,
            )
        )
        assert a.fingerprint() != b.fingerprint()


class TestDeterminismUnderComposition:
    def test_single_job_bit_identical_to_direct_run(self):
        """Wrapping one whole-machine job in CompositeTraffic changes
        nothing: the global LoadPoint is bit-for-bit the direct run's."""
        config = cfg(seed=21)
        topo = Dragonfly(config.h)
        job = JobSpec(name="only", nodes=topo.num_nodes, pattern="UN",
                      load=0.2)
        spec = RunSpec.for_workload(
            config, WorkloadSpec(jobs=(job,)), warmup=100, measure=200
        )
        result = run_workload(spec)

        sim = Simulator(config, record_per_source=True)
        sim.generator = build_job_generator(
            sim.network.topo, job, tuple(range(topo.num_nodes)),
            config.packet_size, config.seed,
        )
        sim.warm_up(100)
        sim.run(200)
        direct = sim.metrics.load_point(job.load, sim.cycle)

        assert result.total == direct  # exact dataclass equality

    def test_single_job_point_matches_total(self):
        """With one job owning every node, the per-job LoadPoint agrees
        with the global one on every shared field (the per-source
        fairness pair is global-only and stays NaN per job)."""
        spec = RunSpec.for_workload(
            cfg(seed=21),
            WorkloadSpec(jobs=(JobSpec(name="only", nodes=72, pattern="UN",
                                       load=0.2),)),
            warmup=100, measure=200,
        )
        result = run_workload(spec)
        total = dataclasses.asdict(result.total)
        only = dataclasses.asdict(result.jobs[0].point)
        for name, value in only.items():
            if name in ("jain_index", "worst_source_share"):
                assert math.isnan(value)
            else:
                assert value == total[name], name

    def test_per_job_metrics_partition_global(self):
        result = run_workload(two_job_spec())
        total = result.total
        assert sum(jr.point.ejected_packets for jr in result.jobs) == \
            total.ejected_packets
        # Throughput is per job node; weighting by node count recovers
        # the global per-node figure exactly (same integer phit sums).
        weighted = sum(
            jr.point.throughput * jr.num_nodes for jr in result.jobs
        )
        assert weighted == pytest.approx(total.throughput * 72, rel=1e-12)

    def test_repeat_runs_bit_identical(self):
        a = run_workload(two_job_spec())
        b = run_workload(two_job_spec())
        assert a.to_jsonable() == b.to_jsonable()


class TestAttribution:
    def test_interference_matrix_shape(self):
        result = run_workload(two_job_spec())
        m = result.interference
        assert len(m) == 2 and all(len(row) == 2 for row in m)
        assert m[0][1] == m[1][0]  # symmetric
        assert all(x >= 0.0 for row in m for x in row)
        assert m[0][1] > 0.0  # round-robin placement: they must meet

    def test_group_exclusive_uniform_jobs_never_meet(self):
        """Two single-group jobs with intra-job uniform traffic share no
        channel, so their interference energy is exactly zero."""
        spec = RunSpec.for_workload(
            cfg(seed=5),
            WorkloadSpec(
                jobs=(JobSpec(name="a", nodes=8, pattern="UN", load=0.3),
                      JobSpec(name="b", nodes=8, pattern="UN", load=0.3)),
                placement="group-exclusive",
            ),
            warmup=100, measure=200,
        )
        result = run_workload(spec)
        assert result.interference[0][1] == 0.0
        assert result.interference[0][0] > 0.0  # each still loads links

    def test_jain_across_jobs(self):
        assert jain_across_jobs([0.2, 0.2, 0.2]) == pytest.approx(1.0)
        assert jain_across_jobs([0.4, 0.0]) == pytest.approx(0.5)
        assert jain_across_jobs([]) == 1.0
        assert jain_across_jobs([float("nan"), 0.3]) == pytest.approx(1.0)

    def test_result_json_round_trip(self):
        result = run_workload(two_job_spec())
        back = WorkloadResult.from_jsonable(result.to_jsonable())
        assert back.to_jsonable() == result.to_jsonable()
        assert back.job("a").point.as_row() == result.job("a").point.as_row()


class TestIsolationAndSlowdown:
    def test_isolated_spec_pins_exact_nodes(self):
        spec = two_job_spec()
        iso = isolated_spec(spec, "b")
        assert len(iso.workload.jobs) == 1
        pinned = iso.workload.jobs[0]
        assert pinned.name == "b"
        assert pinned.nodes == 0 and len(pinned.node_list) == 36
        # Round-robin with a placed ahead: b owns the upper half of each
        # group's 8-node range; isolation must not re-place it elsewhere.
        expected = tuple(sorted(g * 8 + k for g in range(9) for k in (4, 5, 6, 7)))
        assert pinned.node_list == expected

    def test_slowdown_at_least_one_under_contention(self):
        spec = two_job_spec()
        shared = run_workload(spec)
        isolated = {
            name: run_workload(isolated_spec(spec, name))
            for name in ("a", "b")
        }
        slow = job_slowdowns(shared, isolated)
        assert set(slow) == {"a", "b"}
        # Removing the neighbour can only help: latency-based slowdown
        # stays >= ~1 (small tolerance for windowing noise).
        assert slow["a"] > 0.95 and slow["b"] > 0.95


class TestRunLayerIntegration:
    def test_run_spec_dispatches_to_workload(self):
        spec = two_job_spec()
        assert run_spec(spec) == run_workload(spec).total

    def test_sidecar_cache_hit_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = two_job_spec()
        fresh = run_workload_cached(spec, store)
        assert store.get_sidecar(SIDECAR_KIND, spec) is not None
        assert store.get(spec) == fresh.total  # main store entry too
        hit = run_workload_cached(spec, store)
        assert hit.to_jsonable() == fresh.to_jsonable()
        assert store.stats.hits >= 1

    def test_corrupt_sidecar_recomputed(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = two_job_spec()
        fresh = run_workload_cached(spec, store)
        store.sidecar_path(SIDECAR_KIND, spec.fingerprint()).write_text(
            "{ not json"
        )
        again = run_workload_cached(spec, store)
        assert again.to_jsonable() == fresh.to_jsonable()

    def test_sidecar_kind_validated(self, tmp_path):
        store = ResultStore(tmp_path)
        for kind in ("", "objects", "a/b"):
            with pytest.raises(ValueError):
                store.sidecar_path(kind, "ab" * 32)

    def test_telemetry_observes_without_perturbing(self):
        from repro.telemetry.config import TelemetryConfig

        spec = two_job_spec()
        plain = run_workload(spec)
        result, series = run_workload_with_telemetry(
            spec, TelemetryConfig(interval=50)
        )
        assert result.to_jsonable() == plain.to_jsonable()
        assert series is not None and series.samples
        flows = [s.job_flow for s in series.samples if s.job_flow]
        assert flows, "multi-job run must sample per-job flow"
        assert set(flows[-1]) <= {"0", "1"}
        assert all(f["0"]["ejected"] > 0 for f in flows if "0" in f)

    def test_run_spec_with_telemetry_dispatches(self):
        from repro.telemetry.config import TelemetryConfig

        spec = two_job_spec()
        point, series = run_spec_with_telemetry(spec, TelemetryConfig(interval=50))
        assert point == run_workload(spec).total
        assert series is not None and series.samples
