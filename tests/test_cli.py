"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.routing == "ofar"
        assert args.pattern == "UN"
        assert args.h == 2

    def test_invalid_routing(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--routing", "warp"])

    def test_figure_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig5", "--scale", "galactic"])


class TestCommands:
    def test_info(self, capsys):
        main(["info", "--h", "3"])
        out = capsys.readouterr().out
        assert "groups            : 19" in out
        assert "0.3333" in out  # 1/h funnel bound

    def test_sweep(self, capsys):
        main([
            "sweep", "--routing", "min", "--pattern", "UN", "--h", "2",
            "--loads", "0.2", "--warmup", "100", "--measure", "100",
        ])
        out = capsys.readouterr().out
        assert "min on UN" in out
        assert "throughput" in out

    def test_burst(self, capsys):
        main(["burst", "--pattern", "UN", "--packets", "2", "--h", "2"])
        out = capsys.readouterr().out
        assert "consumed by cycle" in out

    def test_transient(self, capsys):
        main([
            "transient", "--h", "2", "--before", "UN", "--after", "ADV+1",
            "--load", "0.1", "--warmup", "300", "--measure", "300",
            "--bucket", "100",
        ])
        out = capsys.readouterr().out
        assert "UN -> ADV+1" in out

    def test_telemetry(self, capsys, tmp_path):
        out_path = tmp_path / "series.jsonl"
        csv_path = tmp_path / "series.csv"
        main([
            "telemetry", "--h", "2", "--before", "UN", "--after", "ADV+1",
            "--load", "0.1", "--warmup", "200", "--measure", "300",
            "--bucket", "100", "--interval", "50",
            "--out", str(out_path), "--csv", str(csv_path), "--heatmap",
        ])
        out = capsys.readouterr().out
        assert "UN -> ADV+1" in out
        assert "local-link p99 util" in out
        assert "utilization by router over time" in out
        assert "group→group" in out
        from repro.telemetry.export import read_jsonl

        series = read_jsonl(out_path)
        assert series.samples and series.config.interval == 50
        assert csv_path.read_text().startswith("cycle,window,")

    def test_unknown_figure(self):
        with pytest.raises(SystemExit, match="unknown figure"):
            main(["figure", "fig99", "--scale", "tiny"])

    def test_figure_fig2_tiny(self, capsys):
        main(["figure", "fig2", "--scale", "tiny"])
        out = capsys.readouterr().out
        assert "Fig 2b" in out

    def test_fabric_status_reports_no_fleet_activity(self, capsys, tmp_path):
        import json

        camp = tmp_path / "c.json"
        camp.write_text(json.dumps({
            "name": "t",
            "scale": "tiny",
            "combination": {
                "routing": ["min"], "pattern": ["UN"], "load": [0.1],
            },
        }))
        main(["fabric", "status", str(camp), "--store", str(tmp_path / "store")])
        out = capsys.readouterr().out
        assert "no fleet activity: 0 workers, 0 leases" in out
        assert "1 pending" in out

    def test_fabric_serve_and_watch_parse(self):
        args = build_parser().parse_args(
            ["fabric", "serve", "--port", "9001", "--store", "s"]
        )
        assert args.port == 9001
        args = build_parser().parse_args(
            ["fabric", "watch", "c.yaml", "--coordinator", "http://h:1"]
        )
        assert args.coordinator == "http://h:1"
        assert args.interval == 2.0
