"""Tests for parallel sweep execution."""

from repro.engine.config import SimulationConfig
from repro.engine.parallel import (
    default_workers,
    run_grid_parallel,
    run_load_sweep_parallel,
)
from repro.engine.runner import run_load_sweep
from repro.engine.runspec import RunSpec


def cfg(routing="min"):
    return SimulationConfig.small(h=2, routing=routing)


class TestParallelSweep:
    def test_matches_sequential_exactly(self):
        loads = [0.1, 0.3]
        seq = run_load_sweep(cfg(), "UN", loads, warmup=200, measure=200)
        par = run_load_sweep_parallel(
            cfg(), "UN", loads, warmup=200, measure=200, workers=2
        )
        for a, b in zip(seq, par):
            assert a == b  # LoadPoint is a plain dataclass: full equality

    def test_matches_sequential_ofar_adversarial(self):
        """Determinism regression for the active-set engine: the
        adversarial OFAR path (misroute rng, escape ring, wake events)
        must give bit-identical LoadPoints in workers and in-process."""
        loads = [0.1, 0.35]
        seq = run_load_sweep(cfg("ofar"), "ADV+2", loads, warmup=200, measure=200)
        par = run_load_sweep_parallel(
            cfg("ofar"), "ADV+2", loads, warmup=200, measure=200, workers=2
        )
        for a, b in zip(seq, par):
            assert a == b

    def test_matches_sequential_with_empty_window(self):
        """NaN-bearing LoadPoints (zero-load window: no ejections) still
        compare equal across sequential/parallel via as_row, where NaN
        averages are normalized to None."""
        seq = run_load_sweep(cfg(), "UN", [0.0], warmup=50, measure=50)
        par = run_load_sweep_parallel(
            cfg(), "UN", [0.0], warmup=50, measure=50, workers=2
        )
        assert seq[0].ejected_packets == 0  # the edge being pinned
        assert seq[0].as_row() == par[0].as_row()
        assert seq[0].as_row()["latency"] is None

    def test_order_preserved(self):
        loads = [0.3, 0.1, 0.2]
        pts = run_load_sweep_parallel(
            cfg(), "UN", loads, warmup=150, measure=150, workers=3
        )
        assert [p.offered_load for p in pts] == loads

    def test_single_worker_fallback(self):
        pts = run_load_sweep_parallel(
            cfg(), "UN", [0.1], warmup=100, measure=100, workers=1
        )
        assert len(pts) == 1

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestGrid:
    def test_mixed_configs(self):
        tasks = [
            (cfg("min"), "UN", 0.2),
            (cfg("ofar"), "ADV+2", 0.3),
        ]
        pts = run_grid_parallel(tasks, warmup=150, measure=150, workers=2)
        assert len(pts) == 2
        assert pts[0].offered_load == 0.2
        assert pts[1].offered_load == 0.3

    def test_grid_matches_direct(self):
        from repro.engine.runner import run_spec

        tasks = [(cfg("pb"), "ADV+1", 0.25)]
        par = run_grid_parallel(tasks, warmup=200, measure=200, workers=2)
        direct = run_spec(RunSpec(cfg("pb"), "ADV+1", 0.25, 200, 200))
        assert par[0] == direct
