"""Tests for the §VIII multi-read-port input buffer extension."""

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.runner import run_spec
from repro.engine.runspec import RunSpec
from repro.engine.simulator import Simulator
from repro.network.router import KIND_MIN, OutputChannel, Router
from repro.topology.dragonfly import PortKind


def mk_packet(pid=0, size=8):
    from repro.network.packet import Packet

    return Packet(pid=pid, src=0, dst=99, size=size, created_cycle=0,
                  dst_router=49, dst_group=0, src_group=0)


def mk_router(read_ports, num_vcs=2):
    rt = Router(rid=0, group=0, index=0, packet_size=8, iterations=3,
                read_ports=read_ports)
    rt.add_input_port(PortKind.LOCAL, num_vcs, 64, upstream=None)
    for port in range(3):
        rt.add_output_channel(
            OutputChannel(port=port, kind=PortKind.LOCAL, latency=10,
                          num_vcs=num_vcs, capacity=64,
                          dest_router=9, dest_port=0)
        )
    return rt


class RecordingNetwork:
    def __init__(self):
        self.grants = []

    def execute_grant(self, rt, in_port, in_vc, out_port, out_vc, kind, cycle):
        pkt = rt.in_bufs[in_port][in_vc].pop()
        if not rt.in_bufs[in_port][in_vc]:
            rt.pending.discard((in_port, in_vc))
        rt.out[out_port].busy_until = cycle + pkt.size
        rt.occupy_read_slot(in_port, cycle)
        rt.out[out_port].credits[out_vc] -= pkt.size
        self.grants.append((in_port, in_vc, out_port))


class PerVcRouting:
    def route(self, rt, in_port, in_vc, pkt, cycle):
        # vc i -> output i (distinct outputs, so only read slots limit).
        if rt.out_port_free(in_vc, cycle):
            return (in_vc, 0, KIND_MIN)
        return None


class TestReadSlots:
    def test_free_read_slots(self):
        rt = mk_router(2)
        assert rt.free_read_slots(0, 0) == 2
        rt.occupy_read_slot(0, 0)
        assert rt.free_read_slots(0, 0) == 1
        assert rt.free_read_slots(0, 8) == 2  # slot frees after the tail

    def test_occupy_exhausted_raises(self):
        rt = mk_router(1)
        rt.occupy_read_slot(0, 0)
        with pytest.raises(AssertionError):
            rt.occupy_read_slot(0, 0)

    def test_single_read_port_one_grant(self):
        rt = mk_router(1)
        net = RecordingNetwork()
        rt.in_bufs[0][0].push(mk_packet(1))
        rt.in_bufs[0][1].push(mk_packet(2))
        rt.pending.update({(0, 0), (0, 1)})
        assert rt.allocate(0, PerVcRouting(), net) == 1

    def test_two_read_ports_two_grants(self):
        rt = mk_router(2)
        net = RecordingNetwork()
        rt.in_bufs[0][0].push(mk_packet(1))
        rt.in_bufs[0][1].push(mk_packet(2))
        rt.pending.update({(0, 0), (0, 1)})
        assert rt.allocate(0, PerVcRouting(), net) == 2
        out_ports = sorted(g[2] for g in net.grants)
        assert out_ports == [0, 1]

    def test_same_vc_not_double_read(self):
        """Two packets in one VC: still one grant per cycle."""
        rt = mk_router(2)
        net = RecordingNetwork()
        rt.in_bufs[0][0].push(mk_packet(1))
        rt.in_bufs[0][0].push(mk_packet(2))
        rt.pending.add((0, 0))
        assert rt.allocate(0, PerVcRouting(), net) == 1


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig.small(h=2, input_read_ports=0)

    def test_default_single(self):
        assert SimulationConfig.small(h=2).input_read_ports == 1


class TestEndToEnd:
    def test_delivery_with_two_read_ports(self):
        cfg = SimulationConfig.small(h=2, routing="ofar", input_read_ports=2)
        sim = Simulator(cfg)
        rng = __import__("random").Random(8)
        for _ in range(60):
            s, d = rng.randrange(72), rng.randrange(72)
            if s != d:
                sim.create_packet(s, d)
        sim.run_until_drained(200_000)
        assert sim.network.ejected_packets == sim.created_packets
        sim.network.check_conservation()

    def test_paper_viii_design_competitive(self):
        """§VIII conjecture: OFAR with 1 VC + 2 read ports (same total
        buffering) is competitive with 3 VCs + 1 read port."""
        classic = SimulationConfig.small(h=2, routing="ofar")
        lean = SimulationConfig.small(
            h=2, routing="ofar", input_read_ports=2,
            local_vcs=1, local_buffer=48,       # 3 x 16 consolidated
            global_vcs=1, global_buffer=96,     # 2 x 48 consolidated
            injection_vcs=1, injection_buffer=48,
        )
        a = run_spec(RunSpec(classic, "ADV+2", 0.4, warmup=600, measure=600))
        b = run_spec(RunSpec(lean, "ADV+2", 0.4, warmup=600, measure=600))
        assert b.throughput > 0.85 * a.throughput
