"""Unit tests for packets."""

import pytest

from repro.network.packet import Packet


def mk(src=0, dst=100, size=8):
    return Packet(
        pid=1, src=src, dst=dst, size=size, created_cycle=10,
        dst_router=dst // 2, dst_group=dst // 8, src_group=src // 8,
    )


class TestPacket:
    def test_initial_state(self):
        p = mk()
        assert p.intermediate_group == -1
        assert not p.global_misrouted
        assert p.local_misroute_group == -1
        assert not p.on_ring
        assert p.ring_exits == 0
        assert p.hops == p.local_hops == p.global_hops == p.ring_hops == 0
        assert not p.used_ring
        assert p.injected_cycle == -1
        assert p.ejected_cycle == -1

    def test_latency_requires_ejection(self):
        p = mk()
        with pytest.raises(ValueError):
            _ = p.latency
        p.ejected_cycle = 50
        assert p.latency == 40

    def test_network_latency(self):
        p = mk()
        p.ejected_cycle = 60
        with pytest.raises(ValueError):
            _ = p.network_latency
        p.injected_cycle = 15
        assert p.network_latency == 45
        assert p.latency == 50

    def test_cache_sentinels(self):
        p = mk()
        assert p.cache_rid == -1
        assert p.cache_ig == -2  # -1 is a valid intermediate_group value

    def test_slots_prevent_new_attrs(self):
        p = mk()
        with pytest.raises(AttributeError):
            p.bogus = 1

    def test_repr_mentions_endpoints(self):
        assert "0->100" in repr(mk())
