"""Snapshot codec round trips: restore(save(sim)) resumes bit-identically.

The contract under test (repro.snapshot): capturing a simulator at an
arbitrary mid-run cycle, round-tripping the state through JSON, and
overlaying it onto a freshly built simulator yields a simulator that is
*behaviorally indistinguishable* from the original — same state digest
at the capture cycle, same digests in lockstep afterwards, and
byte-identical end results (LoadPoint reprs, transient series,
workload interference matrices, telemetry samples).
"""

import dataclasses
import json

import pytest

from repro.engine.config import SimulationConfig
from repro.engine.runner import (
    _build_steady_sim,
    run_spec,
    run_transient,
    run_transient_forked,
)
from repro.engine.runspec import RunSpec
from repro.snapshot import Snapshot, SnapshotError, first_divergence


def point_doc(pt) -> dict:
    """Exact (unrounded) LoadPoint fields, as the fingerprint script."""
    return {k: repr(v) for k, v in dataclasses.asdict(pt).items()}


def json_roundtrip(snap: Snapshot) -> Snapshot:
    return Snapshot.from_jsonable(json.loads(json.dumps(snap.to_jsonable())))


def steady_spec(**overrides) -> RunSpec:
    cfg = SimulationConfig.small(
        h=2, routing=overrides.pop("routing", "ofar"),
        seed=overrides.pop("seed", 7), **overrides,
    )
    return RunSpec(cfg, "ADV+1", 0.3, warmup=200, measure=200)


def interrupted_point(spec: RunSpec, at: int):
    """LoadPoint computed across a save/restore boundary ``at`` cycles
    into the measurement window (with a JSON round trip in between)."""
    sim = _build_steady_sim(spec)
    sim.warm_up(spec.warmup)
    sim.run(at)
    snap = json_roundtrip(Snapshot.capture(sim, spec=spec))
    resumed = snap.fork()
    resumed.run(spec.measure - at)
    return resumed.metrics.load_point(spec.load, resumed.cycle)


class TestSteadyRoundTrip:
    def test_loadpoint_byte_identical_across_boundary(self):
        spec = steady_spec()
        assert point_doc(interrupted_point(spec, 77)) == point_doc(run_spec(spec))

    def test_boundary_position_is_irrelevant(self):
        spec = steady_spec(routing="ugal", seed=11)
        ref = point_doc(run_spec(spec))
        for at in (1, 100, 199):
            assert point_doc(interrupted_point(spec, at)) == ref

    @pytest.mark.parametrize("routing", ["min", "val", "pb", "par", "ofar-l"])
    def test_every_routing_round_trips(self, routing):
        overrides = {"local_vcs": 4} if routing == "par" else {}
        spec = steady_spec(routing=routing, **overrides)
        assert point_doc(interrupted_point(spec, 63)) == point_doc(run_spec(spec))

    @pytest.mark.parametrize(
        "overrides",
        [
            {"escape": "embedded"},
            {"escape_rings": 2},
            {"input_read_ports": 2},
            {"congestion_control": True},
        ],
        ids=["embedded", "rings2", "readports2", "congestion"],
    )
    def test_engine_variants_round_trip(self, overrides):
        spec = steady_spec(seed=5, **overrides)
        assert point_doc(interrupted_point(spec, 50)) == point_doc(run_spec(spec))

    def test_digest_identical_after_restore_and_in_lockstep(self):
        spec = steady_spec()
        sim = _build_steady_sim(spec)
        sim.run(137)
        snap = json_roundtrip(Snapshot.capture(sim, spec=spec))
        restored = snap.fork()
        assert restored.cycle == sim.cycle
        assert restored.state_digest() == sim.state_digest()
        for _ in range(40):
            sim.step()
            restored.step()
            assert restored.state_digest() == sim.state_digest()

    def test_forks_are_independent(self):
        spec = steady_spec()
        sim = _build_steady_sim(spec)
        sim.run(150)
        snap = Snapshot.capture(sim, spec=spec)
        a, b = snap.fork(), snap.fork()
        a.run(50)  # advancing one fork must not touch the other
        assert b.cycle == 150
        assert b.state_digest() == snap.digest() == Snapshot.capture(b).digest()
        b.run(50)
        assert a.state_digest() == b.state_digest()


class TestSleepingRoutersAndEventWheel:
    """Satellite: wheel + active set survive a mid-run round trip while
    routers are asleep with queued wake events."""

    def _warm_sleepy_sim(self):
        # read_ports=1 (the only sleep-eligible mode): step until the
        # engine has actually put a loaded router to sleep with a wake
        # event queued — sleep states are transient, so hunt for one.
        spec = RunSpec(
            SimulationConfig.small(h=2, routing="ofar", seed=21),
            "UN", 0.2, warmup=100, measure=100,
        )
        sim = _build_steady_sim(spec)
        net = sim.network
        sim.run(50)
        for _ in range(2_000):
            sleeping = [rt.rid for rt in net.routers
                        if not rt.scheduled and rt.pending]
            wakes = [ev for ev in net._events.iter_events() if ev[0] == 3]
            if sleeping and wakes:
                return spec, sim
            sim.step()
        raise AssertionError(
            "no cycle with sleeping routers + queued wake events found"
        )

    def test_round_trip_with_sleepers_and_wakes(self):
        spec, sim = self._warm_sleepy_sim()
        net = sim.network

        snap = json_roundtrip(Snapshot.capture(sim, spec=spec))
        restored = snap.fork()
        rnet = restored.network

        assert sorted(rnet._active_routers) == sorted(net._active_routers)
        for rt, rrt in zip(net.routers, rnet.routers):
            assert rrt.scheduled == rt.scheduled
            assert list(rrt.pending) == list(rt.pending)
        # Same wheel shape: (cycle, tag) multiset and per-bucket order.
        def shape(network):
            return [
                (cyc, [ev[0] for ev in network._events._buckets[cyc]])
                for cyc in sorted(network._events._buckets)
            ]
        assert shape(rnet) == shape(net)
        assert restored.state_digest() == sim.state_digest()
        # The sleepers wake and drain identically.
        sim.run(300)
        restored.run(300)
        assert restored.state_digest() == sim.state_digest()
        assert rnet.ejected_packets == net.ejected_packets

    def test_conservation_holds_after_restore(self):
        spec, sim = self._warm_sleepy_sim()
        restored = Snapshot.capture(sim, spec=spec).fork()
        restored.network.check_conservation()


class TestTransientFork:
    def test_forked_series_identical_to_individual_warmups(self):
        cfg = SimulationConfig.small(h=2, routing="ofar", seed=13)
        variants = ["ADV+2", "ADV+1", "MIX1"]
        kw = dict(warmup=300, post=300, drain_margin=400, bucket=20)
        plain = [run_transient(cfg, "UN", v, 0.3, **kw) for v in variants]
        forked = run_transient_forked(cfg, "UN", variants, 0.3, **kw)
        for p, f in zip(plain, forked):
            assert f.switch_cycle == p.switch_cycle
            assert [(c, repr(v)) for c, v in f.series] == [
                (c, repr(v)) for c, v in p.series
            ]

    def test_empty_variant_list_rejected(self):
        cfg = SimulationConfig.small(h=2, routing="ofar", seed=13)
        with pytest.raises(ValueError):
            run_transient_forked(cfg, "UN", [], 0.3)


class TestWorkloadRoundTrip:
    def _spec(self):
        from repro.workloads.spec import JobSpec, WorkloadSpec

        workload = WorkloadSpec(
            jobs=(
                JobSpec(name="steady", nodes=24, pattern="UN", load=0.15),
                JobSpec(name="bully", nodes=24, pattern="ADV+2", load=0.3,
                        start=150, stop=450),
                JobSpec(name="burst", nodes=8, traffic="burst",
                        packets_per_node=2),
            ),
            placement="round-robin-groups",
        )
        cfg = SimulationConfig.small(h=2, routing="ofar", seed=17)
        return RunSpec.for_workload(cfg, workload, warmup=300, measure=300)

    def test_full_workload_result_identical(self):
        from repro.workloads.runner import (
            _job_phit_baseline,
            _summarize,
            build_workload_sim,
            run_workload,
        )

        spec = self._spec()
        ref = run_workload(spec)

        sim = build_workload_sim(spec)
        sim.warm_up(spec.warmup)
        baseline = _job_phit_baseline(sim.network)
        sim.run(123)
        extras = {
            "baseline": [
                [rid, port, [[j, p] for j, p in counts.items()]]
                for (rid, port), counts in baseline.items()
            ]
        }
        snap = json_roundtrip(Snapshot.capture(sim, spec=spec, extras=extras))
        resumed = snap.fork()
        decoded = {
            (rid, port): {j: p for j, p in pairs}
            for rid, port, pairs in snap.extras["baseline"]
        }
        resumed.run(spec.measure - 123)
        res = _summarize(resumed, decoded)

        assert point_doc(res.total) == point_doc(ref.total)
        for a, b in zip(res.jobs, ref.jobs):
            assert a.name == b.name
            assert point_doc(a.point) == point_doc(b.point)
        assert repr(res.jain_across_jobs) == repr(ref.jain_across_jobs)
        assert [[repr(x) for x in row] for row in res.interference] == [
            [repr(x) for x in row] for row in ref.interference
        ]


class TestTelemetryRoundTrip:
    def test_sampler_state_and_series_survive(self):
        from repro.engine.runner import run_spec_with_telemetry
        from repro.telemetry.config import TelemetryConfig
        from repro.telemetry.sampler import TelemetrySampler

        spec = steady_spec()
        tcfg = TelemetryConfig(interval=50, per_link=True)
        pt_ref, series_ref = run_spec_with_telemetry(spec, tcfg)

        sim = _build_steady_sim(spec)
        sim.warm_up(spec.warmup)
        TelemetrySampler(sim, tcfg).attach()
        sim.run(88)
        snap = json_roundtrip(Snapshot.capture(sim, spec=spec))
        resumed = snap.fork()
        assert resumed.telemetry is not None
        resumed.run(spec.measure - 88)
        pt = resumed.metrics.load_point(spec.load, resumed.cycle)
        series = resumed.telemetry.finish()

        assert point_doc(pt) == point_doc(pt_ref)
        assert [s.to_jsonable() for s in series.samples] == [
            s.to_jsonable() for s in series_ref.samples
        ]

    def test_telemetry_is_excluded_from_digest(self):
        from repro.telemetry.config import TelemetryConfig
        from repro.telemetry.sampler import TelemetrySampler

        spec = steady_spec()
        plain = _build_steady_sim(spec)
        watched = _build_steady_sim(spec)
        TelemetrySampler(watched, TelemetryConfig(interval=25)).attach()
        plain.run(120)
        watched.run(120)
        assert plain.state_digest() == watched.state_digest()


class TestBurstRoundTrip:
    def test_drain_across_boundary(self):
        import random

        from repro.engine.runner import _pattern_rng
        from repro.engine.simulator import Simulator
        from repro.traffic.generators import BurstTraffic
        from repro.traffic.patterns import make_pattern

        cfg = SimulationConfig.small(h=2, routing="ofar", seed=11)

        def build():
            sim = Simulator(cfg)
            topo = sim.network.topo
            sim.generator = BurstTraffic(
                make_pattern(topo, _pattern_rng(cfg, 0xC2), "ADV+2"),
                4, topo.num_nodes,
            )
            return sim

        ref = build()
        end_ref = ref.run_until_drained(200_000)

        sim = build()
        sim.run(40)
        snap = json_roundtrip(Snapshot.capture(sim))
        resumed = snap.fork(build=build)
        end = resumed.run_until_drained(200_000)
        assert end == end_ref
        assert resumed.network.ejected_packets == ref.network.ejected_packets
        assert repr(resumed.metrics.latency_sum) == repr(ref.metrics.latency_sum)
        # independent of the snapshot: rng module must stay untouched
        random.random()


class TestGuards:
    def test_restore_rejects_dirty_target(self):
        spec = steady_spec()
        sim = _build_steady_sim(spec)
        sim.run(10)
        snap = Snapshot.capture(sim, spec=spec)
        dirty = _build_steady_sim(spec)
        dirty.run(5)
        with pytest.raises(SnapshotError, match="freshly built"):
            snap.restore_into(dirty)

    def test_restore_rejects_config_mismatch(self):
        spec = steady_spec()
        sim = _build_steady_sim(spec)
        sim.run(10)
        snap = Snapshot.capture(sim, spec=spec)
        other = _build_steady_sim(steady_spec(seed=8))
        with pytest.raises(SnapshotError, match="config mismatch"):
            snap.restore_into(other)

    def test_unknown_format_rejected(self):
        with pytest.raises(SnapshotError, match="format"):
            Snapshot({"format": 999})

    def test_fork_without_spec_needs_builder(self):
        spec = steady_spec()
        sim = _build_steady_sim(spec)
        sim.run(10)
        snap = Snapshot.capture(sim)  # no spec embedded
        with pytest.raises(SnapshotError, match="embedded RunSpec"):
            snap.fork()

    def test_save_load_round_trip(self, tmp_path):
        spec = steady_spec()
        sim = _build_steady_sim(spec)
        sim.run(42)
        snap = Snapshot.capture(sim, spec=spec)
        path = tmp_path / "snap" / "state.json"
        snap.save(str(path))
        loaded = Snapshot.load(str(path))
        assert loaded.digest() == snap.digest()
        assert loaded.cycle == 42
        assert loaded.spec() == spec


class TestDebugTools:
    def test_first_divergence_none_for_identical_runs(self):
        spec = steady_spec()
        a, b = _build_steady_sim(spec), _build_steady_sim(spec)
        assert first_divergence(a, b, max_cycles=60) is None

    def test_first_divergence_localizes_a_seed_difference(self):
        spec_a = steady_spec(seed=7)
        spec_b = steady_spec(seed=8)
        a, b = _build_steady_sim(spec_a), _build_steady_sim(spec_b)
        hit = first_divergence(a, b, max_cycles=200)
        assert hit is not None
        assert hit["digest_a"] != hit["digest_b"]
        assert hit["diff"], "divergence must come with a leaf diff"

    def test_first_divergence_rejects_misaligned_starts(self):
        spec = steady_spec()
        a, b = _build_steady_sim(spec), _build_steady_sim(spec)
        a.run(3)
        with pytest.raises(ValueError):
            first_divergence(a, b, max_cycles=10)
